//! The decision daemon: a lock-free read path over a frozen CSR
//! snapshot, one writer thread batching learning updates, and
//! crash-safe versioned checkpoints.
//!
//! # Architecture
//!
//! ```text
//!   clients ──decide──▶ handler threads ──▶ Arc<Snapshot> (frozen CSR, read-only)
//!   clients ──observe─▶ handler threads ──▶ mpsc ──▶ writer thread
//!                                                     │ drains a batch
//!                                                     │ applies Sherman–Morrison updates
//!                                                     │ clones + freezes → publishes new Arc
//!                                                     └ checkpoints (atomic rename)
//! ```
//!
//! Decide requests never take the writer's path: each handler clones
//! the current `Arc<Snapshot>` under a briefly held read lock and
//! samples from the frozen CSR with a request-seeded RNG, so any number
//! of decides run concurrently against immutable state and the same
//! `(snapshot, seed)` pair always returns the same action. The writer
//! owns the only mutable copy; after applying a batch it publishes a
//! freshly frozen clone, so readers never observe a half-applied
//! update.
//!
//! # Crash safety
//!
//! There is no signal handling (the workspace forbids `unsafe`, and a
//! std-only process cannot trap SIGTERM): the daemon is crash-safe *by
//! construction* instead. Checkpoints go through
//! [`megh_core::save_checkpoint`] — write-to-temp plus rename — so a
//! `SIGKILL` at any instant leaves the previous checkpoint intact, and
//! restart re-enters through the versioned loader, which checksums and
//! migrates any format ever written. Updates observed after the last
//! checkpoint are lost on a hard kill; that is the usual checkpointing
//! contract, bounded by `checkpoint_every`.

use std::fmt;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::Duration;

use megh_core::{
    load_checkpoint, save_checkpoint, ActionSpace, BoltzmannPolicy, CheckpointError, Config,
    MeghCheckpoint, MeghConfig, SparseLspi,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::wire::{Request, Response};

/// Most updates the writer folds into one publish cycle.
const MAX_BATCH: usize = 256;

/// How often the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Errors the daemon or its clients can hit.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(String),
    /// Checkpoint load/save failure (including invalid configs).
    Checkpoint(CheckpointError),
    /// The peer violated the wire protocol.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "{e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address like `127.0.0.1:7787`.
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Listen {
    /// Parses a listen spec: `unix:/path/to.sock` or a TCP address.
    pub fn parse(spec: &str) -> Self {
        #[cfg(unix)]
        if let Some(path) = spec.strip_prefix("unix:") {
            return Listen::Unix(PathBuf::from(path));
        }
        Listen::Tcp(spec.to_string())
    }
}

impl fmt::Display for Listen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Listen::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Daemon tunables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Where to listen.
    pub listen: Listen,
    /// Checkpoint file: loaded on start when present (any format
    /// version), written atomically on checkpoint/shutdown.
    pub checkpoint: PathBuf,
    /// Auto-checkpoint after this many applied updates; `0` checkpoints
    /// only on explicit `checkpoint` requests and shutdown (the
    /// deterministic mode the smoke test uses).
    pub checkpoint_every: usize,
    /// Seed for the writer's greedy-tie-break RNG.
    pub writer_seed: u64,
    /// Hierarchical decide: split the fleet into this many contiguous
    /// shards and serve each `decide` from the shard its seed hashes
    /// to, sampling only that shard's `N_c × M_c` action range (the
    /// serve-side counterpart of `megh_core::HierMegh`). `1` (the
    /// default) keeps the flat decide path. Clamped to the fleet size.
    pub shards: usize,
}

impl ServeOptions {
    /// Options with manual-checkpoint defaults.
    pub fn new(listen: Listen, checkpoint: PathBuf) -> Self {
        Self {
            listen,
            checkpoint,
            checkpoint_every: 0,
            writer_seed: 0x53_45_52_56, // "SERV"
            shards: 1,
        }
    }
}

/// The contiguous slice `[s·total/n, (s+1)·total/n)` of a resource
/// split into `n` shards — the same static partition `HierMegh` uses,
/// so a daemon and an in-process hierarchical agent agree on shard
/// ownership.
fn split_range(total: usize, s: usize, n: usize) -> std::ops::Range<usize> {
    debug_assert!(n > 0, "split into zero shards");
    (s * total / n)..((s + 1) * total / n)
}

/// SplitMix64 finalizer: maps a decide seed onto its serving shard.
fn mix_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What the read path serves from: an immutable, frozen view of the
/// learned state at some publish instant.
struct Snapshot {
    lspi: SparseLspi,
    steps: usize,
    temperature: f64,
}

/// State shared between handler threads and the writer.
struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    epsilon: f64,
    space: ActionSpace,
    /// Shards the decide path serves from (`1` = flat).
    shards: usize,
    queued: AtomicUsize,
    published: AtomicU64,
    shutdown: AtomicBool,
}

enum WriterMsg {
    Update { action: usize, cost: f64 },
    Sync(Sender<usize>),
    Checkpoint(Sender<Result<usize, CheckpointError>>),
    Shutdown(Sender<Result<usize, CheckpointError>>),
}

/// The single owner of the mutable learned state.
struct Writer {
    config: MeghConfig,
    lspi: SparseLspi,
    policy: BoltzmannPolicy,
    steps: usize,
    rng: StdRng,
    shared: Arc<Shared>,
    checkpoint_path: PathBuf,
    checkpoint_every: usize,
    since_checkpoint: usize,
}

impl Writer {
    /// Publishes a frozen clone of the current state for the read path.
    fn publish(&self) {
        let mut frozen = self.lspi.clone();
        frozen.freeze();
        let snapshot = Arc::new(Snapshot {
            lspi: frozen,
            steps: self.steps,
            temperature: self.policy.temperature(),
        });
        match self.shared.snapshot.write() {
            Ok(mut slot) => *slot = snapshot,
            Err(poisoned) => *poisoned.into_inner() = snapshot,
        }
        self.shared.published.fetch_add(1, Ordering::Relaxed);
    }

    /// One learning step: greedy successor, Sherman–Morrison update,
    /// temperature decay.
    fn apply(&mut self, action: usize, cost: f64) {
        let a_next = self.policy.greedy(&self.lspi, &mut self.rng);
        self.lspi.update(action, a_next, cost);
        self.policy.decay();
        self.steps += 1;
        self.since_checkpoint += 1;
        self.shared.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn checkpoint(&mut self) -> Result<usize, CheckpointError> {
        let cp = MeghCheckpoint {
            config: self.config.clone(),
            lspi: self.lspi.clone(),
            temperature: self.policy.temperature(),
            steps: self.steps,
        };
        save_checkpoint(&self.checkpoint_path, &cp)?;
        self.since_checkpoint = 0;
        Ok(self.steps)
    }

    fn run(mut self, rx: Receiver<WriterMsg>) {
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            while batch.len() < MAX_BATCH {
                match rx.try_recv() {
                    Ok(msg) => batch.push(msg),
                    Err(_) => break,
                }
            }
            let mut dirty = false;
            for msg in batch {
                match msg {
                    WriterMsg::Update { action, cost } => {
                        self.apply(action, cost);
                        dirty = true;
                    }
                    WriterMsg::Sync(ack) => {
                        if dirty {
                            self.publish();
                            dirty = false;
                        }
                        let _ = ack.send(self.steps);
                    }
                    WriterMsg::Checkpoint(ack) => {
                        if dirty {
                            self.publish();
                            dirty = false;
                        }
                        let _ = ack.send(self.checkpoint());
                    }
                    WriterMsg::Shutdown(ack) => {
                        // Fold in anything still queued, then write the
                        // final checkpoint before acknowledging. This
                        // drain runs once at shutdown after the listener
                        // stops accepting, so it is bounded by what
                        // producers queued before the ack — not a live
                        // ingest path. lint: allow(unbounded_queue)
                        while let Ok(msg) = rx.try_recv() {
                            match msg {
                                WriterMsg::Update { action, cost } => self.apply(action, cost),
                                WriterMsg::Sync(a) => {
                                    let _ = a.send(self.steps);
                                }
                                WriterMsg::Checkpoint(a) | WriterMsg::Shutdown(a) => {
                                    let _ = a.send(Ok(self.steps));
                                }
                            }
                        }
                        self.publish();
                        let _ = ack.send(self.checkpoint());
                        return;
                    }
                }
            }
            if dirty {
                self.publish();
                if self.checkpoint_every > 0 && self.since_checkpoint >= self.checkpoint_every {
                    if let Err(e) = self.checkpoint() {
                        eprintln!("megh serve: auto-checkpoint failed: {e}");
                    }
                }
            }
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound daemon, ready to accept connections.
///
/// Binding and running are split so callers (tests, benches) can learn
/// the bound address — e.g. a TCP listener on port 0 — before serving.
pub struct Server {
    listener: ListenerKind,
    shared: Arc<Shared>,
    tx: Sender<WriterMsg>,
    writer: thread::JoinHandle<()>,
    #[cfg(unix)]
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Loads (or initialises) the learned state and binds the listener.
    ///
    /// If `opts.checkpoint` exists it is loaded through the versioned
    /// migration chain and *its* configuration wins; the requested
    /// `config` is only the cold-start fallback. A checksum mismatch
    /// between the two is reported on stderr, not an error — restarting
    /// a daemon with new tunables must not orphan its learned state.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration, unreadable/corrupt checkpoints,
    /// or if the listener cannot bind.
    pub fn bind(config: MeghConfig, opts: &ServeOptions) -> Result<Self, ServeError> {
        Config::validate(&config).map_err(CheckpointError::InvalidConfig)?;
        let state = if opts.checkpoint.exists() {
            let cp = load_checkpoint(&opts.checkpoint)?;
            if Config::checksum(&cp.config) != Config::checksum(&config) {
                eprintln!(
                    "megh serve: checkpoint config (checksum {:016x}) differs from the \
                     requested one ({:016x}); resuming the checkpoint's",
                    Config::checksum(&cp.config),
                    Config::checksum(&config)
                );
            }
            cp
        } else {
            let space = ActionSpace::new(config.n_vms, config.n_hosts);
            MeghCheckpoint {
                lspi: SparseLspi::new(space.dim(), config.delta, config.gamma),
                temperature: config.temp0,
                steps: 0,
                config,
            }
        };

        let space = ActionSpace::new(state.config.n_vms, state.config.n_hosts);
        let mut initial = state.lspi.clone();
        initial.freeze();
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(Snapshot {
                lspi: initial,
                steps: state.steps,
                temperature: state.temperature,
            })),
            epsilon: state.config.epsilon,
            space,
            // Every shard must own at least one VM and one host, or a
            // decide routed to it could never return an action.
            shards: opts
                .shards
                .clamp(1, space.n_hosts().min(space.n_vms()).max(1)),
            queued: AtomicUsize::new(0),
            published: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });

        let mut master = state.lspi;
        master.thaw();
        let writer_state = Writer {
            policy: BoltzmannPolicy::with_temperature(state.temperature, state.config.epsilon),
            config: state.config,
            lspi: master,
            steps: state.steps,
            rng: StdRng::seed_from_u64(opts.writer_seed),
            shared: Arc::clone(&shared),
            checkpoint_path: opts.checkpoint.clone(),
            checkpoint_every: opts.checkpoint_every,
            since_checkpoint: 0,
        };
        let (tx, rx) = mpsc::channel();
        let writer = thread::spawn(move || writer_state.run(rx));

        #[cfg(unix)]
        let mut socket_path = None;
        let listener = match &opts.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                ListenerKind::Tcp(l)
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a killed daemon blocks the
                // bind; recovery must replace it.
                if path.exists() {
                    fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                socket_path = Some(path.clone());
                ListenerKind::Unix(l)
            }
        };

        Ok(Self {
            listener,
            shared,
            tx,
            writer,
            #[cfg(unix)]
            socket_path,
        })
    }

    /// The bound TCP address (`None` for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            ListenerKind::Unix(_) => None,
        }
    }

    /// Serves until a client requests shutdown.
    ///
    /// The final checkpoint is written by the writer thread *before*
    /// the shutdown response goes out, so a client that saw `bye` can
    /// rely on the state being on disk.
    ///
    /// # Errors
    ///
    /// Fails if the accept loop hits a non-transient socket error.
    pub fn run(self) -> Result<(), ServeError> {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let accepted = match &self.listener {
                ListenerKind::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nonblocking(false);
                    // Request/response round trips suffer badly under
                    // Nagle + delayed ACK; this is a latency protocol.
                    let _ = s.set_nodelay(true);
                    Connection::Tcp(s)
                }),
                #[cfg(unix)]
                ListenerKind::Unix(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nonblocking(false);
                    Connection::Unix(s)
                }),
            };
            match accepted {
                Ok(conn) => {
                    let shared = Arc::clone(&self.shared);
                    let tx = self.tx.clone();
                    thread::spawn(move || conn.serve(&shared, &tx));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e.into()),
            }
        }
        drop(self.tx);
        let _ = self.writer.join();
        #[cfg(unix)]
        if let Some(path) = &self.socket_path {
            let _ = fs::remove_file(path);
        }
        Ok(())
    }
}

/// Binds and serves in one call — what `megh serve` runs.
///
/// # Errors
///
/// See [`Server::bind`] and [`Server::run`].
pub fn run(config: MeghConfig, opts: &ServeOptions) -> Result<(), ServeError> {
    Server::bind(config, opts)?.run()
}

enum Connection {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Connection {
    fn serve(self, shared: &Shared, tx: &Sender<WriterMsg>) {
        match self {
            Connection::Tcp(stream) => {
                if let Ok(read_half) = stream.try_clone() {
                    serve_lines(BufReader::new(read_half), stream, shared, tx);
                }
            }
            #[cfg(unix)]
            Connection::Unix(stream) => {
                if let Ok(read_half) = stream.try_clone() {
                    serve_lines(BufReader::new(read_half), stream, shared, tx);
                }
            }
        }
    }
}

fn serve_lines<R: BufRead, W: Write>(
    reader: R,
    mut out: W,
    shared: &Shared,
    tx: &Sender<WriterMsg>,
) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = respond(&line, shared, tx);
        let stop = matches!(response, Response::Bye);
        let json = serde_json::to_string(&response)
            .unwrap_or_else(|_| r#"{"ok":false,"error":"response serialization failed"}"#.into());
        if writeln!(out, "{json}").is_err() {
            break;
        }
        let _ = out.flush();
        if stop {
            break;
        }
    }
}

fn error(message: impl Into<String>) -> Response {
    Response::Error {
        message: message.into(),
    }
}

fn respond(line: &str, shared: &Shared, tx: &Sender<WriterMsg>) -> Response {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => return error(e.to_string()),
    };
    match request {
        Request::Decide { seed } => {
            let snapshot = match shared.snapshot.read() {
                Ok(slot) => Arc::clone(&*slot),
                Err(poisoned) => Arc::clone(&*poisoned.into_inner()),
            };
            let policy = BoltzmannPolicy::with_temperature(snapshot.temperature, shared.epsilon);
            let mut rng = StdRng::seed_from_u64(seed);
            let sampled = if shared.shards > 1 {
                // Hierarchical decide: level 1 routes the seed to a
                // shard, level 2 samples only that shard's local
                // (VM range × host range) slice of the action space.
                let shard = (mix_seed(seed) % shared.shards as u64) as usize;
                let vms = split_range(shared.space.n_vms(), shard, shared.shards);
                let hosts = split_range(shared.space.n_hosts(), shard, shared.shards);
                policy.sample_masked(&snapshot.lspi, &mut rng, |a| {
                    let decoded = shared.space.decode(a);
                    vms.contains(&decoded.vm.0) && hosts.contains(&decoded.target.0)
                })
            } else {
                policy.sample(&snapshot.lspi, &mut rng)
            };
            match sampled {
                Some(action) => {
                    let decoded = shared.space.decode(action);
                    Response::Decision {
                        action,
                        vm: decoded.vm.0,
                        target: decoded.target.0,
                        steps: snapshot.steps,
                        temperature: snapshot.temperature,
                    }
                }
                None => error("empty action space"),
            }
        }
        Request::Observe { action, cost } => {
            if action >= shared.space.dim() {
                return error(format!(
                    "action {action} out of range (dim {})",
                    shared.space.dim()
                ));
            }
            if !cost.is_finite() {
                return error("cost must be finite");
            }
            let depth = shared.queued.fetch_add(1, Ordering::Relaxed) + 1;
            if tx.send(WriterMsg::Update { action, cost }).is_err() {
                shared.queued.fetch_sub(1, Ordering::Relaxed);
                return error("writer thread stopped");
            }
            Response::Queued { depth }
        }
        Request::Sync => {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(WriterMsg::Sync(ack_tx)).is_err() {
                return error("writer thread stopped");
            }
            match ack_rx.recv() {
                Ok(steps) => Response::Synced { steps },
                Err(_) => error("writer thread stopped"),
            }
        }
        Request::Checkpoint => {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(WriterMsg::Checkpoint(ack_tx)).is_err() {
                return error("writer thread stopped");
            }
            match ack_rx.recv() {
                Ok(Ok(steps)) => Response::Checkpointed { steps },
                Ok(Err(e)) => error(e.to_string()),
                Err(_) => error("writer thread stopped"),
            }
        }
        Request::Stats => {
            let snapshot = match shared.snapshot.read() {
                Ok(slot) => Arc::clone(&*slot),
                Err(poisoned) => Arc::clone(&*poisoned.into_inner()),
            };
            Response::Stats {
                steps: snapshot.steps,
                temperature: snapshot.temperature,
                nnz: snapshot.lspi.explicit_nnz(),
                queued: shared.queued.load(Ordering::Relaxed),
                published: shared.published.load(Ordering::Relaxed),
            }
        }
        Request::Shutdown => {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(WriterMsg::Shutdown(ack_tx)).is_ok() {
                // The final checkpoint lands before we acknowledge.
                let _ = ack_rx.recv();
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Bye
        }
    }
}
