//! A small blocking client for the daemon's wire protocol.
//!
//! Used by `megh client`, the integration tests, and the
//! `serve_throughput` bench probe. One request per call; responses are
//! returned both parsed ([`Client::request`]) and as the raw response
//! line ([`Client::request_raw`]) — the crash-recovery smoke test
//! diffs raw bytes across a daemon restart.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::daemon::{Listen, ServeError};
use crate::wire::{Request, Response};

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to a daemon with no deadline (blocking I/O).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn connect(listen: &Listen) -> io::Result<Self> {
        Self::connect_timeout(listen, None)
    }

    /// Connects to a daemon; `Some(timeout)` bounds the TCP connect
    /// *and* every subsequent read/write, so a wedged daemon surfaces
    /// as `WouldBlock`/`TimedOut` instead of hanging the caller (the
    /// ci.sh serve smoke stage relies on this).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error, including timeouts.
    pub fn connect_timeout(listen: &Listen, timeout: Option<Duration>) -> io::Result<Self> {
        let stream = match listen {
            Listen::Tcp(addr) => {
                let s = match timeout {
                    None => TcpStream::connect(addr.as_str())?,
                    Some(t) => {
                        // connect_timeout wants a resolved SocketAddr;
                        // try each resolution until one answers.
                        let mut last = io::Error::other(format!("{addr}: no addresses resolved"));
                        let mut found = None;
                        for sa in addr.as_str().to_socket_addrs()? {
                            match TcpStream::connect_timeout(&sa, t) {
                                Ok(s) => {
                                    found = Some(s);
                                    break;
                                }
                                Err(e) => last = e,
                            }
                        }
                        match found {
                            Some(s) => s,
                            None => return Err(last),
                        }
                    }
                };
                // See the server side: one-line round trips need Nagle off.
                s.set_nodelay(true)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // Unix connects are local and effectively instant; the
                // deadline matters for reads against a wedged daemon.
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
                Stream::Unix(s)
            }
        };
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Connects, retrying while the daemon is still starting up.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `attempts` are exhausted.
    pub fn connect_retry(listen: &Listen, attempts: u32, delay: Duration) -> io::Result<Self> {
        Self::connect_retry_timeout(listen, attempts, delay, None)
    }

    /// [`Client::connect_retry`] with a per-attempt connect deadline
    /// that also becomes the connection's read/write timeout.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `attempts` are exhausted.
    pub fn connect_retry_timeout(
        listen: &Listen,
        attempts: u32,
        delay: Duration,
        timeout: Option<Duration>,
    ) -> io::Result<Self> {
        let mut last = io::Error::other("no connection attempts made");
        for _ in 0..attempts.max(1) {
            match Self::connect_timeout(listen, timeout) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            std::thread::sleep(delay);
        }
        Err(last)
    }

    /// Sends one request and returns the raw response line (without the
    /// trailing newline).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or if the daemon closed the connection.
    pub fn request_raw(&mut self, request: &Request) -> Result<String, ServeError> {
        let json = serde_json::to_string(request)
            .map_err(|e| ServeError::Protocol(format!("request serialization failed: {e}")))?;
        writeln!(self.writer, "{json}")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Protocol(
                "daemon closed the connection".to_string(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one request and parses the response.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or unparsable responses.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let line = self.request_raw(request)?;
        serde_json::from_str(&line)
            .map_err(|e| ServeError::Protocol(format!("bad response {line:?}: {e}")))
    }

    /// Convenience: a seeded decide.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn decide(&mut self, seed: u64) -> Result<Response, ServeError> {
        self.request(&Request::Decide { seed })
    }

    /// Convenience: enqueue one observed `(action, cost)` update.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn observe(&mut self, action: usize, cost: f64) -> Result<Response, ServeError> {
        self.request(&Request::Observe { action, cost })
    }

    /// Convenience: barrier until all prior observes are learned.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn sync(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::Sync)
    }

    /// Convenience: force a checkpoint.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn checkpoint(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::Checkpoint)
    }

    /// Convenience: checkpoint and stop the daemon.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Response, ServeError> {
        self.request(&Request::Shutdown)
    }
}
