//! `megh serve` — a crash-safe, long-running decision daemon.
//!
//! The paper's deployment story is a controller that runs for months:
//! it decides migrations continuously, learns from every observed cost,
//! and must survive restarts without forgetting. This crate packages
//! the Megh agent as exactly that daemon:
//!
//! - **Read path** — concurrent `decide` requests are served lock-free
//!   from a frozen CSR snapshot ([`megh_core::SparseLspi::freeze`])
//!   behind an `Arc`, with per-request seeded RNGs so every decision is
//!   reproducible against its snapshot.
//! - **Write path** — a single writer thread drains a batched queue of
//!   `observe` updates, applies the Sherman–Morrison learning steps,
//!   and publishes a freshly frozen snapshot per batch.
//! - **Persistence** — versioned, checksummed checkpoints
//!   ([`megh_core::save_checkpoint`]) written atomically, loaded
//!   through a migration chain, so a daemon killed at any instant
//!   restarts from its last checkpoint and serves byte-identical
//!   decisions for the state it recovered.
//!
//! The wire protocol is line-delimited JSON over TCP or a Unix socket —
//! see [`wire`].

#![forbid(unsafe_code)]

mod client;
mod daemon;
pub mod wire;

pub use client::Client;
pub use daemon::{run, Listen, ServeError, ServeOptions, Server};
pub use wire::{Request, Response};
