//! The daemon's line-delimited JSON wire format.
//!
//! One request per line, one response per line, over TCP or a Unix
//! socket. The vendored serde shim cannot derive tagged enums, so both
//! sides of the protocol are hand-mapped onto [`Value`] trees: requests
//! carry an `"op"` discriminant, responses carry `"ok"` plus an `"op"`
//! echo. Field order is fixed by construction, which keeps response
//! bytes stable — the crash-recovery smoke test diffs them verbatim.
//!
//! Requests:
//!
//! ```json
//! {"op":"decide","seed":7}
//! {"op":"observe","action":5,"cost":0.25}
//! {"op":"sync"}
//! {"op":"checkpoint"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! A `decide` is served entirely from the currently published frozen
//! snapshot; `seed` makes it reproducible — the same seed against the
//! same snapshot returns the same action. An `observe` enqueues one
//! learning update (`action` was taken, `cost` was observed) for the
//! writer thread; `sync` blocks until everything enqueued before it has
//! been learned and republished.

use serde::de::Error as _;
use serde::value::{self, Number, Value};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A client → daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Sample one action from the published snapshot, seeded.
    Decide {
        /// RNG seed for the Boltzmann draw.
        seed: u64,
    },
    /// Enqueue one learning update: `action` was taken, `cost` observed.
    Observe {
        /// Action index that was executed.
        action: usize,
        /// Observed per-step cost (USD).
        cost: f64,
    },
    /// Block until all previously enqueued updates are learned and a
    /// fresh snapshot is published.
    Sync,
    /// Force a checkpoint of the learned state to disk.
    Checkpoint,
    /// Report daemon counters.
    Stats,
    /// Checkpoint and stop the daemon.
    Shutdown,
}

/// A daemon → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The sampled decision. Every field is persisted state, so a
    /// daemon restarted from a checkpoint answers byte-identically.
    Decision {
        /// Sampled action index.
        action: usize,
        /// Decoded VM to migrate.
        vm: usize,
        /// Decoded target host.
        target: usize,
        /// Learning steps behind the snapshot.
        steps: usize,
        /// Boltzmann temperature of the snapshot.
        temperature: f64,
    },
    /// The observe was enqueued; `depth` is the queue length after it.
    Queued {
        /// Updates waiting for the writer.
        depth: usize,
    },
    /// The sync barrier completed.
    Synced {
        /// Total learning steps applied (lifetime, checkpoint-carried).
        steps: usize,
    },
    /// State was checkpointed.
    Checkpointed {
        /// Learning steps captured in the checkpoint.
        steps: usize,
    },
    /// Daemon counters.
    Stats {
        /// Total learning steps applied.
        steps: usize,
        /// Current Boltzmann temperature.
        temperature: f64,
        /// Explicit non-zeros in the learned operator.
        nnz: usize,
        /// Updates currently queued for the writer.
        queued: usize,
        /// Snapshots published since this daemon process started.
        published: u64,
    },
    /// The daemon acknowledged shutdown.
    Bye,
    /// The request failed.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn v_u64(x: u64) -> Value {
    Value::Num(Number::U(x))
}

fn v_usize(x: usize) -> Value {
    Value::Num(Number::U(x as u64))
}

fn v_f64(x: f64) -> Value {
    Value::Num(Number::F(x))
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    Value::Object(
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    )
}

fn need_usize(pairs: &mut Vec<(String, Value)>, name: &str) -> Result<usize, String> {
    value::take_field(pairs, name)
        .as_u64()
        .and_then(|u| usize::try_from(u).ok())
        .ok_or_else(|| format!("`{name}` must be an unsigned integer"))
}

fn need_f64(pairs: &mut Vec<(String, Value)>, name: &str) -> Result<f64, String> {
    value::take_field(pairs, name)
        .as_f64()
        .ok_or_else(|| format!("`{name}` must be a number"))
}

impl Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Decide { seed } => obj(&[
                ("op", Value::String("decide".to_string())),
                ("seed", v_u64(*seed)),
            ]),
            Request::Observe { action, cost } => obj(&[
                ("op", Value::String("observe".to_string())),
                ("action", v_usize(*action)),
                ("cost", v_f64(*cost)),
            ]),
            Request::Sync => obj(&[("op", Value::String("sync".to_string()))]),
            Request::Checkpoint => obj(&[("op", Value::String("checkpoint".to_string()))]),
            Request::Stats => obj(&[("op", Value::String("stats".to_string()))]),
            Request::Shutdown => obj(&[("op", Value::String("shutdown".to_string()))]),
        }
    }

    fn from_value(root: Value) -> Result<Self, String> {
        let Value::Object(mut pairs) = root else {
            return Err("request must be a JSON object".to_string());
        };
        let op_field = value::take_field(&mut pairs, "op");
        let Some(op) = op_field.as_str() else {
            return Err("request needs a string `op`".to_string());
        };
        match op {
            "decide" => {
                let seed = value::take_field(&mut pairs, "seed")
                    .as_u64()
                    .ok_or("`seed` must be an unsigned integer")?;
                Ok(Request::Decide { seed })
            }
            "observe" => Ok(Request::Observe {
                action: need_usize(&mut pairs, "action")?,
                cost: need_f64(&mut pairs, "cost")?,
            }),
            "sync" => Ok(Request::Sync),
            "checkpoint" => Ok(Request::Checkpoint),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

impl Response {
    fn to_value(&self) -> Value {
        let ok = ("ok", Value::Bool(true));
        match self {
            Response::Decision {
                action,
                vm,
                target,
                steps,
                temperature,
            } => obj(&[
                ok,
                ("op", Value::String("decision".to_string())),
                ("action", v_usize(*action)),
                ("vm", v_usize(*vm)),
                ("target", v_usize(*target)),
                ("steps", v_usize(*steps)),
                ("temperature", v_f64(*temperature)),
            ]),
            Response::Queued { depth } => obj(&[
                ok,
                ("op", Value::String("queued".to_string())),
                ("depth", v_usize(*depth)),
            ]),
            Response::Synced { steps } => obj(&[
                ok,
                ("op", Value::String("synced".to_string())),
                ("steps", v_usize(*steps)),
            ]),
            Response::Checkpointed { steps } => obj(&[
                ok,
                ("op", Value::String("checkpointed".to_string())),
                ("steps", v_usize(*steps)),
            ]),
            Response::Stats {
                steps,
                temperature,
                nnz,
                queued,
                published,
            } => obj(&[
                ok,
                ("op", Value::String("stats".to_string())),
                ("steps", v_usize(*steps)),
                ("temperature", v_f64(*temperature)),
                ("nnz", v_usize(*nnz)),
                ("queued", v_usize(*queued)),
                ("published", v_u64(*published)),
            ]),
            Response::Bye => obj(&[ok, ("op", Value::String("bye".to_string()))]),
            Response::Error { message } => obj(&[
                ("ok", Value::Bool(false)),
                ("error", Value::String(message.clone())),
            ]),
        }
    }

    fn from_value(root: Value) -> Result<Self, String> {
        let Value::Object(mut pairs) = root else {
            return Err("response must be a JSON object".to_string());
        };
        let ok = value::take_field(&mut pairs, "ok")
            .as_bool()
            .ok_or("response needs a boolean `ok`")?;
        if !ok {
            let message = value::take_field(&mut pairs, "error")
                .as_str()
                .unwrap_or("unspecified error")
                .to_string();
            return Ok(Response::Error { message });
        }
        let op_field = value::take_field(&mut pairs, "op");
        let Some(op) = op_field.as_str() else {
            return Err("response needs a string `op`".to_string());
        };
        match op {
            "decision" => Ok(Response::Decision {
                action: need_usize(&mut pairs, "action")?,
                vm: need_usize(&mut pairs, "vm")?,
                target: need_usize(&mut pairs, "target")?,
                steps: need_usize(&mut pairs, "steps")?,
                temperature: need_f64(&mut pairs, "temperature")?,
            }),
            "queued" => Ok(Response::Queued {
                depth: need_usize(&mut pairs, "depth")?,
            }),
            "synced" => Ok(Response::Synced {
                steps: need_usize(&mut pairs, "steps")?,
            }),
            "checkpointed" => Ok(Response::Checkpointed {
                steps: need_usize(&mut pairs, "steps")?,
            }),
            "stats" => Ok(Response::Stats {
                steps: need_usize(&mut pairs, "steps")?,
                temperature: need_f64(&mut pairs, "temperature")?,
                nnz: need_usize(&mut pairs, "nnz")?,
                queued: need_usize(&mut pairs, "queued")?,
                published: value::take_field(&mut pairs, "published")
                    .as_u64()
                    .ok_or("`published` must be an unsigned integer")?,
            }),
            "bye" => Ok(Response::Bye),
            other => Err(format!("unknown response op `{other}`")),
        }
    }
}

impl Serialize for Request {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.to_value().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Request::from_value(Value::deserialize(deserializer)?).map_err(D::Error::custom)
    }
}

impl Serialize for Response {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.to_value().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Response {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Response::from_value(Value::deserialize(deserializer)?).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_round_trips() {
        let requests = [
            Request::Decide { seed: 42 },
            Request::Observe {
                action: 17,
                cost: 0.125,
            },
            Request::Sync,
            Request::Checkpoint,
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "via {json}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = [
            Response::Decision {
                action: 5,
                vm: 1,
                target: 2,
                steps: 99,
                temperature: 2.5,
            },
            Response::Queued { depth: 3 },
            Response::Synced { steps: 100 },
            Response::Checkpointed { steps: 100 },
            Response::Stats {
                steps: 7,
                temperature: 3.0,
                nnz: 12,
                queued: 0,
                published: 4,
            },
            Response::Bye,
            Response::Error {
                message: "nope".to_string(),
            },
        ];
        for resp in responses {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp, "via {json}");
        }
    }

    #[test]
    fn request_bytes_match_the_documented_format() {
        let json = serde_json::to_string(&Request::Decide { seed: 7 }).unwrap();
        assert_eq!(json, r#"{"op":"decide","seed":7}"#);
        let json = serde_json::to_string(&Request::Observe {
            action: 5,
            cost: 0.25,
        })
        .unwrap();
        assert_eq!(json, r#"{"op":"observe","action":5,"cost":0.25}"#);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for bad in [
            r#"{"seed":7}"#,
            r#"{"op":"decide"}"#,
            r#"{"op":"observe","action":1}"#,
            r#"{"op":"warp"}"#,
            r#"[1,2,3]"#,
        ] {
            assert!(
                serde_json::from_str::<Request>(bad).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn error_responses_need_no_op() {
        let resp: Response = serde_json::from_str(r#"{"ok":false,"error":"boom"}"#).unwrap();
        assert_eq!(
            resp,
            Response::Error {
                message: "boom".to_string()
            }
        );
    }
}
