//! End-to-end daemon tests: serve, learn, checkpoint, restart, and
//! verify the restarted daemon answers byte-identically for the state
//! it recovered.

use std::path::PathBuf;
use std::time::Duration;

use megh_core::{load_checkpoint, Config, MeghConfig};
use megh_serve::{Client, Listen, Request, Response, ServeOptions, Server};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("megh-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn connect(listen: &Listen) -> Client {
    Client::connect_retry(listen, 100, Duration::from_millis(20)).expect("daemon up")
}

/// Starts a daemon thread and waits until it accepts connections.
fn start(config: MeghConfig, opts: &ServeOptions) -> std::thread::JoinHandle<()> {
    let server = Server::bind(config, opts).expect("bind");
    std::thread::spawn(move || server.run().expect("serve"))
}

#[cfg(unix)]
#[test]
fn learn_checkpoint_restart_serves_identical_decisions() {
    let dir = temp_dir("restart");
    let listen = Listen::parse(&format!("unix:{}", dir.join("megh.sock").display()));
    let checkpoint = dir.join("checkpoint.json");
    let opts = ServeOptions::new(listen.clone(), checkpoint.clone());
    let config = MeghConfig::paper_defaults(8, 4);

    let handle = start(config.clone(), &opts);
    let mut client = connect(&listen);

    // Fresh daemon: steps 0, nothing learned.
    let Response::Stats { steps, nnz, .. } = client.request(&Request::Stats).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!((steps, nnz), (0, 0));

    // Feed learning updates and wait for them to be applied.
    for i in 0..40 {
        let r = client
            .observe(i % 32, 0.05 + (i % 7) as f64 * 0.01)
            .unwrap();
        assert!(matches!(r, Response::Queued { .. }), "{r:?}");
    }
    let Response::Synced { steps } = client.sync().unwrap() else {
        panic!("expected synced");
    };
    assert_eq!(steps, 40);

    // Persist, then record the exact response bytes for a seed sweep.
    assert!(matches!(
        client.checkpoint().unwrap(),
        Response::Checkpointed { steps: 40 }
    ));
    let before: Vec<String> = (0..16)
        .map(|seed| client.request_raw(&Request::Decide { seed }).unwrap())
        .collect();

    // More learning AFTER the checkpoint — must not affect what the
    // restarted daemon serves, because it was never persisted.
    for i in 0..10 {
        client.observe(i, 0.2).unwrap();
    }
    client.sync().unwrap();
    let after_extra = client.request_raw(&Request::Decide { seed: 0 }).unwrap();

    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();

    // Shutdown wrote a final checkpoint (50 steps). Wipe it and restore
    // the mid-run one to emulate "state at the last explicit persist".
    let cp = load_checkpoint(&checkpoint).unwrap();
    assert_eq!(cp.steps, 50, "shutdown checkpoints the drained state");

    // Restart against the 50-step state: decide(0) must match the
    // post-extra-learning answer, not the 40-step one.
    let handle = start(config.clone(), &opts);
    let mut client = connect(&listen);
    let Response::Stats { steps, .. } = client.request(&Request::Stats).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(steps, 50);
    let replayed = client.request_raw(&Request::Decide { seed: 0 }).unwrap();
    assert_eq!(replayed, after_extra);
    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();

    // The recovered config must fingerprint identically to the one the
    // daemon was started with.
    assert_eq!(Config::checksum(&cp.config), Config::checksum(&config));
    let _ = std::fs::remove_dir_all(&dir);

    // `before` is exercised by the crash-recovery test in the CLI crate
    // (kill -9 instead of graceful shutdown); here just pin that seeds
    // differ — a constant decision would make the diff vacuous.
    assert!(
        before.iter().any(|l| l != &before[0]),
        "seed sweep collapsed to one decision: {before:?}"
    );
}

#[test]
fn tcp_listener_serves_decides_and_reports_addr() {
    let dir = temp_dir("tcp");
    let checkpoint = dir.join("checkpoint.json");
    let opts = ServeOptions::new(Listen::parse("127.0.0.1:0"), checkpoint);
    let server = Server::bind(MeghConfig::paper_defaults(6, 3), &opts).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let listen = Listen::parse(&addr.to_string());
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = connect(&listen);
    let a = client.decide(7).unwrap();
    let b = client.decide(7).unwrap();
    assert_eq!(a, b, "same seed, same snapshot, same decision");
    let Response::Decision { vm, target, .. } = a else {
        panic!("expected decision");
    };
    assert!(vm < 6 && target < 3);

    // Concurrent readers: all threads decide against the same snapshot.
    let mut workers = Vec::new();
    for t in 0..4 {
        let listen = listen.clone();
        workers.push(std::thread::spawn(move || {
            let mut c = connect(&listen);
            (0..25)
                .map(|i| {
                    c.request_raw(&Request::Decide { seed: t * 100 + i })
                        .unwrap()
                })
                .collect::<Vec<_>>()
        }));
    }
    let transcripts: Vec<Vec<String>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // Replaying any worker's seeds yields its exact transcript.
    for (t, transcript) in transcripts.iter().enumerate() {
        for (i, line) in transcript.iter().enumerate() {
            let replay = client
                .request_raw(&Request::Decide {
                    seed: t as u64 * 100 + i as u64,
                })
                .unwrap();
            assert_eq!(&replay, line);
        }
    }

    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_decide_stays_inside_the_seed_shard() {
    // --shards 2 over 8 VMs × 4 hosts: shard 0 owns VMs 0..4 and hosts
    // 0..2, shard 1 owns VMs 4..8 and hosts 2..4 (the HierMegh static
    // partition). Every decision must pair a VM and a host of the SAME
    // shard, and equal seeds must stay reproducible.
    let dir = temp_dir("sharded");
    let checkpoint = dir.join("checkpoint.json");
    let mut opts = ServeOptions::new(Listen::parse("127.0.0.1:0"), checkpoint);
    opts.shards = 2;
    let server = Server::bind(MeghConfig::paper_defaults(8, 4), &opts).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let listen = Listen::parse(&addr.to_string());
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = connect(&listen);
    let mut shards_hit = [false; 2];
    for seed in 0..64 {
        let a = client.decide(seed).unwrap();
        assert_eq!(a, client.decide(seed).unwrap(), "seed {seed} reproducible");
        let Response::Decision { vm, target, .. } = a else {
            panic!("expected decision");
        };
        let vm_shard = vm / 4;
        let host_shard = target / 2;
        assert_eq!(
            vm_shard, host_shard,
            "seed {seed}: vm {vm} and host {target} belong to different shards"
        );
        shards_hit[vm_shard] = true;
    }
    assert_eq!(shards_hit, [true, true], "64 seeds must reach both shards");

    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_answered_not_fatal() {
    let dir = temp_dir("proto");
    let opts = ServeOptions::new(Listen::parse("127.0.0.1:0"), dir.join("cp.json"));
    let server = Server::bind(MeghConfig::paper_defaults(4, 2), &opts).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let listen = Listen::parse(&addr.to_string());
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = connect(&listen);
    // Out-of-range action.
    let r = client.observe(10_000, 0.1).unwrap();
    assert!(matches!(r, Response::Error { .. }), "{r:?}");
    // Non-finite cost.
    let r = client.observe(0, f64::NAN).unwrap();
    assert!(matches!(r, Response::Error { .. }), "{r:?}");
    // The connection still works afterwards.
    assert!(matches!(
        client.decide(1).unwrap(),
        Response::Decision { .. }
    ));

    assert!(matches!(client.shutdown().unwrap(), Response::Bye));
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_timeout_unwedges_a_silent_server() {
    // A "daemon" that accepts connections and then never answers: a
    // deadline-armed client must error out instead of blocking forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let wedge = std::thread::spawn(move || {
        // Hold each accepted socket open until the test ends.
        let mut held = Vec::new();
        for stream in listener.incoming() {
            match stream {
                Ok(s) => held.push(s),
                Err(_) => break,
            }
            if !held.is_empty() {
                // Keep the socket alive long enough for the client to
                // hit its read deadline, then let the thread exit.
                std::thread::sleep(Duration::from_millis(500));
                break;
            }
        }
    });

    let listen = Listen::parse(&addr.to_string());
    let started = std::time::Instant::now();
    let mut client =
        Client::connect_timeout(&listen, Some(Duration::from_millis(100))).expect("tcp connect");
    let err = client
        .request(&Request::Stats)
        .expect_err("silent server must not produce a response");
    let waited = started.elapsed();
    let msg = err.to_string();
    assert!(
        waited < Duration::from_secs(5),
        "client hung for {waited:?} against a wedged server: {msg}"
    );
    wedge.join().expect("wedge thread");
}
