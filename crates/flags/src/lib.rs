//! Typed command-line flag tables.
//!
//! Every `megh` subcommand and bench binary used to hand-roll its own
//! `--key value` lookups (and its own copy of the help text describing
//! them). This crate centralizes that: a [`FlagTable`] declares each
//! flag once — name, value placeholder, default, one-line description —
//! and provides both the typed getters *and* the generated `--help`
//! section, so the two can never drift apart.
//!
//! The crate is deliberately tiny and dependency-free:
//!
//! * [`FlagSpec`] / [`FlagTable`] — the declarations plus
//!   [`FlagTable::render_help`];
//! * [`FlagSource`] — anything flags can be read from (the CLI's parsed
//!   argument struct, or [`EnvArgs`] for standalone binaries);
//! * typed getters ([`FlagTable::parsed`], [`FlagTable::positive_usize`],
//!   [`FlagTable::switch`], [`FlagTable::required`]) returning
//!   [`FlagError`] on bad input.
//!
//! Getters assert that the requested flag is declared in the table, so
//! a command cannot quietly read a flag its help text does not mention.
//!
//! # Examples
//!
//! ```
//! use megh_flags::{EnvArgs, FlagSpec, FlagTable};
//!
//! const TABLE: FlagTable = FlagTable::new(
//!     "demo",
//!     &[
//!         FlagSpec::opt("seeds", "N", "8", "number of seeds"),
//!         FlagSpec::switch("full", "use the paper-scale fleet"),
//!     ],
//! );
//!
//! let args = EnvArgs::from_tokens(["--seeds", "3"].iter().map(|s| s.to_string()));
//! assert_eq!(TABLE.parsed(&args, "seeds", 8usize, "integer").unwrap(), 3);
//! assert!(!TABLE.switch(&args, "full"));
//! assert!(TABLE.render_help().contains("--seeds N"));
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

use std::fmt;

/// One declared flag: everything the parser and the help text need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagSpec {
    /// Flag name without the leading `--`.
    pub name: &'static str,
    /// Value placeholder for the help line (`None` for a bare switch).
    pub value: Option<&'static str>,
    /// Default rendered in the help line; empty for required flags and
    /// switches.
    pub default: &'static str,
    /// One-line description.
    pub help: &'static str,
}

impl FlagSpec {
    /// A `--name VALUE` option.
    pub const fn opt(
        name: &'static str,
        value: &'static str,
        default: &'static str,
        help: &'static str,
    ) -> Self {
        Self {
            name,
            value: Some(value),
            default,
            help,
        }
    }

    /// A bare `--name` switch.
    pub const fn switch(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            value: None,
            default: "",
            help,
        }
    }

    /// The `--name VALUE` column of the help line.
    fn usage(&self) -> String {
        match self.value {
            Some(value) => format!("--{} {}", self.name, value),
            None => format!("--{}", self.name),
        }
    }
}

/// A named set of flags for one subcommand or binary.
#[derive(Debug, Clone, Copy)]
pub struct FlagTable {
    /// Section title used in assertions and help output.
    pub title: &'static str,
    /// The declared flags, in help-rendering order.
    pub specs: &'static [FlagSpec],
}

/// Errors produced by the typed getters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// A required flag was not supplied.
    Missing(&'static str),
    /// A flag's value did not parse or is out of range.
    Invalid {
        /// Flag name.
        key: String,
        /// Supplied value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Missing(key) => write!(f, "missing required option --{key}"),
            Self::Invalid {
                key,
                value,
                expected,
            } => write!(f, "option --{key}={value:?} is not a valid {expected}"),
        }
    }
}

impl std::error::Error for FlagError {}

/// Anything flag values can be read from.
///
/// Implemented by [`EnvArgs`] here and by the CLI's parsed argument
/// struct in `megh-cli`.
pub trait FlagSource {
    /// The raw value of `--name VALUE` / `--name=VALUE`, if supplied.
    fn value(&self, name: &str) -> Option<&str>;
    /// Whether the bare switch `--name` was supplied.
    fn is_set(&self, name: &str) -> bool;
}

impl FlagTable {
    /// Declares a table (usable in `const` position).
    pub const fn new(title: &'static str, specs: &'static [FlagSpec]) -> Self {
        Self { title, specs }
    }

    /// The spec for `name`, if declared.
    pub fn spec(&self, name: &str) -> Option<&FlagSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    fn declared(&self, name: &str) -> &FlagSpec {
        match self.spec(name) {
            Some(spec) => spec,
            None => panic!("flag --{name} is not declared in table {:?}", self.title),
        }
    }

    /// The generated help section: one aligned line per flag, with the
    /// default in trailing brackets when one is declared.
    pub fn render_help(&self) -> String {
        let width = self
            .specs
            .iter()
            .map(|s| s.usage().len())
            .max()
            .unwrap_or(0)
            .max(28);
        let mut out = format!("{}:\n", self.title);
        for spec in self.specs {
            out.push_str(&format!("  {:<width$}  {}", spec.usage(), spec.help));
            if !spec.default.is_empty() {
                out.push_str(&format!(" [{}]", spec.default));
            }
            out.push('\n');
        }
        out
    }

    /// A string value with the table's declared default semantics left
    /// to the caller (returns `None` when absent).
    pub fn get<'a>(&self, src: &'a impl FlagSource, name: &str) -> Option<&'a str> {
        self.declared(name);
        src.value(name)
    }

    /// A required string value.
    ///
    /// # Errors
    ///
    /// Returns [`FlagError::Missing`] when absent. The declared spec's
    /// name is returned in the error, so it must be `'static`.
    pub fn required<'a>(&self, src: &'a impl FlagSource, name: &str) -> Result<&'a str, FlagError> {
        let spec = self.declared(name);
        src.value(name).ok_or(FlagError::Missing(spec.name))
    }

    /// A parsed value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`FlagError::Invalid`] when the supplied value does not
    /// parse as `T`.
    pub fn parsed<T: std::str::FromStr>(
        &self,
        src: &impl FlagSource,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, FlagError> {
        self.declared(name);
        match src.value(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| FlagError::Invalid {
                key: name.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// A parsed `usize` that must be ≥ 1 (worker counts, seed counts).
    ///
    /// # Errors
    ///
    /// Returns [`FlagError::Invalid`] for unparsable values or 0.
    pub fn positive_usize(
        &self,
        src: &impl FlagSource,
        name: &str,
        default: usize,
    ) -> Result<usize, FlagError> {
        let expected = "positive integer (>= 1)";
        let value = self.parsed(src, name, default, expected)?;
        if value == 0 {
            return Err(FlagError::Invalid {
                key: name.to_string(),
                value: "0".into(),
                expected,
            });
        }
        Ok(value)
    }

    /// Whether the declared switch was supplied.
    pub fn switch(&self, src: &impl FlagSource, name: &str) -> bool {
        self.declared(name);
        src.is_set(name)
    }
}

/// Process arguments as a [`FlagSource`], for standalone binaries that
/// have no subcommand grammar (the bench suite).
///
/// Tokenization matches the CLI's: `--key value` binds the next token
/// unless it starts with `--`; `--key=value` is accepted; anything else
/// is ignored. [`EnvArgs::is_set`] additionally matches a literal
/// `--name` token anywhere, preserving the bench binaries' historical
/// "`--full` anywhere wins" behaviour.
#[derive(Debug, Clone, Default)]
pub struct EnvArgs {
    tokens: Vec<String>,
}

impl EnvArgs {
    /// Captures the current process arguments (program name skipped).
    pub fn from_env() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Builds from an explicit token stream (tests, embedding).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
        Self {
            tokens: tokens.into_iter().collect(),
        }
    }

    /// A `usize` flag with fall-back-to-default semantics: absent,
    /// malformed, or zero values all yield `default`. The bench
    /// binaries' historical `--seeds` / `--threads` contract.
    pub fn lenient_usize(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(default)
    }
}

impl FlagSource for EnvArgs {
    fn value(&self, name: &str) -> Option<&str> {
        let mut i = 0;
        while i < self.tokens.len() {
            if let Some(stripped) = self.tokens[i].strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    if key == name {
                        return Some(value);
                    }
                } else if stripped == name {
                    if let Some(next) = self.tokens.get(i + 1) {
                        if !next.starts_with("--") {
                            return Some(next);
                        }
                    }
                    return None;
                }
            }
            i += 1;
        }
        None
    }

    fn is_set(&self, name: &str) -> bool {
        self.tokens.iter().any(|t| {
            t.strip_prefix("--")
                .is_some_and(|stripped| stripped == name)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: FlagTable = FlagTable::new(
        "test flags",
        &[
            FlagSpec::opt("seeds", "N", "8", "number of seeds"),
            FlagSpec::opt("threads", "T", "1", "worker threads"),
            FlagSpec::opt("out", "FILE", "", "output path (required)"),
            FlagSpec::switch("full", "paper-scale fleet"),
        ],
    );

    fn env(line: &str) -> EnvArgs {
        EnvArgs::from_tokens(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parsed_reads_value_or_default() {
        let args = env("--seeds 5");
        assert_eq!(TABLE.parsed(&args, "seeds", 8usize, "integer").unwrap(), 5);
        assert_eq!(
            TABLE.parsed(&args, "threads", 1usize, "integer").unwrap(),
            1
        );
    }

    #[test]
    fn equals_form_is_accepted() {
        let args = env("--seeds=12");
        assert_eq!(TABLE.parsed(&args, "seeds", 8usize, "integer").unwrap(), 12);
    }

    #[test]
    fn malformed_value_is_an_error() {
        let args = env("--seeds abc");
        let err = TABLE.parsed(&args, "seeds", 8usize, "integer").unwrap_err();
        assert!(matches!(err, FlagError::Invalid { .. }));
        assert!(err.to_string().contains("--seeds"));
    }

    #[test]
    fn positive_usize_rejects_zero() {
        let args = env("--threads 0");
        assert!(TABLE.positive_usize(&args, "threads", 1).is_err());
        let args = env("--threads 4");
        assert_eq!(TABLE.positive_usize(&args, "threads", 1).unwrap(), 4);
        assert_eq!(TABLE.positive_usize(&env(""), "threads", 2).unwrap(), 2);
    }

    #[test]
    fn required_errors_when_absent() {
        assert_eq!(
            TABLE.required(&env(""), "out").unwrap_err(),
            FlagError::Missing("out")
        );
        assert_eq!(
            TABLE.required(&env("--out x.json"), "out").unwrap(),
            "x.json"
        );
    }

    #[test]
    fn switch_detection() {
        assert!(TABLE.switch(&env("--full"), "full"));
        assert!(TABLE.switch(&env("--seeds 3 --full"), "full"));
        assert!(!TABLE.switch(&env("--seeds 3"), "full"));
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_flag_is_a_programming_error() {
        let _ = TABLE.parsed(&env(""), "bogus", 0usize, "integer");
    }

    #[test]
    fn render_help_lists_every_flag_with_defaults() {
        let help = TABLE.render_help();
        assert!(help.starts_with("test flags:\n"));
        assert!(help.contains("--seeds N"));
        assert!(help.contains("[8]"));
        assert!(help.contains("--full"));
        assert!(!help.contains("--out FILE  output path (required) []"));
    }

    #[test]
    fn lenient_usize_matches_bench_contract() {
        assert_eq!(env("--seeds 3").lenient_usize("seeds", 8), 3);
        assert_eq!(env("--seeds abc").lenient_usize("seeds", 8), 8);
        assert_eq!(env("--seeds 0").lenient_usize("seeds", 8), 8);
        assert_eq!(env("").lenient_usize("seeds", 8), 8);
    }

    #[test]
    fn env_args_value_stops_at_next_flag() {
        let args = env("--full --seeds 3");
        assert_eq!(args.value("full"), None);
        assert!(args.is_set("full"));
        assert_eq!(args.value("seeds"), Some("3"));
    }
}
