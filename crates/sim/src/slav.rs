//! Literature-standard SLA metrics (Beloglazov & Buyya 2012).
//!
//! Beyond the paper's monetary cost model (§3), the dynamic-
//! consolidation literature evaluates schedulers with four standard
//! composite metrics, which this module derives from a finished run:
//!
//! * **SLATAH** — SLA violation Time per Active Host: the fraction of
//!   its active time each host spent at 100 % utilization, averaged
//!   over hosts that were ever active.
//! * **PDM** — Performance Degradation due to Migration: total
//!   migration-caused performance loss over total requested capacity.
//! * **SLAV** = SLATAH × PDM — the combined violation metric.
//! * **ESV** = Energy × SLAV — the single-figure energy/SLA trade-off.
//!
//! The engine records what these need (per-host saturation time, per-VM
//! migration downtime); [`SlavMetrics::from_run`] assembles them.

use serde::{Deserialize, Serialize};

use crate::{SimulationOutcome, StepRecord};

/// The Beloglazov metric bundle for one finished run.
///
/// # Examples
///
/// ```
/// use megh_sim::{DataCenterConfig, NoOpScheduler, Simulation, SlavMetrics};
/// use megh_trace::PlanetLabConfig;
///
/// let trace = PlanetLabConfig::new(6, 1).generate_steps(10);
/// let outcome = Simulation::new(DataCenterConfig::paper_planetlab(3, 6), trace)?
///     .run(NoOpScheduler::default());
/// let metrics = SlavMetrics::from_run(&outcome);
/// assert!(metrics.slav >= 0.0);
/// # Ok::<(), megh_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlavMetrics {
    /// SLA violation time per active host, as a fraction in `[0, 1]`.
    pub slatah: f64,
    /// Performance degradation due to migration, as a fraction.
    pub pdm: f64,
    /// `SLATAH × PDM`.
    pub slav: f64,
    /// Total energy consumed in kWh.
    pub energy_kwh: f64,
    /// `energy_kwh × SLAV` — lower is better on both axes at once.
    pub esv: f64,
}

impl SlavMetrics {
    /// Derives the metric bundle from a finished simulation.
    ///
    /// SLATAH is approximated from the per-step record stream: a step
    /// counts as saturation time when at least one host exceeded the β
    /// threshold (the engine's `overloaded_hosts` counter), weighted by
    /// the overloaded fraction of active hosts. PDM uses each VM's
    /// accumulated migration + deficit downtime against its requested
    /// time.
    pub fn from_run(outcome: &SimulationOutcome) -> Self {
        let records = outcome.records();
        let slatah = slatah_from_records(records);
        let pdm = {
            let total_requested: f64 = outcome.vm_requested_seconds().iter().sum();
            let total_downtime: f64 = outcome.vm_downtime_seconds().iter().sum();
            if total_requested > 0.0 {
                total_downtime / total_requested
            } else {
                0.0
            }
        };
        let slav = slatah * pdm;
        // Exact energy from the per-host Joule breakdown (tariff-free).
        let joules: f64 = outcome.host_energy_joules().iter().sum();
        let energy_kwh = joules / 3.6e6;
        Self {
            slatah,
            pdm,
            slav,
            energy_kwh,
            esv: energy_kwh * slav,
        }
    }
}

fn slatah_from_records(records: &[StepRecord]) -> f64 {
    let mut overloaded_weighted = 0.0;
    let mut active_steps = 0.0;
    for r in records {
        if r.active_hosts > 0 {
            active_steps += 1.0;
            overloaded_weighted += r.overloaded_hosts as f64 / r.active_hosts as f64;
        }
    }
    if active_steps > 0.0 {
        overloaded_weighted / active_steps
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataCenterConfig, NoOpScheduler, Simulation, VmSpec};
    use megh_trace::WorkloadTrace;

    fn run(util: f64, steps: usize) -> SimulationOutcome {
        let mut config = DataCenterConfig::paper_planetlab(1, 2);
        config.vms = vec![VmSpec::new(1500.0, 1024.0, 100.0); 2];
        let trace = WorkloadTrace::from_rows(300, vec![vec![util; steps]; 2]).unwrap();
        Simulation::new(config, trace).unwrap().run(NoOpScheduler)
    }

    #[test]
    fn idle_run_has_zero_slav() {
        let m = SlavMetrics::from_run(&run(10.0, 8));
        assert_eq!(m.slatah, 0.0);
        assert_eq!(m.pdm, 0.0);
        assert_eq!(m.slav, 0.0);
        assert_eq!(m.esv, 0.0);
        assert!(m.energy_kwh > 0.0);
    }

    #[test]
    fn saturated_run_has_full_slatah() {
        // 2 × 1500 MIPS at 100 % on a 3720-MIPS host: util 0.81 > β
        // every step → SLATAH = 1.
        let m = SlavMetrics::from_run(&run(100.0, 8));
        assert_eq!(m.slatah, 1.0);
        // util < 1.0 → no deficit downtime, no migrations → PDM = 0.
        assert_eq!(m.pdm, 0.0);
    }

    #[test]
    fn deficit_run_has_positive_slav() {
        // Overcommit: 2 × 2500 at 100 % on 3720 → util 1.34.
        let mut config = DataCenterConfig::paper_planetlab(1, 2);
        config.vms = vec![VmSpec::new(2500.0, 1024.0, 100.0); 2];
        let trace = WorkloadTrace::from_rows(300, vec![vec![100.0; 8]; 2]).unwrap();
        let outcome = Simulation::new(config, trace).unwrap().run(NoOpScheduler);
        let m = SlavMetrics::from_run(&outcome);
        assert_eq!(m.slatah, 1.0);
        assert!(m.pdm > 0.0);
        assert!(m.slav > 0.0);
        assert!(m.esv > 0.0);
    }

    #[test]
    fn energy_kwh_matches_cost_tariff() {
        let outcome = run(10.0, 8);
        let m = SlavMetrics::from_run(&outcome);
        let report = outcome.report();
        let expected = report.energy_cost_usd / 0.18675;
        assert!((m.energy_kwh - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let config = DataCenterConfig::paper_planetlab(2, 0);
        let trace = WorkloadTrace::from_rows(300, vec![]).unwrap();
        let outcome = Simulation::new(config, trace).unwrap().run(NoOpScheduler);
        let m = SlavMetrics::from_run(&outcome);
        assert_eq!(
            m,
            SlavMetrics {
                slatah: 0.0,
                pdm: 0.0,
                slav: 0.0,
                energy_kwh: 0.0,
                esv: 0.0
            }
        );
    }
}
