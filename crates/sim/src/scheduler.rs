//! The scheduler interface: what Megh and every baseline implement.

use serde::{Deserialize, Serialize};

use crate::{DataCenterView, PmId, VmId};

/// A request to live-migrate one VM to a destination host.
///
/// The pair `(vm, target)` is exactly the paper's action `(j, k)` (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MigrationRequest {
    /// The VM to migrate.
    pub vm: VmId,
    /// The destination host.
    pub target: PmId,
}

impl MigrationRequest {
    /// Creates a migration request.
    pub fn new(vm: VmId, target: PmId) -> Self {
        Self { vm, target }
    }
}

/// Feedback the engine hands back after applying a step's decisions.
///
/// RL schedulers (Megh, MadVM, Q-learning) learn from `total_cost_usd`,
/// the paper's per-stage cost `C(s_{t-1}, s_t) = ΔC_p + ΔC_v` (Eq. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepFeedback {
    /// The step whose interval this feedback covers.
    pub step: usize,
    /// Energy cost `ΔC_p` over the interval, USD.
    pub energy_cost_usd: f64,
    /// SLA-violation cost `ΔC_v` over the interval, USD.
    pub sla_cost_usd: f64,
    /// Total per-stage cost, USD.
    pub total_cost_usd: f64,
    /// The migrations the engine actually applied (after validation and
    /// the 2 % cap). May be fewer than the scheduler requested.
    pub applied: Vec<MigrationRequest>,
}

/// A live-migration scheduler: decides which VMs move where each step.
///
/// The engine calls [`Scheduler::decide`] with a read-only
/// [`DataCenterView`], applies the (validated, capped) requests, accounts
/// costs for the interval, and reports them via [`Scheduler::observe`].
///
/// Determinism contract: given the same view sequence and the same
/// internal seed, a scheduler must produce the same decisions, so that
/// experiments are reproducible.
pub trait Scheduler {
    /// Short stable name used in reports ("Megh", "THR-MMT", …).
    fn name(&self) -> &str;

    /// Chooses migrations for the current step.
    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest>;

    /// Receives the realised cost of the last interval. Default: ignore
    /// (pure heuristics like the MMT family are cost-oblivious).
    fn observe(&mut self, feedback: &StepFeedback) {
        let _ = feedback;
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        (**self).decide(view)
    }

    fn observe(&mut self, feedback: &StepFeedback) {
        (**self).observe(feedback)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        (**self).decide(view)
    }

    fn observe(&mut self, feedback: &StepFeedback) {
        (**self).observe(feedback)
    }
}

/// A scheduler that never migrates anything.
///
/// Useful as an experimental floor (pure static placement) and in tests.
///
/// # Examples
///
/// ```
/// use megh_sim::{NoOpScheduler, Scheduler};
///
/// let mut s = NoOpScheduler::default();
/// assert_eq!(s.name(), "NoOp");
/// ```
#[derive(Debug, Clone, Default)]
pub struct NoOpScheduler;

impl Scheduler for NoOpScheduler {
    fn name(&self) -> &str {
        "NoOp"
    }

    fn decide(&mut self, _view: &DataCenterView) -> Vec<MigrationRequest> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_request_identity() {
        let a = MigrationRequest::new(VmId(1), PmId(2));
        let b = MigrationRequest {
            vm: VmId(1),
            target: PmId(2),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn noop_never_migrates() {
        let mut s = NoOpScheduler;
        let view = crate::view::tests::toy_view();
        assert!(s.decide(&view).is_empty());
        // observe must be callable and harmless.
        s.observe(&StepFeedback {
            step: 0,
            energy_cost_usd: 1.0,
            sla_cost_usd: 0.0,
            total_cost_usd: 1.0,
            applied: vec![],
        });
    }
}
