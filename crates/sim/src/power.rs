//! Host power models from the SPECpower_ssj2008 benchmark (Table 1).

use megh_linalg::PiecewiseLinear;
use serde::{Deserialize, Serialize};

/// Table 1 of the paper: HP ProLiant ML110 G4, Watts at 0–100 % load.
pub const HP_PROLIANT_G4_WATTS: [f64; 11] = [
    86.0, 89.4, 92.6, 96.0, 99.5, 102.0, 106.0, 108.0, 112.0, 114.0, 117.0,
];

/// Table 1 of the paper: HP ProLiant ML110 G5, Watts at 0–100 % load.
pub const HP_PROLIANT_G5_WATTS: [f64; 11] = [
    93.7, 97.0, 101.0, 105.0, 110.0, 116.0, 121.0, 125.0, 129.0, 133.0, 135.0,
];

/// A host power model: Watts as a function of CPU utilization.
///
/// Utilization is a fraction in `[0, 1]`; values above 1 (overload) clamp
/// to the 100 % figure, matching CloudSim's `PowerModelSpecPower`. A host
/// that is asleep (no VMs, switched off by the consolidation logic) draws
/// zero power — the simulator handles that state, not this model.
///
/// # Examples
///
/// ```
/// use megh_sim::PowerModel;
///
/// let g4 = PowerModel::hp_proliant_g4();
/// assert_eq!(g4.watts_at(0.0), 86.0);
/// assert_eq!(g4.watts_at(1.0), 117.0);
/// assert_eq!(g4.watts_at(0.5), 102.0);
/// assert!(g4.watts_at(0.05) > 86.0 && g4.watts_at(0.05) < 89.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    name: String,
    curve: PiecewiseLinear,
}

impl PowerModel {
    /// Builds a power model from Watts tabulated at 0 %, 10 %, …, 100 %.
    ///
    /// # Errors
    ///
    /// Returns `None` if any tabulated value is non-finite or negative.
    pub fn from_table(name: impl Into<String>, watts: &[f64; 11]) -> Option<Self> {
        if watts.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let knots = watts
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as f64 / 10.0, w))
            .collect();
        Some(Self {
            name: name.into(),
            curve: PiecewiseLinear::new(knots)?,
        })
    }

    /// The HP ProLiant ML110 G4 model (Table 1, first row).
    pub fn hp_proliant_g4() -> Self {
        // Infallible: the Table 1 constants are finite and non-negative.
        Self::from_table("HP ProLiant ML110 G4", &HP_PROLIANT_G4_WATTS)
            .expect("table 1 constants are valid") // lint: allow(panic)
    }

    /// The HP ProLiant ML110 G5 model (Table 1, second row).
    pub fn hp_proliant_g5() -> Self {
        // Infallible: the Table 1 constants are finite and non-negative.
        Self::from_table("HP ProLiant ML110 G5", &HP_PROLIANT_G5_WATTS)
            .expect("table 1 constants are valid") // lint: allow(panic)
    }

    /// Instantaneous draw in Watts at `utilization` (fraction; clamped to
    /// `[0, 1]`).
    pub fn watts_at(&self, utilization: f64) -> f64 {
        self.curve.eval(utilization.clamp(0.0, 1.0))
    }

    /// Energy in Joules consumed over `seconds` at constant `utilization`.
    pub fn energy_joules(&self, utilization: f64, seconds: f64) -> f64 {
        self.watts_at(utilization) * seconds.max(0.0)
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Idle draw in Watts (utilization 0).
    pub fn idle_watts(&self) -> f64 {
        self.watts_at(0.0)
    }

    /// Peak draw in Watts (utilization 1).
    pub fn peak_watts(&self) -> f64 {
        self.watts_at(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_are_reproduced_exactly() {
        let g4 = PowerModel::hp_proliant_g4();
        let g5 = PowerModel::hp_proliant_g5();
        for (i, (&w4, &w5)) in HP_PROLIANT_G4_WATTS
            .iter()
            .zip(&HP_PROLIANT_G5_WATTS)
            .enumerate()
        {
            let u = i as f64 / 10.0;
            assert_eq!(g4.watts_at(u), w4, "G4 at {u}");
            assert_eq!(g5.watts_at(u), w5, "G5 at {u}");
        }
    }

    #[test]
    fn interpolation_between_table_points() {
        let g4 = PowerModel::hp_proliant_g4();
        // Halfway between 40 % (99.5 W) and 50 % (102 W).
        assert!((g4.watts_at(0.45) - 100.75).abs() < 1e-9);
    }

    #[test]
    fn overload_clamps_to_peak() {
        let g5 = PowerModel::hp_proliant_g5();
        assert_eq!(g5.watts_at(1.4), 135.0);
        assert_eq!(g5.watts_at(-0.2), 93.7);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let g4 = PowerModel::hp_proliant_g4();
        let mut prev = 0.0;
        for i in 0..=100 {
            let w = g4.watts_at(i as f64 / 100.0);
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn energy_scales_with_time() {
        let g4 = PowerModel::hp_proliant_g4();
        assert_eq!(g4.energy_joules(0.0, 300.0), 86.0 * 300.0);
        assert_eq!(g4.energy_joules(0.5, 0.0), 0.0);
        assert_eq!(g4.energy_joules(0.5, -5.0), 0.0);
    }

    #[test]
    fn g5_idles_higher_but_also_peaks_higher() {
        // The G4/G5 asymmetry is what PABFD and Megh can exploit.
        let g4 = PowerModel::hp_proliant_g4();
        let g5 = PowerModel::hp_proliant_g5();
        assert!(g5.idle_watts() > g4.idle_watts());
        assert!(g5.peak_watts() > g4.peak_watts());
    }

    #[test]
    fn invalid_tables_are_rejected() {
        let mut bad = HP_PROLIANT_G4_WATTS;
        bad[3] = f64::NAN;
        assert!(PowerModel::from_table("bad", &bad).is_none());
        let mut neg = HP_PROLIANT_G4_WATTS;
        neg[0] = -1.0;
        assert!(PowerModel::from_table("neg", &neg).is_none());
    }
}
