//! Per-step accounting kernels shared by the sequential and parallel
//! engine paths.
//!
//! The engine's phase-5 accounting (per-host power draw + capacity
//! deficit, then per-VM SLA terms) is embarrassingly parallel: every
//! host and every VM is independent. These kernels operate on disjoint
//! output slots so `run_core` can hand chunked ranges to the persistent
//! [`crate::pool::StepPool`] workers and merge the results sequentially
//! in index order — the same deterministic-merge pattern as
//! [`crate::sweep::run_sweep`]. The single-threaded path calls the very
//! same kernels over the full range, so sequential and parallel runs
//! are byte-identical by construction.
//!
//! Kernels are pure over their slices and run on the per-step hot path:
//! they must not allocate, panic, or read any nondeterministic state.
//! Enforced by `cargo run -p lint`.
// lint: deny_alloc

use crate::{CostParams, PowerModel};

/// Computes per-host energy, capacity deficit, and utilization for one
/// chunk of hosts (all slices cover the same host range).
///
/// Per host `h` in the chunk:
///
/// * down hosts draw no power and serve nothing — deficit 1 when
///   occupied;
/// * hosts with no VMs sleep at 0 W;
/// * otherwise `out_util[h] = used/mips`, `out_joules[h]` is the
///   SPECpower draw over `tau` seconds, and `out_deficit[h]` is the
///   unserved fraction `1 - 1/u` when demand exceeds capacity (§3.3).
// lint: depth_budget(5)
#[allow(clippy::too_many_arguments)]
pub(crate) fn host_metrics_chunk(
    host_used: &[f64],
    host_mips: &[f64],
    host_vm_count: &[usize],
    host_down: &[bool],
    power: &[PowerModel],
    tau: f64,
    out_joules: &mut [f64],
    out_deficit: &mut [f64],
    out_util: &mut [f64],
) {
    // Contract: every slice covers the same host range (doc above);
    // these equalities are what lets the interval pass prove the loop
    // below in-bounds for all seven arrays.
    debug_assert_eq!(host_mips.len(), host_used.len());
    debug_assert_eq!(host_vm_count.len(), host_used.len());
    debug_assert_eq!(host_down.len(), host_used.len());
    debug_assert_eq!(power.len(), host_used.len());
    debug_assert_eq!(out_joules.len(), host_used.len());
    debug_assert_eq!(out_deficit.len(), host_used.len());
    debug_assert_eq!(out_util.len(), host_used.len());
    for h in 0..host_used.len() {
        out_joules[h] = 0.0;
        out_deficit[h] = 0.0;
        out_util[h] = 0.0;
        if host_down[h] {
            // A down host draws no power and serves nothing: every
            // resident VM is fully unavailable.
            if host_vm_count[h] > 0 {
                out_deficit[h] = 1.0;
            }
            continue;
        }
        if host_vm_count[h] == 0 {
            continue; // asleep, 0 W
        }
        let u = if host_mips[h] > 0.0 {
            host_used[h] / host_mips[h]
        } else {
            0.0
        };
        out_util[h] = u;
        out_joules[h] = power[h].energy_joules(u, tau);
        if u > 1.0 {
            out_deficit[h] = 1.0 - 1.0 / u;
        }
    }
}

/// Accrues downtime/requested time and computes the per-VM SLA cost
/// term for one chunk of VMs.
///
/// `placement`, `vm_downtime_s`, `vm_requested_s`, and `out_sla` cover
/// the same VM range; `deficit` is the *full* per-host deficit array
/// from [`host_metrics_chunk`]. The caller sums `out_sla` in ascending
/// VM order, reproducing the sequential accumulation exactly.
// lint: depth_budget(3)
pub(crate) fn vm_sla_chunk(
    placement: &[usize],
    deficit: &[f64],
    tau: f64,
    cost: &CostParams,
    vm_downtime_s: &mut [f64],
    vm_requested_s: &mut [f64],
    out_sla: &mut [f64],
) {
    // Contract: the per-VM slices cover the same VM range (doc above).
    debug_assert_eq!(vm_downtime_s.len(), placement.len());
    debug_assert_eq!(vm_requested_s.len(), placement.len());
    debug_assert_eq!(out_sla.len(), placement.len());
    for j in 0..placement.len() {
        // lint: allow(implicit_panic) -- placement entries are host ids < deficit.len() by construction (engine invariant checked at build)
        let d = deficit[placement[j]];
        if d > 0.0 {
            vm_downtime_s[j] += d * tau;
        }
        vm_requested_s[j] += tau;
        let fraction = vm_downtime_s[j] / vm_requested_s[j];
        out_sla[j] = cost.sla_cost_usd(cost.sla_band(fraction), tau);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_kernel_handles_down_sleeping_and_overloaded() {
        let used = [0.0, 100.0, 150.0, 50.0];
        let mips = [100.0, 100.0, 100.0, 100.0];
        let count = [0usize, 1, 2, 3];
        let down = [false, false, false, true];
        let power = vec![PowerModel::hp_proliant_g4(); 4];
        let (mut joules, mut deficit, mut util) = ([9.0; 4], [9.0; 4], [9.0; 4]);
        host_metrics_chunk(
            &used,
            &mips,
            &count,
            &down,
            &power,
            300.0,
            &mut joules,
            &mut deficit,
            &mut util,
        );
        // Host 0 sleeps, host 1 runs at exactly capacity, host 2 is
        // overloaded 1.5×, host 3 is down while occupied.
        assert_eq!(joules[0], 0.0);
        assert_eq!(deficit[0], 0.0);
        assert!(joules[1] > 0.0);
        assert_eq!(deficit[1], 0.0);
        assert_eq!(util[2], 1.5);
        assert!((deficit[2] - (1.0 - 1.0 / 1.5)).abs() < 1e-12);
        assert_eq!(joules[3], 0.0);
        assert_eq!(deficit[3], 1.0);
    }

    #[test]
    fn sla_kernel_accrues_downtime_against_full_deficit_array() {
        let placement = [1usize, 0];
        let deficit = [0.0, 0.25];
        let cost = CostParams::paper_defaults();
        let mut down = [0.0, 0.0];
        let mut req = [0.0, 0.0];
        let mut sla = [9.0, 9.0];
        vm_sla_chunk(
            &placement, &deficit, 300.0, &cost, &mut down, &mut req, &mut sla,
        );
        assert_eq!(down, [75.0, 0.0]);
        assert_eq!(req, [300.0, 300.0]);
        // VM 0 is 25 % down → Minor band payback; VM 1 pays nothing.
        assert!(sla[0] > 0.0);
        assert_eq!(sla[1], 0.0);
    }

    #[test]
    fn kernels_are_chunk_invariant() {
        // Splitting the host range into chunks must reproduce the
        // whole-range outputs bit for bit.
        let m = 7;
        let used: Vec<f64> = (0..m).map(|h| 40.0 * h as f64).collect();
        let mips = vec![100.0; m];
        let count: Vec<usize> = (0..m).map(|h| h % 3).collect();
        let down: Vec<bool> = (0..m).map(|h| h == 5).collect();
        let power = vec![PowerModel::hp_proliant_g5(); m];
        let mut whole = (vec![0.0; m], vec![0.0; m], vec![0.0; m]);
        host_metrics_chunk(
            &used,
            &mips,
            &count,
            &down,
            &power,
            300.0,
            &mut whole.0,
            &mut whole.1,
            &mut whole.2,
        );
        let mut split = (vec![0.0; m], vec![0.0; m], vec![0.0; m]);
        for (lo, hi) in [(0usize, 3usize), (3, 7)] {
            host_metrics_chunk(
                &used[lo..hi],
                &mips[lo..hi],
                &count[lo..hi],
                &down[lo..hi],
                &power[lo..hi],
                300.0,
                &mut split.0[lo..hi],
                &mut split.1[lo..hi],
                &mut split.2[lo..hi],
            );
        }
        assert_eq!(whole, split);
    }
}
