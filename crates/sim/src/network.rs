//! Data-center network models for migration bandwidth.
//!
//! §3.3 computes migration time from "the available bandwidth of the
//! network", and §7 names network topology (fat-trees) as future work:
//! "we are confident that network … sharing can be seamlessly
//! accommodated without modifying our solution algorithmically". This
//! module provides that accommodation: a [`NetworkModel`] maps each
//! migration to its effective bandwidth, including contention between
//! migrations that share a rack uplink in the same interval.
//!
//! * [`NetworkModel::FullBisection`] — every host pair enjoys the full
//!   host NIC bandwidth (a non-blocking fabric, e.g. a proper fat-tree;
//!   also the paper's implicit assumption).
//! * [`NetworkModel::RackOversubscribed`] — hosts are grouped into
//!   racks of `hosts_per_rack`; migrations inside a rack get NIC speed,
//!   migrations between racks share each rack's uplink, whose capacity
//!   is the rack's aggregate NIC bandwidth divided by `ratio`.

use serde::{Deserialize, Serialize};

/// Which host pairs contend for network capacity during migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NetworkModel {
    /// Non-blocking fabric: effective bandwidth = NIC bandwidth.
    #[default]
    FullBisection,
    /// Top-of-rack oversubscription.
    RackOversubscribed {
        /// Hosts per rack (must be ≥ 1).
        hosts_per_rack: usize,
        /// Oversubscription ratio of the rack uplink (≥ 1.0 means the
        /// uplink is `aggregate NIC bandwidth / ratio`).
        ratio: f64,
    },
}

impl NetworkModel {
    /// The rack index of a host (hosts are numbered consecutively).
    pub fn rack_of(&self, host: usize) -> usize {
        match *self {
            Self::FullBisection => 0,
            Self::RackOversubscribed { hosts_per_rack, .. } => host / hosts_per_rack.max(1),
        }
    }

    /// Whether a migration between these hosts crosses rack boundaries.
    pub fn crosses_racks(&self, src: usize, dst: usize) -> bool {
        match self {
            Self::FullBisection => false,
            Self::RackOversubscribed { .. } => self.rack_of(src) != self.rack_of(dst),
        }
    }

    /// Effective bandwidths for a batch of concurrent migrations.
    ///
    /// `migrations[i] = (src_host, dst_host, nic_mbps)` where `nic_mbps`
    /// is the slower of the two endpoint NICs. Returns one effective
    /// bandwidth per migration. Inter-rack migrations split each rack's
    /// uplink evenly among the inter-rack migrations touching that rack
    /// in this interval; the binding constraint (source uplink,
    /// destination uplink, NIC) wins.
    pub fn effective_bandwidths(&self, migrations: &[(usize, usize, f64)]) -> Vec<f64> {
        match *self {
            Self::FullBisection => migrations.iter().map(|&(_, _, nic)| nic).collect(),
            Self::RackOversubscribed {
                hosts_per_rack,
                ratio,
            } => {
                let hosts_per_rack = hosts_per_rack.max(1);
                let ratio = ratio.max(1.0);
                // Count inter-rack migrations touching each rack.
                let mut rack_load: std::collections::BTreeMap<usize, usize> =
                    std::collections::BTreeMap::new();
                for &(src, dst, _) in migrations {
                    if self.crosses_racks(src, dst) {
                        *rack_load.entry(self.rack_of(src)).or_insert(0) += 1;
                        *rack_load.entry(self.rack_of(dst)).or_insert(0) += 1;
                    }
                }
                migrations
                    .iter()
                    .map(|&(src, dst, nic)| {
                        if !self.crosses_racks(src, dst) {
                            return nic;
                        }
                        let uplink = nic * hosts_per_rack as f64 / ratio;
                        let share = |rack: usize| {
                            let load = rack_load.get(&rack).copied().unwrap_or(1).max(1);
                            uplink / load as f64
                        };
                        nic.min(share(self.rack_of(src)))
                            .min(share(self.rack_of(dst)))
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bisection_passes_nic_speed_through() {
        let net = NetworkModel::FullBisection;
        let bws = net.effective_bandwidths(&[(0, 5, 1000.0), (1, 2, 500.0)]);
        assert_eq!(bws, vec![1000.0, 500.0]);
        assert!(!net.crosses_racks(0, 99));
    }

    #[test]
    fn rack_assignment_is_contiguous() {
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 4,
            ratio: 2.0,
        };
        assert_eq!(net.rack_of(0), 0);
        assert_eq!(net.rack_of(3), 0);
        assert_eq!(net.rack_of(4), 1);
        assert!(net.crosses_racks(3, 4));
        assert!(!net.crosses_racks(0, 3));
    }

    #[test]
    fn intra_rack_migrations_are_uncontended() {
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 4,
            ratio: 4.0,
        };
        let bws = net.effective_bandwidths(&[(0, 1, 1000.0), (2, 3, 1000.0)]);
        assert_eq!(bws, vec![1000.0, 1000.0]);
    }

    #[test]
    fn single_inter_rack_migration_gets_uplink_or_nic() {
        // Uplink = 4 × 1000 / 2 = 2000 ≥ NIC → NIC binds.
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 4,
            ratio: 2.0,
        };
        let bws = net.effective_bandwidths(&[(0, 4, 1000.0)]);
        assert_eq!(bws, vec![1000.0]);
        // Heavier oversubscription: uplink = 4000/8 = 500 < NIC.
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 4,
            ratio: 8.0,
        };
        let bws = net.effective_bandwidths(&[(0, 4, 1000.0)]);
        assert_eq!(bws, vec![500.0]);
    }

    #[test]
    fn concurrent_inter_rack_migrations_share_the_uplink() {
        // Rack 0 = hosts 0–3; two migrations leave rack 0 concurrently.
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 4,
            ratio: 4.0,
        };
        // Uplink = 4 × 1000 / 4 = 1000; two flows share → 500 each.
        let bws = net.effective_bandwidths(&[(0, 4, 1000.0), (1, 8, 1000.0)]);
        assert_eq!(bws, vec![500.0, 500.0]);
    }

    #[test]
    fn destination_rack_can_be_the_bottleneck() {
        // Two flows converge on rack 1 (hosts 4–7).
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 4,
            ratio: 4.0,
        };
        let bws = net.effective_bandwidths(&[(0, 4, 1000.0), (8, 5, 1000.0)]);
        // Rack 1 carries two inter-rack flows: 1000/2 = 500 each.
        assert_eq!(bws, vec![500.0, 500.0]);
    }

    #[test]
    fn ratio_below_one_is_clamped() {
        let net = NetworkModel::RackOversubscribed {
            hosts_per_rack: 2,
            ratio: 0.1,
        };
        let bws = net.effective_bandwidths(&[(0, 2, 1000.0)]);
        // Clamped ratio 1.0 → uplink 2000 ≥ NIC.
        assert_eq!(bws, vec![1000.0]);
    }
}
