//! Data-center configuration and validation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CostParams, MigrationModel, NetworkModel, PmSpec, VmSpec};

/// How VMs are assigned to hosts before the first step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialPlacement {
    /// An explicit VM→host assignment (index `j` gives VM `j`'s host).
    /// Must have one entry per VM, each a valid host index.
    Explicit(Vec<usize>),
    /// VM `j` starts on host `j mod M`. The deterministic default.
    RoundRobin,
    /// Uniformly random placement with the given seed — the protocol of
    /// the MadVM comparison (§6.3: "all these workloads are allocated
    /// uniformly at random to each of the PMs, such that there is no
    /// initial bias for the learning").
    RandomUniform {
        /// Seed for the placement RNG.
        seed: u64,
    },
    /// First-fit by requested MIPS: each VM goes to the first host whose
    /// total *requested* capacity stays within the β threshold.
    FirstFit,
    /// First-fit *decreasing by step-0 demand*: VMs are sorted by their
    /// first observed CPU demand and packed onto hosts while demand stays
    /// within the β threshold. This mirrors CloudSim's power-aware
    /// initial allocation, where the incoming VMs are placed by their
    /// current utilization — the starting condition of the paper's main
    /// experiments (Tables 2–3).
    DemandPacked,
}

/// A scheduled host outage: the host is down (zero capacity, zero
/// power, all resident VMs unavailable) for `from_step..until_step`.
///
/// Models maintenance windows and failures — the failure-injection
/// counterpart to the trace-driven workload uncertainty. Schedulers see
/// the outage through [`crate::DataCenterView::is_down`] and are
/// expected to evacuate; VMs left on a down host accrue full downtime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostOutage {
    /// The affected host index.
    pub host: usize,
    /// First step of the outage (inclusive).
    pub from_step: usize,
    /// End of the outage (exclusive).
    pub until_step: usize,
}

impl HostOutage {
    /// Whether the outage covers `step`.
    pub fn covers(&self, step: usize) -> bool {
        (self.from_step..self.until_step).contains(&step)
    }
}

/// Full static description of a simulated data center.
///
/// # Examples
///
/// ```
/// use megh_sim::DataCenterConfig;
///
/// let mut c = DataCenterConfig::paper_planetlab(10, 20);
/// assert_eq!(c.pms.len(), 10);
/// assert_eq!(c.vms.len(), 20);
/// c.migration_cap_fraction = 0.02;
/// assert_eq!(c.migration_cap(), 1); // ceil(2 % of 20)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenterConfig {
    /// Host catalogue.
    pub pms: Vec<PmSpec>,
    /// VM catalogue; index `j` is driven by trace row `j`.
    pub vms: Vec<VmSpec>,
    /// Pricing and threshold constants.
    pub cost: CostParams,
    /// Initial VM→host assignment policy.
    pub initial_placement: InitialPlacement,
    /// Fraction of VMs that may migrate per step. The default is 1.0
    /// (uncapped): §6.1's 2 % cap is a restraint placed on *Megh*, not on
    /// the heuristics — THR-MMT migrates ~15 % of VMs per step in
    /// Table 2. Megh limits itself through its `actions_per_step`
    /// parameter; set this field to 0.02 to enforce the cap globally.
    pub migration_cap_fraction: f64,
    /// Length of the per-host utilization history window exposed to
    /// schedulers (the adaptive MMT detectors use ~10–12 observations).
    pub history_window: usize,
    /// How migration duration and downtime are derived (§3.3's single
    /// copy by default; iterative pre-copy available).
    pub migration_model: MigrationModel,
    /// Network fabric model: which migrations contend for bandwidth
    /// (full bisection by default, the paper's implicit assumption).
    pub network: NetworkModel,
    /// Scheduled host outages (maintenance windows / injected failures).
    pub outages: Vec<HostOutage>,
    /// CPU oversubscription ratio: a host may carry VMs whose *requested*
    /// MIPS total up to `ratio × capacity`. CloudSim reserves requested
    /// capacity outright (ratio 1, no overcommit); real IaaS clouds
    /// oversubscribe CPU. Placement policies (initial packing, PABFD,
    /// MadVM) honor this bound; it caps how hard consolidation can pack
    /// and therefore how much SLA-relevant overload is even possible.
    pub oversubscription_ratio: f64,
}

impl DataCenterConfig {
    /// The PlanetLab experimental fleet (§6.2): `m` hosts, half G4 / half
    /// G5, and `n` VMs drawn from the paper's instance-type mix.
    pub fn paper_planetlab(m: usize, n: usize) -> Self {
        Self {
            pms: PmSpec::paper_fleet(m),
            vms: VmSpec::paper_mix(n, 0x_7a57_e001),
            cost: CostParams::paper_defaults(),
            initial_placement: InitialPlacement::RoundRobin,
            migration_cap_fraction: 1.0,
            history_window: 12,
            migration_model: MigrationModel::Simple,
            network: NetworkModel::FullBisection,
            outages: Vec::new(),
            oversubscription_ratio: 2.0,
        }
    }

    /// The Google Cluster experimental fleet (§6.2): `m` hosts, `n` VMs.
    ///
    /// Identical hardware mix; the datasets differ in their workloads,
    /// not their machines.
    pub fn paper_google(m: usize, n: usize) -> Self {
        Self {
            vms: VmSpec::paper_mix(n, 0x_6006_1e00),
            ..Self::paper_planetlab(m, n)
        }
    }

    /// Maximum migrations per step: `ceil(fraction × N)`, at least 1 when
    /// any VMs exist and the fraction is positive.
    pub fn migration_cap(&self) -> usize {
        if self.vms.is_empty() || self.migration_cap_fraction <= 0.0 {
            return 0;
        }
        ((self.migration_cap_fraction * self.vms.len() as f64).ceil() as usize).max(1)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when VMs exist without hosts, or any spec has
    /// a non-positive capacity.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.vms.is_empty() && self.pms.is_empty() {
            return Err(SimError::NoHosts);
        }
        if let Some(i) = self
            .pms
            .iter()
            .position(|p| p.mips <= 0.0 || p.bw_mbps <= 0.0)
        {
            return Err(SimError::InvalidHost(i));
        }
        if let Some(j) = self
            .vms
            .iter()
            .position(|v| v.mips <= 0.0 || v.ram_mb < 0.0)
        {
            return Err(SimError::InvalidVm(j));
        }
        if self.history_window == 0 {
            return Err(SimError::InvalidParameter("history_window must be ≥ 1"));
        }
        if !(0.0..=1.0).contains(&self.migration_cap_fraction) {
            return Err(SimError::InvalidParameter(
                "migration_cap_fraction must be in [0, 1]",
            ));
        }
        if self.oversubscription_ratio <= 0.0 || !self.oversubscription_ratio.is_finite() {
            return Err(SimError::InvalidParameter(
                "oversubscription_ratio must be positive and finite",
            ));
        }
        if let Some(outage) = self
            .outages
            .iter()
            .find(|o| o.host >= self.pms.len() || o.from_step >= o.until_step)
        {
            let _ = outage;
            return Err(SimError::InvalidParameter(
                "outage references a non-existent host or has an empty window",
            ));
        }
        if let InitialPlacement::Explicit(hosts) = &self.initial_placement {
            if hosts.len() != self.vms.len() {
                return Err(SimError::PlacementLengthMismatch {
                    n_vms: self.vms.len(),
                    listed: hosts.len(),
                });
            }
            if let Some(vm) = hosts.iter().position(|&h| h >= self.pms.len()) {
                return Err(SimError::PlacementHostOutOfRange {
                    vm,
                    host: hosts[vm],
                    n_hosts: self.pms.len(),
                });
            }
        }
        Ok(())
    }
}

/// A builder for [`DataCenterConfig`], validating on
/// [`DataCenterBuilder::build`].
///
/// # Examples
///
/// ```
/// use megh_sim::{DataCenterConfig, InitialPlacement, PmSpec, VmSpec};
///
/// let config = DataCenterConfig::builder()
///     .hosts(PmSpec::paper_fleet(4))
///     .vms(VmSpec::paper_mix(8, 1))
///     .placement(InitialPlacement::DemandPacked)
///     .migration_cap_fraction(0.02)
///     .build()?;
/// assert_eq!(config.pms.len(), 4);
/// # Ok::<(), megh_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataCenterBuilder {
    config: DataCenterConfig,
}

impl DataCenterConfig {
    /// Starts a builder from the paper's cost model and defaults, with
    /// an empty fleet.
    pub fn builder() -> DataCenterBuilder {
        DataCenterBuilder {
            config: DataCenterConfig::paper_planetlab(0, 0),
        }
    }
}

impl DataCenterBuilder {
    /// Sets the host catalogue.
    pub fn hosts(mut self, pms: Vec<PmSpec>) -> Self {
        self.config.pms = pms;
        self
    }

    /// Sets the VM catalogue.
    pub fn vms(mut self, vms: Vec<VmSpec>) -> Self {
        self.config.vms = vms;
        self
    }

    /// Overrides the cost model.
    pub fn cost(mut self, cost: CostParams) -> Self {
        self.config.cost = cost;
        self
    }

    /// Sets the initial placement policy.
    pub fn placement(mut self, placement: InitialPlacement) -> Self {
        self.config.initial_placement = placement;
        self
    }

    /// Caps migrations per step to this fraction of the VM count.
    pub fn migration_cap_fraction(mut self, fraction: f64) -> Self {
        self.config.migration_cap_fraction = fraction;
        self
    }

    /// Sets the per-host utilization history window length.
    pub fn history_window(mut self, window: usize) -> Self {
        self.config.history_window = window;
        self
    }

    /// Sets the migration timing model.
    pub fn migration_model(mut self, model: MigrationModel) -> Self {
        self.config.migration_model = model;
        self
    }

    /// Sets the network fabric model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.config.network = network;
        self
    }

    /// Sets the CPU oversubscription ratio.
    pub fn oversubscription_ratio(mut self, ratio: f64) -> Self {
        self.config.oversubscription_ratio = ratio;
        self
    }

    /// Adds a scheduled host outage.
    pub fn outage(mut self, outage: HostOutage) -> Self {
        self.config.outages.push(outage);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`DataCenterConfig::validate`].
    pub fn build(self) -> Result<DataCenterConfig, SimError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Errors raised when constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// VMs were configured but no hosts exist to run them.
    NoHosts,
    /// Host at the given index has a non-positive capacity or bandwidth.
    InvalidHost(usize),
    /// VM at the given index has a non-positive capacity or negative RAM.
    InvalidVm(usize),
    /// The trace's VM count differs from the configured VM count.
    TraceMismatch {
        /// VMs in the configuration.
        config_vms: usize,
        /// VM rows in the trace.
        trace_vms: usize,
    },
    /// An explicit initial placement lists a different number of hosts
    /// than there are VMs.
    PlacementLengthMismatch {
        /// VMs in the configuration.
        n_vms: usize,
        /// Entries in the placement list.
        listed: usize,
    },
    /// An explicit initial placement assigns a VM to a non-existent
    /// host.
    PlacementHostOutOfRange {
        /// Index of the offending VM.
        vm: usize,
        /// The host index it was assigned.
        host: usize,
        /// Number of hosts that actually exist.
        n_hosts: usize,
    },
    /// A scalar parameter is out of range.
    InvalidParameter(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoHosts => write!(f, "configuration has VMs but no hosts"),
            Self::InvalidHost(i) => write!(f, "host {i} has non-positive capacity"),
            Self::InvalidVm(j) => write!(f, "vm {j} has invalid capacity or RAM"),
            Self::TraceMismatch {
                config_vms,
                trace_vms,
            } => write!(
                f,
                "trace provides {trace_vms} VM rows but the config declares {config_vms} VMs"
            ),
            Self::PlacementLengthMismatch { n_vms, listed } => {
                write!(f, "explicit placement lists {listed} hosts for {n_vms} VMs")
            }
            Self::PlacementHostOutOfRange { vm, host, n_hosts } => write!(
                f,
                "explicit placement puts vm {vm} on host {host}, but only {n_hosts} hosts exist"
            ),
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_planetlab_layout() {
        let c = DataCenterConfig::paper_planetlab(8, 16);
        assert_eq!(c.pms.len(), 8);
        assert_eq!(c.vms.len(), 16);
        assert!(c.validate().is_ok());
        assert_eq!(c.cost, CostParams::paper_defaults());
    }

    #[test]
    fn migration_cap_default_is_uncapped() {
        assert_eq!(
            DataCenterConfig::paper_planetlab(2, 100).migration_cap(),
            100
        );
        assert_eq!(DataCenterConfig::paper_planetlab(2, 0).migration_cap(), 0);
    }

    #[test]
    fn migration_cap_is_fraction_rounded_up() {
        let mut c = DataCenterConfig::paper_planetlab(2, 100);
        c.migration_cap_fraction = 0.02;
        assert_eq!(c.migration_cap(), 2);
        let mut c = DataCenterConfig::paper_planetlab(2, 101);
        c.migration_cap_fraction = 0.02;
        assert_eq!(c.migration_cap(), 3);
        let mut c = DataCenterConfig::paper_planetlab(2, 10);
        c.migration_cap_fraction = 0.02;
        assert_eq!(c.migration_cap(), 1);
    }

    #[test]
    fn zero_cap_fraction_disables_migrations() {
        let mut c = DataCenterConfig::paper_planetlab(2, 10);
        c.migration_cap_fraction = 0.0;
        assert_eq!(c.migration_cap(), 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_missing_hosts() {
        let mut c = DataCenterConfig::paper_planetlab(0, 4);
        c.pms.clear();
        assert_eq!(c.validate().unwrap_err(), SimError::NoHosts);
    }

    #[test]
    fn validation_catches_bad_host_and_vm() {
        let mut c = DataCenterConfig::paper_planetlab(2, 2);
        c.pms[1].mips = 0.0;
        assert_eq!(c.validate().unwrap_err(), SimError::InvalidHost(1));

        let mut c = DataCenterConfig::paper_planetlab(2, 2);
        c.vms[0].mips = -5.0;
        assert_eq!(c.validate().unwrap_err(), SimError::InvalidVm(0));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut c = DataCenterConfig::paper_planetlab(2, 2);
        c.history_window = 0;
        assert!(matches!(c.validate(), Err(SimError::InvalidParameter(_))));

        let mut c = DataCenterConfig::paper_planetlab(2, 2);
        c.migration_cap_fraction = 1.5;
        assert!(matches!(c.validate(), Err(SimError::InvalidParameter(_))));
    }

    #[test]
    fn validation_catches_bad_explicit_placement() {
        let mut c = DataCenterConfig::paper_planetlab(2, 3);
        c.initial_placement = InitialPlacement::Explicit(vec![0, 1]);
        assert_eq!(
            c.validate(),
            Err(SimError::PlacementLengthMismatch {
                n_vms: 3,
                listed: 2
            })
        );

        let mut c = DataCenterConfig::paper_planetlab(2, 3);
        c.initial_placement = InitialPlacement::Explicit(vec![0, 5, 1]);
        assert_eq!(
            c.validate(),
            Err(SimError::PlacementHostOutOfRange {
                vm: 1,
                host: 5,
                n_hosts: 2
            })
        );
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            SimError::NoHosts,
            SimError::InvalidHost(1),
            SimError::InvalidVm(2),
            SimError::TraceMismatch {
                config_vms: 1,
                trace_vms: 2,
            },
            SimError::PlacementLengthMismatch {
                n_vms: 3,
                listed: 2,
            },
            SimError::PlacementHostOutOfRange {
                vm: 0,
                host: 9,
                n_hosts: 2,
            },
            SimError::InvalidParameter("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn builder_produces_validated_configs() {
        let config = DataCenterConfig::builder()
            .hosts(PmSpec::paper_fleet(3))
            .vms(VmSpec::paper_mix(5, 2))
            .placement(InitialPlacement::RoundRobin)
            .oversubscription_ratio(1.5)
            .history_window(8)
            .outage(HostOutage {
                host: 1,
                from_step: 3,
                until_step: 5,
            })
            .build()
            .unwrap();
        assert_eq!(config.pms.len(), 3);
        assert_eq!(config.oversubscription_ratio, 1.5);
        assert_eq!(config.history_window, 8);
        assert_eq!(config.outages.len(), 1);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let err = DataCenterConfig::builder()
            .vms(VmSpec::paper_mix(2, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, SimError::NoHosts);

        let err = DataCenterConfig::builder()
            .hosts(PmSpec::paper_fleet(2))
            .vms(VmSpec::paper_mix(2, 1))
            .outage(HostOutage {
                host: 7,
                from_step: 0,
                until_step: 1,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter(_)));
    }

    #[test]
    fn google_config_differs_only_in_vm_mix() {
        let p = DataCenterConfig::paper_planetlab(4, 8);
        let g = DataCenterConfig::paper_google(4, 8);
        assert_eq!(p.pms, g.pms);
        assert_eq!(p.cost, g.cost);
    }
}
