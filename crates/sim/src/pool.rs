//! A persistent worker pool for the per-step accounting kernels.
//!
//! `run_core`'s phase-5 accounting used to spawn `2 × sim_threads`
//! scoped OS threads on *every simulated step* — tens of microseconds
//! of spawn/join overhead per step that dwarfed the kernels themselves
//! on small fleets. [`StepPool`] spawns its workers once per run and
//! feeds them over channels instead.
//!
//! # Determinism contract
//!
//! The pool must be invisible in the outcome: for any thread count,
//! results are byte-identical to the sequential kernels. Three
//! properties guarantee that, mirroring the scoped-spawn pattern the
//! pool replaces:
//!
//! 1. jobs cover disjoint, fixed index ranges (`m.div_ceil(threads)`
//!    hosts / VMs per chunk, the same chunking the scoped version
//!    used);
//! 2. every job writes only its own owned buffers, which the engine
//!    copies back into the exact per-index slots of the shared output
//!    arrays — no shared mutable state, no accumulation across jobs;
//! 3. the engine's merge loops stay sequential in ascending index
//!    order, so float accumulation order never depends on scheduling.
//!
//! Inputs travel as `Arc` clones (the engine moves its per-step arrays
//! into `Arc`s and reclaims them afterwards), so jobs are `'static`
//! and the workers outlive any single step.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::step::{host_metrics_chunk, vm_sla_chunk};
use crate::{CostParams, PowerModel};

/// Shared inputs of one step's host-metrics phase.
pub(crate) struct HostInputs {
    pub(crate) used: Arc<Vec<f64>>,
    pub(crate) mips: Arc<Vec<f64>>,
    pub(crate) count: Arc<Vec<usize>>,
    pub(crate) down: Arc<Vec<bool>>,
    pub(crate) power: Arc<Vec<PowerModel>>,
    pub(crate) tau: f64,
}

/// Shared inputs of one step's VM-SLA phase.
pub(crate) struct VmInputs {
    pub(crate) placement: Arc<Vec<usize>>,
    pub(crate) deficit: Arc<Vec<f64>>,
    pub(crate) tau: f64,
    pub(crate) cost: CostParams,
}

/// One dispatched chunk: `lo` is the first global index, the vectors
/// are chunk-local scratch the worker fills (and, for the VM phase,
/// reads: `downtime`/`requested` arrive pre-loaded with the current
/// accumulator values).
enum Job {
    Hosts {
        inputs: JobHostInputs,
        lo: usize,
        joules: Vec<f64>,
        deficit: Vec<f64>,
        util: Vec<f64>,
    },
    Vms {
        inputs: JobVmInputs,
        lo: usize,
        downtime: Vec<f64>,
        requested: Vec<f64>,
        sla: Vec<f64>,
    },
}

struct JobHostInputs {
    used: Arc<Vec<f64>>,
    mips: Arc<Vec<f64>>,
    count: Arc<Vec<usize>>,
    down: Arc<Vec<bool>>,
    power: Arc<Vec<PowerModel>>,
    tau: f64,
}

struct JobVmInputs {
    placement: Arc<Vec<usize>>,
    deficit: Arc<Vec<f64>>,
    tau: f64,
    cost: CostParams,
}

/// A finished chunk on its way back to the engine.
enum Done {
    Hosts {
        lo: usize,
        joules: Vec<f64>,
        deficit: Vec<f64>,
        util: Vec<f64>,
    },
    Vms {
        lo: usize,
        downtime: Vec<f64>,
        requested: Vec<f64>,
        sla: Vec<f64>,
    },
}

/// Runs one job's kernel over its owned buffers. Pure: the result
/// depends only on the job, never on which worker ran it or when.
fn run_job(job: Job) -> Done {
    match job {
        Job::Hosts {
            inputs,
            lo,
            mut joules,
            mut deficit,
            mut util,
        } => {
            let hi = lo + joules.len();
            host_metrics_chunk(
                &inputs.used[lo..hi],
                &inputs.mips[lo..hi],
                &inputs.count[lo..hi],
                &inputs.down[lo..hi],
                &inputs.power[lo..hi],
                inputs.tau,
                &mut joules,
                &mut deficit,
                &mut util,
            );
            Done::Hosts {
                lo,
                joules,
                deficit,
                util,
            }
        }
        Job::Vms {
            inputs,
            lo,
            mut downtime,
            mut requested,
            mut sla,
        } => {
            let hi = lo + sla.len();
            vm_sla_chunk(
                &inputs.placement[lo..hi],
                &inputs.deficit,
                inputs.tau,
                &inputs.cost,
                &mut downtime,
                &mut requested,
                &mut sla,
            );
            Done::Vms {
                lo,
                downtime,
                requested,
                sla,
            }
        }
    }
}

/// Long-lived kernel workers behind a shared job queue.
///
/// Dropping the pool closes the queue; workers drain and exit, and the
/// drop joins them so no thread outlives the simulation run.
pub(crate) struct StepPool {
    threads: usize,
    jobs: Sender<Job>,
    done: Receiver<Done>,
    workers: Vec<JoinHandle<()>>,
    /// Idle chunk buffers (triples), reused across steps so the steady
    /// state allocates nothing.
    scratch: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)>,
}

impl StepPool {
    /// Spawns `threads` workers (at least one).
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (jobs, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done) = channel::<Done>();
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&job_rx);
            let tx = done_tx.clone();
            // Persistent workers replacing per-step scoped spawns. The
            // merge stays deterministic: each job fills fixed index
            // slots and the engine merges in ascending index order, so
            // worker scheduling can never reorder float accumulation.
            let handle = std::thread::Builder::new()
                .name(format!("megh-step-{i}"))
                .spawn(move || loop {
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return, // a sibling panicked: shut down
                    };
                    match job {
                        Ok(job) => {
                            if tx.send(run_job(job)).is_err() {
                                return; // pool dropped mid-flight
                            }
                        }
                        Err(_) => return, // queue closed: pool dropped
                    }
                });
            match handle {
                Ok(handle) => workers.push(handle),
                // Spawn failure (resource exhaustion): keep going with
                // fewer workers; dispatch falls back inline if none
                // spawned at all.
                Err(_) => break,
            }
        }
        StepPool {
            threads,
            jobs,
            done,
            workers,
            scratch: Vec::new(),
        }
    }

    fn take_scratch(&mut self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        self.scratch.pop().unwrap_or_default()
    }

    /// Computes the host phase over `0..out_joules.len()` hosts,
    /// writing results into the same slots the sequential kernel
    /// would.
    pub(crate) fn host_metrics(
        &mut self,
        inputs: &HostInputs,
        out_joules: &mut [f64],
        out_deficit: &mut [f64],
        out_util: &mut [f64],
    ) {
        let m = out_joules.len();
        if m == 0 {
            return;
        }
        let chunk = m.div_ceil(self.threads).max(1);
        let mut in_flight = 0usize;
        let mut lo = 0usize;
        while lo < m {
            let len = chunk.min(m - lo);
            let (mut joules, mut deficit, mut util) = self.take_scratch();
            joules.resize(len, 0.0);
            deficit.resize(len, 0.0);
            util.resize(len, 0.0);
            let job = Job::Hosts {
                inputs: JobHostInputs {
                    used: Arc::clone(&inputs.used),
                    mips: Arc::clone(&inputs.mips),
                    count: Arc::clone(&inputs.count),
                    down: Arc::clone(&inputs.down),
                    power: Arc::clone(&inputs.power),
                    tau: inputs.tau,
                },
                lo,
                joules,
                deficit,
                util,
            };
            match self.jobs.send(job) {
                Ok(()) => in_flight += 1,
                // No live workers: run the chunk inline — same kernel,
                // same slots, same bytes.
                Err(std::sync::mpsc::SendError(job)) => {
                    self.merge(run_job(job), out_joules, out_deficit, out_util);
                }
            }
            lo += len;
        }
        for _ in 0..in_flight {
            match self.done.recv() {
                Ok(done) => self.merge(done, out_joules, out_deficit, out_util),
                // Only reachable if a worker crashed mid-kernel; the
                // kernels are panic-free, so treat as a truncated run.
                Err(_) => return,
            }
        }
    }

    /// Computes the VM phase over `0..out_sla.len()` VMs. The downtime
    /// and requested accumulators are read *and* written, exactly as
    /// the sequential kernel does.
    pub(crate) fn vm_sla(
        &mut self,
        inputs: &VmInputs,
        vm_downtime_s: &mut [f64],
        vm_requested_s: &mut [f64],
        out_sla: &mut [f64],
    ) {
        let n = out_sla.len();
        if n == 0 {
            return;
        }
        let chunk = n.div_ceil(self.threads).max(1);
        let mut in_flight = 0usize;
        let mut lo = 0usize;
        while lo < n {
            let len = chunk.min(n - lo);
            let (mut downtime, mut requested, mut sla) = self.take_scratch();
            downtime.clear();
            downtime.extend_from_slice(&vm_downtime_s[lo..lo + len]);
            requested.clear();
            requested.extend_from_slice(&vm_requested_s[lo..lo + len]);
            sla.clear();
            sla.resize(len, 0.0);
            let job = Job::Vms {
                inputs: JobVmInputs {
                    placement: Arc::clone(&inputs.placement),
                    deficit: Arc::clone(&inputs.deficit),
                    tau: inputs.tau,
                    cost: inputs.cost.clone(),
                },
                lo,
                downtime,
                requested,
                sla,
            };
            match self.jobs.send(job) {
                Ok(()) => in_flight += 1,
                Err(std::sync::mpsc::SendError(job)) => {
                    self.merge(run_job(job), vm_downtime_s, vm_requested_s, out_sla);
                }
            }
            lo += len;
        }
        for _ in 0..in_flight {
            match self.done.recv() {
                Ok(done) => self.merge(done, vm_downtime_s, vm_requested_s, out_sla),
                Err(_) => return,
            }
        }
    }

    /// Copies a finished chunk into its global index slots and parks
    /// the buffers for reuse. The three output slices are positional:
    /// (joules, deficit, util) for host jobs, (downtime, requested,
    /// sla) for VM jobs.
    fn merge(&mut self, done: Done, out_a: &mut [f64], out_b: &mut [f64], out_c: &mut [f64]) {
        let (lo, a, b, c) = match done {
            Done::Hosts {
                lo,
                joules,
                deficit,
                util,
            } => (lo, joules, deficit, util),
            Done::Vms {
                lo,
                downtime,
                requested,
                sla,
            } => (lo, downtime, requested, sla),
        };
        let hi = lo + a.len();
        out_a[lo..hi].copy_from_slice(&a);
        out_b[lo..hi].copy_from_slice(&b);
        out_c[lo..hi].copy_from_slice(&c);
        self.scratch.push((a, b, c));
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        // Replace the sender so the queue closes and workers see the
        // hangup; then join them.
        let (closed, _) = channel();
        self.jobs = closed;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_inputs(m: usize) -> HostInputs {
        HostInputs {
            used: Arc::new((0..m).map(|h| 40.0 * h as f64).collect()),
            mips: Arc::new(vec![100.0; m]),
            count: Arc::new((0..m).map(|h| h % 3).collect()),
            down: Arc::new((0..m).map(|h| h % 7 == 3).collect()),
            power: Arc::new(vec![PowerModel::hp_proliant_g4(); m]),
            tau: 300.0,
        }
    }

    #[test]
    fn pool_matches_sequential_kernels_bitwise() {
        for m in [1usize, 2, 7, 64, 65] {
            let inputs = host_inputs(m);
            let (mut sj, mut sd, mut su) = (vec![0.0; m], vec![0.0; m], vec![0.0; m]);
            host_metrics_chunk(
                &inputs.used,
                &inputs.mips,
                &inputs.count,
                &inputs.down,
                &inputs.power,
                inputs.tau,
                &mut sj,
                &mut sd,
                &mut su,
            );
            for threads in [1usize, 3, 8] {
                let mut pool = StepPool::new(threads);
                let (mut pj, mut pd, mut pu) = (vec![9.0; m], vec![9.0; m], vec![9.0; m]);
                pool.host_metrics(&inputs, &mut pj, &mut pd, &mut pu);
                assert_eq!(sj, pj, "m={m} threads={threads}");
                assert_eq!(sd, pd, "m={m} threads={threads}");
                assert_eq!(su, pu, "m={m} threads={threads}");
            }
        }
    }

    #[test]
    fn vm_phase_accumulators_round_trip_bitwise() {
        let n = 23;
        let m = 5;
        let deficit: Vec<f64> = (0..m).map(|h| 0.1 * h as f64).collect();
        let placement: Vec<usize> = (0..n).map(|j| j % m).collect();
        let cost = CostParams::paper_defaults();
        let mut sd: Vec<f64> = (0..n).map(|j| j as f64).collect();
        let mut sr: Vec<f64> = vec![600.0; n];
        let mut ss = vec![0.0; n];
        vm_sla_chunk(
            &placement, &deficit, 300.0, &cost, &mut sd, &mut sr, &mut ss,
        );

        let inputs = VmInputs {
            placement: Arc::new(placement),
            deficit: Arc::new(deficit),
            tau: 300.0,
            cost,
        };
        let mut pool = StepPool::new(4);
        let mut pd: Vec<f64> = (0..n).map(|j| j as f64).collect();
        let mut pr: Vec<f64> = vec![600.0; n];
        let mut ps = vec![9.0; n];
        pool.vm_sla(&inputs, &mut pd, &mut pr, &mut ps);
        assert_eq!(sd, pd);
        assert_eq!(sr, pr);
        assert_eq!(ss, ps);
    }

    #[test]
    fn repeated_steps_reuse_scratch_and_stay_identical() {
        let inputs = host_inputs(33);
        let mut pool = StepPool::new(3);
        let mut first = None;
        for _ in 0..50 {
            let (mut j, mut d, mut u) = (vec![0.0; 33], vec![0.0; 33], vec![0.0; 33]);
            pool.host_metrics(&inputs, &mut j, &mut d, &mut u);
            let snap = (j, d, u);
            match &first {
                None => first = Some(snap),
                Some(f) => assert_eq!(f, &snap),
            }
        }
        // Steady state parks at most one triple per worker chunk.
        assert!(pool.scratch.len() <= 3 + 1);
    }
}
