//! Per-step records and summary reports — the raw material of every
//! table and figure in §6.

use serde::{Deserialize, Serialize};

use crate::{PmId, VmId};

/// One applied live migration, with its source host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// The migrated VM.
    pub vm: VmId,
    /// Where it ran before this step.
    pub from: PmId,
    /// Where it runs now.
    pub to: PmId,
}

/// Structured events of one observation interval — the audit log a
/// production controller would emit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StepEvents {
    /// Migrations applied this step, in application order.
    pub migrations: Vec<MigrationEvent>,
    /// Hosts that went to sleep this step (lost their last VM).
    pub hosts_slept: Vec<usize>,
    /// Hosts that woke this step (received their first VM).
    pub hosts_woken: Vec<usize>,
    /// Hosts down this step due to a scheduled outage.
    pub hosts_down: Vec<usize>,
}

/// Everything measured during one observation interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index (0-based).
    pub step: usize,
    /// Energy cost `ΔC_p` over the interval, USD.
    pub energy_cost_usd: f64,
    /// SLA-violation cost `ΔC_v` over the interval, USD.
    pub sla_cost_usd: f64,
    /// Total per-stage cost (Figures 2(a)–5(a) plot this series).
    pub total_cost_usd: f64,
    /// Migrations applied this step.
    pub migrations: usize,
    /// Cumulative migrations so far (Figures 2(b)–5(b)).
    pub cumulative_migrations: usize,
    /// Hosts with at least one VM (Figures 2(c)–5(c)).
    pub active_hosts: usize,
    /// Scheduler decision time in microseconds (Figures 2(d)–5(d),
    /// Tables 2–3's "Execution time" column, Figure 6).
    pub decision_micros: u64,
    /// Hosts above the β overload threshold after migrations.
    pub overloaded_hosts: usize,
}

/// Totals and averages over a whole run — one row of Table 2 or 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Steps simulated.
    pub steps: usize,
    /// Total operation cost, USD ("Total cost" row).
    pub total_cost_usd: f64,
    /// Energy component of the total, USD.
    pub energy_cost_usd: f64,
    /// SLA component of the total, USD.
    pub sla_cost_usd: f64,
    /// Total VM migrations ("#VM migrations" row).
    pub total_migrations: usize,
    /// Mean number of active hosts ("#Active hosts" row).
    pub mean_active_hosts: f64,
    /// Mean per-step scheduler decision time, milliseconds
    /// ("Execution time (ms)" row).
    pub mean_decision_ms: f64,
    /// Maximum per-step decision time, milliseconds.
    pub max_decision_ms: f64,
}

impl SummaryReport {
    /// Aggregates per-step records into a summary.
    pub fn from_records(scheduler: &str, records: &[StepRecord]) -> Self {
        let steps = records.len();
        let total_cost_usd = records.iter().map(|r| r.total_cost_usd).sum();
        let energy_cost_usd = records.iter().map(|r| r.energy_cost_usd).sum();
        let sla_cost_usd = records.iter().map(|r| r.sla_cost_usd).sum();
        let total_migrations = records.last().map_or(0, |r| r.cumulative_migrations);
        let mean_active_hosts = if steps == 0 {
            0.0
        } else {
            records.iter().map(|r| r.active_hosts as f64).sum::<f64>() / steps as f64
        };
        let mean_decision_ms = if steps == 0 {
            0.0
        } else {
            records
                .iter()
                .map(|r| r.decision_micros as f64)
                .sum::<f64>()
                / steps as f64
                / 1000.0
        };
        let max_decision_ms = records
            .iter()
            .map(|r| r.decision_micros as f64 / 1000.0)
            .fold(0.0, f64::max);
        Self {
            scheduler: scheduler.to_string(),
            steps,
            total_cost_usd,
            energy_cost_usd,
            sla_cost_usd,
            total_migrations,
            mean_active_hosts,
            mean_decision_ms,
            max_decision_ms,
        }
    }
}

/// A pairwise comparison between two summary reports, as the paper
/// phrases its headline results ("Megh reduces 14 % operational cost
/// with respect to THR-MMT, while Megh's execution time is 86 % of
/// THR-MMT's").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Percentage by which `self` reduces cost versus the baseline
    /// (positive = cheaper).
    pub cost_reduction_percent: f64,
    /// Baseline migrations divided by this scheduler's migrations.
    pub migration_ratio: f64,
    /// This scheduler's mean decision time as a fraction of the
    /// baseline's.
    pub execution_time_fraction: f64,
    /// Active-host difference (this − baseline).
    pub active_hosts_delta: f64,
}

impl SummaryReport {
    /// Compares this report against a `baseline`.
    pub fn relative_to(&self, baseline: &SummaryReport) -> Comparison {
        let safe = |v: f64| if v.abs() < 1e-12 { 1e-12 } else { v };
        Comparison {
            cost_reduction_percent: 100.0 * (baseline.total_cost_usd - self.total_cost_usd)
                / safe(baseline.total_cost_usd),
            migration_ratio: baseline.total_migrations as f64
                / (self.total_migrations.max(1) as f64),
            execution_time_fraction: self.mean_decision_ms / safe(baseline.mean_decision_ms),
            active_hosts_delta: self.mean_active_hosts - baseline.mean_active_hosts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: usize, cost: f64, migrations: usize, cum: usize) -> StepRecord {
        StepRecord {
            step,
            energy_cost_usd: cost * 0.8,
            sla_cost_usd: cost * 0.2,
            total_cost_usd: cost,
            migrations,
            cumulative_migrations: cum,
            active_hosts: 4,
            decision_micros: 1500,
            overloaded_hosts: 0,
        }
    }

    #[test]
    fn summary_aggregates_totals() {
        let records = vec![record(0, 1.0, 2, 2), record(1, 3.0, 1, 3)];
        let s = SummaryReport::from_records("X", &records);
        assert_eq!(s.scheduler, "X");
        assert_eq!(s.steps, 2);
        assert!((s.total_cost_usd - 4.0).abs() < 1e-12);
        assert!((s.energy_cost_usd - 3.2).abs() < 1e-12);
        assert!((s.sla_cost_usd - 0.8).abs() < 1e-12);
        assert_eq!(s.total_migrations, 3);
        assert_eq!(s.mean_active_hosts, 4.0);
        assert!((s.mean_decision_ms - 1.5).abs() < 1e-12);
        assert!((s.max_decision_ms - 1.5).abs() < 1e-12);
    }

    #[test]
    fn comparison_matches_hand_math() {
        let megh = SummaryReport {
            scheduler: "Megh".into(),
            steps: 10,
            total_cost_usd: 86.0,
            energy_cost_usd: 80.0,
            sla_cost_usd: 6.0,
            total_migrations: 100,
            mean_active_hosts: 20.0,
            mean_decision_ms: 0.86,
            max_decision_ms: 1.0,
        };
        let thr = SummaryReport {
            scheduler: "THR-MMT".into(),
            steps: 10,
            total_cost_usd: 100.0,
            energy_cost_usd: 60.0,
            sla_cost_usd: 40.0,
            total_migrations: 10_000,
            mean_active_hosts: 50.0,
            mean_decision_ms: 1.0,
            max_decision_ms: 2.0,
        };
        let c = megh.relative_to(&thr);
        assert!((c.cost_reduction_percent - 14.0).abs() < 1e-9);
        assert!((c.migration_ratio - 100.0).abs() < 1e-9);
        assert!((c.execution_time_fraction - 0.86).abs() < 1e-9);
        assert!((c.active_hosts_delta - -30.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_survives_zero_baselines() {
        let zero = SummaryReport::from_records("z", &[]);
        let c = zero.relative_to(&zero);
        assert!(c.cost_reduction_percent.is_finite());
        assert!(c.migration_ratio.is_finite());
    }

    #[test]
    fn empty_run_summary_is_zeroed() {
        let s = SummaryReport::from_records("empty", &[]);
        assert_eq!(s.steps, 0);
        assert_eq!(s.total_cost_usd, 0.0);
        assert_eq!(s.total_migrations, 0);
        assert_eq!(s.mean_active_hosts, 0.0);
    }
}
