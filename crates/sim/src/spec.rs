//! Physical- and virtual-machine catalogues (§6.2 experimental setup).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::PowerModel;

/// A physical machine (host) specification.
///
/// The paper's §6.2 setup: HP ProLiant ML110 G4/G5 servers, each a
/// dual-core machine modelled as a single CPU with the cumulative MIPS of
/// its cores (§3.1), 4 GB RAM and 1 Gbps network bandwidth.
///
/// # Examples
///
/// ```
/// use megh_sim::PmSpec;
///
/// let g4 = PmSpec::hp_proliant_g4();
/// assert_eq!(g4.mips, 3720.0);
/// assert_eq!(g4.ram_mb, 4096.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmSpec {
    /// Cumulative CPU capacity in MIPS (all cores combined, §3.1).
    pub mips: f64,
    /// Memory in MB.
    pub ram_mb: f64,
    /// Network bandwidth in Mbps.
    pub bw_mbps: f64,
    /// SPECpower-derived power model.
    pub power: PowerModel,
}

impl PmSpec {
    /// HP ProLiant ML110 G4: 2 × 1860 MIPS, 4 GB RAM, 1 Gbps.
    pub fn hp_proliant_g4() -> Self {
        Self {
            mips: 2.0 * 1860.0,
            ram_mb: 4096.0,
            bw_mbps: 1000.0,
            power: PowerModel::hp_proliant_g4(),
        }
    }

    /// HP ProLiant ML110 G5: 2 × 2660 MIPS, 4 GB RAM, 1 Gbps.
    pub fn hp_proliant_g5() -> Self {
        Self {
            mips: 2.0 * 2660.0,
            ram_mb: 4096.0,
            bw_mbps: 1000.0,
            power: PowerModel::hp_proliant_g5(),
        }
    }

    /// The paper's heterogeneous fleet: half G4, half G5 (§6.2).
    ///
    /// For odd `m` the extra host is a G4.
    pub fn paper_fleet(m: usize) -> Vec<Self> {
        (0..m)
            .map(|i| {
                if i % 2 == 0 {
                    Self::hp_proliant_g4()
                } else {
                    Self::hp_proliant_g5()
                }
            })
            .collect()
    }
}

/// A virtual machine specification.
///
/// §6.2: each application runs on a VM with 1 vCPU of 500–2500 MIPS,
/// 0.5–2.5 GB RAM and 100 Mbps bandwidth. We follow the CloudSim
/// convention of a small catalogue of instance types spanning that range.
///
/// # Examples
///
/// ```
/// use megh_sim::VmSpec;
///
/// let mix = VmSpec::paper_mix(8, 42);
/// assert_eq!(mix.len(), 8);
/// assert!(mix.iter().all(|vm| vm.mips >= 500.0 && vm.mips <= 2500.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Requested CPU capacity in MIPS.
    pub mips: f64,
    /// Memory in MB (what live migration must copy, §3.3).
    pub ram_mb: f64,
    /// Network bandwidth in Mbps.
    pub bw_mbps: f64,
}

impl VmSpec {
    /// Creates a VM spec.
    pub fn new(mips: f64, ram_mb: f64, bw_mbps: f64) -> Self {
        Self {
            mips,
            ram_mb,
            bw_mbps,
        }
    }

    /// The four instance types spanning the paper's 0.5–2.5 GB /
    /// 500–2500 MIPS range (CloudSim's standard catalogue, adapted).
    pub fn instance_types() -> [Self; 4] {
        [
            Self::new(2500.0, 2560.0, 100.0), // large
            Self::new(2000.0, 1740.0, 100.0), // medium
            Self::new(1000.0, 1740.0, 100.0), // small
            Self::new(500.0, 613.0, 100.0),   // micro
        ]
    }

    /// Draws `n` VM specs uniformly from [`VmSpec::instance_types`].
    pub fn paper_mix(n: usize, seed: u64) -> Vec<Self> {
        let types = Self::instance_types();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| types[rng.gen_range(0..types.len())].clone())
            .collect()
    }

    /// Expected live-migration duration onto/off a host with `host_bw`
    /// Mbps: all RAM pages copied over the network, `TM = M / B` (§3.3).
    ///
    /// RAM is megabytes, bandwidth megabits/s, so the factor 8 converts.
    pub fn migration_seconds(&self, host_bw_mbps: f64) -> f64 {
        if host_bw_mbps <= 0.0 {
            return f64::INFINITY;
        }
        self.ram_mb * 8.0 / host_bw_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_is_half_and_half() {
        let fleet = PmSpec::paper_fleet(10);
        let g4 = fleet
            .iter()
            .filter(|p| p.power.name().contains("G4"))
            .count();
        let g5 = fleet
            .iter()
            .filter(|p| p.power.name().contains("G5"))
            .count();
        assert_eq!(g4, 5);
        assert_eq!(g5, 5);
    }

    #[test]
    fn odd_fleet_has_extra_g4() {
        let fleet = PmSpec::paper_fleet(5);
        let g4 = fleet
            .iter()
            .filter(|p| p.power.name().contains("G4"))
            .count();
        assert_eq!(g4, 3);
    }

    #[test]
    fn migration_time_matches_paper_figure() {
        // §6.3: "the migration time of a VM of 0.5 GB RAM is at least
        // 4000 ms" on the 1 Gbps PlanetLab setup.
        let vm = VmSpec::new(500.0, 512.0, 100.0);
        let tm = vm.migration_seconds(1000.0);
        assert!((tm - 4.096).abs() < 1e-9, "tm = {tm}");
        assert!(tm * 1000.0 >= 4000.0);
    }

    #[test]
    fn migration_time_with_zero_bandwidth_is_infinite() {
        let vm = VmSpec::new(500.0, 512.0, 100.0);
        assert!(vm.migration_seconds(0.0).is_infinite());
    }

    #[test]
    fn paper_mix_is_deterministic_and_in_range() {
        let a = VmSpec::paper_mix(50, 7);
        let b = VmSpec::paper_mix(50, 7);
        assert_eq!(a, b);
        for vm in &a {
            assert!(vm.mips >= 500.0 && vm.mips <= 2500.0);
            assert!(vm.ram_mb >= 512.0 && vm.ram_mb <= 2560.0);
        }
        // All four types should appear in a sample of 50.
        let distinct: std::collections::BTreeSet<u64> = a.iter().map(|v| v.mips as u64).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn hosts_can_fit_multiple_small_vms() {
        let g4 = PmSpec::hp_proliant_g4();
        let micro = &VmSpec::instance_types()[3];
        assert!(g4.mips / micro.mips >= 7.0);
    }
}
