//! Live-migration timing models.
//!
//! The paper (§3.3) takes `TM = M/B` — all memory copied once over the
//! network — and estimates downtime via the α-threshold. That is the
//! [`MigrationModel::Simple`] default. Production live migration
//! (Clark et al., NSDI 2005 — the paper's reference [4]) is *iterative
//! pre-copy*: memory is copied while the VM keeps dirtying pages, each
//! round re-sending what the previous round left dirty, until the
//! remainder is small enough for a stop-and-copy pause. That is
//! [`MigrationModel::PreCopy`], which yields both a longer total
//! migration time and a principled downtime (the final stop-and-copy),
//! replacing the fixed downtime fraction.

use serde::{Deserialize, Serialize};

/// Estimated timing of one live migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEstimate {
    /// Total duration of the migration in seconds.
    pub total_seconds: f64,
    /// VM downtime (unavailability) in seconds.
    pub downtime_seconds: f64,
    /// Pre-copy rounds performed (1 for the simple model).
    pub rounds: usize,
}

/// Parameters of the iterative pre-copy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreCopyModel {
    /// Rate at which the running VM dirties memory, in Mbit/s of pages.
    pub dirty_rate_mbps: f64,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: usize,
    /// Remaining dirty volume (MB) below which stop-and-copy starts.
    pub stop_copy_threshold_mb: f64,
}

impl Default for PreCopyModel {
    fn default() -> Self {
        Self {
            dirty_rate_mbps: 100.0,
            max_rounds: 10,
            stop_copy_threshold_mb: 32.0,
        }
    }
}

/// How migration time and downtime are derived from VM RAM and host
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MigrationModel {
    /// §3.3's single full copy: `TM = 8·RAM/B`; downtime is
    /// `downtime_fraction × TM` (the CostParams field).
    #[default]
    Simple,
    /// Iterative pre-copy (Clark et al. 2005).
    PreCopy(PreCopyModel),
}

impl MigrationModel {
    /// Estimates one migration of a VM with `ram_mb` of memory over a
    /// link of `bw_mbps`, with `simple_downtime_fraction` applying only
    /// to the simple model.
    ///
    /// Returns `None` when the bandwidth is non-positive (the migration
    /// is impossible).
    pub fn estimate(
        &self,
        ram_mb: f64,
        bw_mbps: f64,
        simple_downtime_fraction: f64,
    ) -> Option<MigrationEstimate> {
        if bw_mbps <= 0.0 || ram_mb < 0.0 {
            return None;
        }
        match *self {
            Self::Simple => {
                let total = ram_mb * 8.0 / bw_mbps;
                Some(MigrationEstimate {
                    total_seconds: total,
                    downtime_seconds: simple_downtime_fraction.clamp(0.0, 1.0) * total,
                    rounds: 1,
                })
            }
            Self::PreCopy(model) => {
                // Round 1 copies all RAM; each subsequent round copies
                // what was dirtied during the previous one. With
                // ρ = dirty_rate/bandwidth < 1 the dirty volume decays
                // geometrically; ρ ≥ 1 never converges and the round
                // cap forces stop-and-copy.
                let bw_mb_s = bw_mbps / 8.0; // MB per second
                let dirty_mb_s = model.dirty_rate_mbps / 8.0;
                let mut to_copy_mb = ram_mb;
                let mut total_seconds = 0.0;
                let mut rounds = 0;
                while rounds < model.max_rounds.max(1) {
                    rounds += 1;
                    let round_seconds = to_copy_mb / bw_mb_s;
                    total_seconds += round_seconds;
                    let dirtied = dirty_mb_s * round_seconds;
                    if dirtied <= model.stop_copy_threshold_mb || dirtied >= to_copy_mb {
                        to_copy_mb = dirtied;
                        break;
                    }
                    to_copy_mb = dirtied;
                }
                // Stop-and-copy: the VM pauses while the residue moves.
                let downtime = to_copy_mb / bw_mb_s;
                Some(MigrationEstimate {
                    total_seconds: total_seconds + downtime,
                    downtime_seconds: downtime,
                    rounds,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_model_matches_section_3_3() {
        let est = MigrationModel::Simple.estimate(512.0, 1000.0, 0.1).unwrap();
        assert!((est.total_seconds - 4.096).abs() < 1e-9);
        assert!((est.downtime_seconds - 0.4096).abs() < 1e-9);
        assert_eq!(est.rounds, 1);
    }

    #[test]
    fn zero_bandwidth_is_impossible() {
        assert!(MigrationModel::Simple.estimate(512.0, 0.0, 0.1).is_none());
        assert!(MigrationModel::PreCopy(PreCopyModel::default())
            .estimate(512.0, -1.0, 0.1)
            .is_none());
    }

    #[test]
    fn precopy_with_idle_vm_has_one_round_and_tiny_downtime() {
        let model = MigrationModel::PreCopy(PreCopyModel {
            dirty_rate_mbps: 0.0,
            ..PreCopyModel::default()
        });
        let est = model.estimate(1024.0, 1000.0, 0.1).unwrap();
        assert_eq!(est.rounds, 1);
        assert_eq!(est.downtime_seconds, 0.0);
        assert!((est.total_seconds - 1024.0 * 8.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn precopy_downtime_shrinks_with_bandwidth() {
        let model = MigrationModel::PreCopy(PreCopyModel::default());
        let slow = model.estimate(2048.0, 500.0, 0.1).unwrap();
        let fast = model.estimate(2048.0, 2000.0, 0.1).unwrap();
        assert!(fast.downtime_seconds < slow.downtime_seconds);
        assert!(fast.total_seconds < slow.total_seconds);
    }

    #[test]
    fn precopy_converges_when_dirtying_is_slower_than_link() {
        let model = MigrationModel::PreCopy(PreCopyModel {
            dirty_rate_mbps: 100.0,
            max_rounds: 30,
            stop_copy_threshold_mb: 8.0,
        });
        let est = model.estimate(4096.0, 1000.0, 0.1).unwrap();
        assert!(
            est.rounds < 30,
            "should converge, used {} rounds",
            est.rounds
        );
        assert!(
            est.downtime_seconds < 1.0,
            "downtime {}",
            est.downtime_seconds
        );
        // Total bounded by geometric series M/B / (1 − ρ) plus slack.
        let geo = 4096.0 * 8.0 / 1000.0 / (1.0 - 0.1);
        assert!(est.total_seconds <= geo * 1.1);
    }

    #[test]
    fn precopy_diverges_gracefully_when_dirtying_outruns_link() {
        // Dirty rate ≥ bandwidth: rounds cap, downtime ≈ full copy.
        let model = MigrationModel::PreCopy(PreCopyModel {
            dirty_rate_mbps: 2000.0,
            max_rounds: 5,
            stop_copy_threshold_mb: 8.0,
        });
        let est = model.estimate(1024.0, 1000.0, 0.1).unwrap();
        // Divergence detected on round 1 (dirtied ≥ to_copy): a single
        // pre-copy round, then stop-and-copy of the grown residue.
        assert_eq!(est.rounds, 1);
        assert!(est.downtime_seconds >= 1024.0 * 8.0 / 1000.0);
        assert!(est.total_seconds.is_finite());
    }

    #[test]
    fn precopy_downtime_never_exceeds_total() {
        for ram in [256.0, 1024.0, 4096.0] {
            for dirty in [0.0, 50.0, 500.0, 5000.0] {
                let model = MigrationModel::PreCopy(PreCopyModel {
                    dirty_rate_mbps: dirty,
                    ..PreCopyModel::default()
                });
                let est = model.estimate(ram, 1000.0, 0.1).unwrap();
                assert!(est.downtime_seconds <= est.total_seconds + 1e-9);
                assert!(est.downtime_seconds >= 0.0);
            }
        }
    }
}
