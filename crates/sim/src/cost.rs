//! Energy and SLA cost models (§3.2–3.3 and §6.1 of the paper).

use serde::{Deserialize, Serialize};

/// Which SLA-violation band a VM is in, based on its cumulative downtime
/// percentage (§3.3, the piecewise definition of `c_v^j(t)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlaBand {
    /// Downtime ≤ 0.05 % — no payback owed.
    None,
    /// Downtime in (0.05 %, 0.10 %] — minor payback (16.7 % of the fee).
    Minor,
    /// Downtime > 0.10 % — major payback (33.3 % of the fee).
    Major,
}

/// All pricing and threshold constants of the paper's cost model.
///
/// Defaults are §6.1's experimental values. The struct is plain data so
/// experiments can probe other pricing regimes (the paper mentions
/// unreported sensitivity experiments on energy and SLA costs).
///
/// # Examples
///
/// ```
/// use megh_sim::{CostParams, SlaBand};
///
/// let c = CostParams::paper_defaults();
/// assert_eq!(c.sla_band(0.0004), SlaBand::None);
/// assert_eq!(c.sla_band(0.0008), SlaBand::Minor);
/// assert_eq!(c.sla_band(0.002), SlaBand::Major);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Electricity price (§6.1: 0.18675 USD/kWh — "the standard price of
    /// the local power providers").
    pub usd_per_kwh: f64,
    /// What the user pays per VM-hour (§6.1: 1.2 USD/h).
    pub vm_hourly_fee_usd: f64,
    /// Payback fraction in the minor band (§6.1: 16.7 %).
    pub payback_minor: f64,
    /// Payback fraction in the major band (§6.1: 33.3 %).
    pub payback_major: f64,
    /// Lower edge of the minor band as a downtime fraction (0.05 %).
    pub minor_band_floor: f64,
    /// Edge between minor and major bands as a fraction (0.10 %).
    pub major_band_floor: f64,
    /// Host overload threshold β as a utilization fraction (§6.1: 70 %).
    pub beta_overload: f64,
    /// Migration-downtime threshold α as a fraction (§6.1: 30 %): a VM is
    /// "down" while its delivered capacity is below α of its demand.
    pub alpha_migration: f64,
    /// Expected fraction of a migration's duration spent below the α
    /// threshold. CloudSim models live migration as a 10 % performance
    /// degradation; we count that fraction of `TM = M/B` as downtime,
    /// which realises the paper's `T_d = ∫ 1(û < α·u)` in expectation.
    pub migration_downtime_fraction: f64,
}

impl CostParams {
    /// The §6.1 experimental constants.
    pub fn paper_defaults() -> Self {
        Self {
            usd_per_kwh: 0.18675,
            vm_hourly_fee_usd: 1.2,
            payback_minor: 0.167,
            payback_major: 0.333,
            minor_band_floor: 0.0005,
            major_band_floor: 0.0010,
            beta_overload: 0.70,
            alpha_migration: 0.30,
            migration_downtime_fraction: 0.10,
        }
    }

    /// Energy cost in USD for `joules` of consumption (Eq. 1–2: cost
    /// `c_p` per Watt-second, aggregated over hosts and steps).
    pub fn energy_cost_usd(&self, joules: f64) -> f64 {
        // 1 kWh = 3.6e6 J.
        self.usd_per_kwh * joules.max(0.0) / 3.6e6
    }

    /// SLA band for a cumulative downtime fraction (downtime ÷ requested
    /// active time).
    pub fn sla_band(&self, downtime_fraction: f64) -> SlaBand {
        if downtime_fraction > self.major_band_floor {
            SlaBand::Major
        } else if downtime_fraction > self.minor_band_floor {
            SlaBand::Minor
        } else {
            SlaBand::None
        }
    }

    /// SLA payback accrued by one VM over an interval of `seconds`, given
    /// its current band.
    ///
    /// The paper's `c_v^j(t)` is a payback on the user's cumulative fee.
    /// Accruing `rate × fee × Δt` per interval makes the cumulative SLA
    /// cost equal `rate × fee × t` whenever the band is stable, matching
    /// Eq. (3) while giving the per-step costs Figures 2(a)–5(a) plot.
    pub fn sla_cost_usd(&self, band: SlaBand, seconds: f64) -> f64 {
        let rate = match band {
            SlaBand::None => 0.0,
            SlaBand::Minor => self.payback_minor,
            SlaBand::Major => self.payback_major,
        };
        rate * self.vm_hourly_fee_usd * seconds.max(0.0) / 3600.0
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_wired() {
        let c = CostParams::paper_defaults();
        assert_eq!(c.usd_per_kwh, 0.18675);
        assert_eq!(c.vm_hourly_fee_usd, 1.2);
        assert_eq!(c.beta_overload, 0.70);
        assert_eq!(c.alpha_migration, 0.30);
    }

    #[test]
    fn energy_cost_of_one_kwh() {
        let c = CostParams::paper_defaults();
        assert!((c.energy_cost_usd(3.6e6) - 0.18675).abs() < 1e-12);
        assert_eq!(c.energy_cost_usd(-10.0), 0.0);
    }

    #[test]
    fn sla_band_edges_are_exclusive_inclusive() {
        let c = CostParams::paper_defaults();
        // §3.3: (0.05 %, 0.10 %] is minor; > 0.10 % is major.
        assert_eq!(c.sla_band(0.0005), SlaBand::None);
        assert_eq!(c.sla_band(0.0005 + 1e-9), SlaBand::Minor);
        assert_eq!(c.sla_band(0.0010), SlaBand::Minor);
        assert_eq!(c.sla_band(0.0010 + 1e-9), SlaBand::Major);
    }

    #[test]
    fn sla_cost_rates() {
        let c = CostParams::paper_defaults();
        // One full hour in the major band: 33.3 % of 1.2 USD.
        assert!((c.sla_cost_usd(SlaBand::Major, 3600.0) - 0.3996).abs() < 1e-9);
        assert!((c.sla_cost_usd(SlaBand::Minor, 3600.0) - 0.2004).abs() < 1e-9);
        assert_eq!(c.sla_cost_usd(SlaBand::None, 3600.0), 0.0);
        assert_eq!(c.sla_cost_usd(SlaBand::Major, -1.0), 0.0);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(CostParams::default(), CostParams::paper_defaults());
    }
}
