//! A discrete-time cloud data-center simulator — the CloudSim substitute
//! for the Megh reproduction.
//!
//! The paper (§3, §6.1) evaluates migration schedulers inside CloudSim
//! with: M heterogeneous physical machines (half HP ProLiant ML110 G4,
//! half G5, with the SPECpower consumption tables of Table 1), N VMs
//! driven by CPU-utilization traces sampled every 5 minutes, an energy
//! cost of 0.18675 USD/kWh, a 1.2 USD/h VM fee with 16.7 % / 33.3 % SLA
//! paybacks, a β = 70 % host-overload threshold, an α = 30 % migration
//! downtime threshold, and a cap of 2 % of VMs migrated per step.
//!
//! This crate implements that whole substrate:
//!
//! * [`PowerModel`] — SPECpower tables with linear interpolation,
//! * [`PmSpec`] / [`VmSpec`] — machine catalogues,
//! * [`CostParams`] — the §3.2–3.3 energy and SLA cost models,
//! * [`Simulation`] — the step loop that applies a [`Scheduler`]'s
//!   migration decisions, accounts energy/SLA costs, and records the
//!   metrics every table and figure of §6 is built from.
//!
//! Schedulers (Megh, the MMT family, MadVM, Q-learning) live in sibling
//! crates and implement the [`Scheduler`] trait defined here.
//!
//! # Examples
//!
//! ```
//! use megh_sim::{DataCenterConfig, NoOpScheduler, Simulation};
//! use megh_trace::PlanetLabConfig;
//!
//! let trace = PlanetLabConfig::new(10, 1).generate_steps(20);
//! let config = DataCenterConfig::paper_planetlab(5, 10);
//! let outcome = Simulation::new(config, trace)
//!     .expect("valid setup")
//!     .run(NoOpScheduler::default());
//! assert_eq!(outcome.records().len(), 20);
//! assert!(outcome.report().total_cost_usd > 0.0);
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

mod config;
mod cost;
mod engine;
mod metrics;
mod migration;
mod network;
mod pool;
mod power;
mod scheduler;
mod slav;
mod spec;
mod step;
pub mod sweep;
mod view;

pub use config::{DataCenterBuilder, DataCenterConfig, HostOutage, InitialPlacement, SimError};
pub use cost::{CostParams, SlaBand};
pub use engine::{run_streamed, SimOptions, Simulation, SimulationOutcome};
pub use metrics::{Comparison, MigrationEvent, StepEvents, StepRecord, SummaryReport};
pub use migration::{MigrationEstimate, MigrationModel, PreCopyModel};
pub use network::NetworkModel;
pub use power::PowerModel;
pub use scheduler::{MigrationRequest, NoOpScheduler, Scheduler, StepFeedback};
pub use slav::SlavMetrics;
pub use spec::{PmSpec, VmSpec};
pub use sweep::{run_sweep, SeedRun, SweepReport};
pub use view::{DataCenterView, PmId, VmId};
