//! The read-only data-center snapshot handed to schedulers each step.

use serde::{Deserialize, Serialize};

use crate::PowerModel;

/// Identifier of a physical machine (host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PmId(pub usize);

/// Identifier of a virtual machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub usize);

impl std::fmt::Display for PmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm{}", self.0)
    }
}

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// An immutable snapshot of the data center at one observation step.
///
/// This is the §3.1 "global manager" interface: the VMMs report each VM's
/// demand and each host's recent utilization, and the scheduler decides
/// which VMs to migrate where. Everything a scheduler may legitimately
/// observe is here; schedulers cannot mutate the simulation directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCenterView {
    pub(crate) step: usize,
    pub(crate) step_seconds: u64,
    pub(crate) vm_mips: Vec<f64>,
    pub(crate) vm_ram_mb: Vec<f64>,
    pub(crate) vm_util_percent: Vec<f64>,
    pub(crate) vm_demand_mips: Vec<f64>,
    pub(crate) placement: Vec<usize>,
    pub(crate) host_mips: Vec<f64>,
    pub(crate) host_bw_mbps: Vec<f64>,
    pub(crate) host_used_mips: Vec<f64>,
    pub(crate) host_vms: Vec<Vec<usize>>,
    pub(crate) host_history: Vec<Vec<f64>>,
    pub(crate) host_power: std::sync::Arc<Vec<PowerModel>>,
    pub(crate) host_reserved_mips: Vec<f64>,
    pub(crate) host_down: Vec<bool>,
    pub(crate) beta_overload: f64,
    pub(crate) oversubscription_ratio: f64,
    pub(crate) migration_cap: usize,
}

impl DataCenterView {
    /// The observation step index (0-based).
    pub fn step(&self) -> usize {
        self.step
    }

    /// Seconds between observations (the paper's τ = 300 s).
    pub fn step_seconds(&self) -> u64 {
        self.step_seconds
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.vm_mips.len()
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.host_mips.len()
    }

    /// Maximum number of migrations the engine will apply this step
    /// (§6.1: at most 2 % of VMs).
    pub fn migration_cap(&self) -> usize {
        self.migration_cap
    }

    /// The host currently running `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn host_of(&self, vm: VmId) -> PmId {
        PmId(self.placement[vm.0])
    }

    /// VMs currently placed on `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn vms_on(&self, host: PmId) -> Vec<VmId> {
        self.host_vms[host.0].iter().map(|&v| VmId(v)).collect()
    }

    /// Requested CPU capacity of `vm` in MIPS.
    pub fn vm_mips(&self, vm: VmId) -> f64 {
        self.vm_mips[vm.0]
    }

    /// RAM of `vm` in MB (determines migration time).
    pub fn vm_ram_mb(&self, vm: VmId) -> f64 {
        self.vm_ram_mb[vm.0]
    }

    /// Current utilization of `vm` as a percentage of its requested MIPS.
    pub fn vm_utilization_percent(&self, vm: VmId) -> f64 {
        self.vm_util_percent[vm.0]
    }

    /// Current CPU demand of `vm` in MIPS.
    pub fn vm_demand_mips(&self, vm: VmId) -> f64 {
        self.vm_demand_mips[vm.0]
    }

    /// Total CPU capacity of `host` in MIPS.
    pub fn host_mips(&self, host: PmId) -> f64 {
        self.host_mips[host.0]
    }

    /// Network bandwidth of `host` in Mbps.
    pub fn host_bw_mbps(&self, host: PmId) -> f64 {
        self.host_bw_mbps[host.0]
    }

    /// MIPS currently demanded from `host` by its VMs.
    pub fn host_used_mips(&self, host: PmId) -> f64 {
        self.host_used_mips[host.0]
    }

    /// Utilization of `host` as a fraction of capacity (may exceed 1 when
    /// the host is overloaded).
    pub fn host_utilization(&self, host: PmId) -> f64 {
        let cap = self.host_mips[host.0];
        if cap <= 0.0 {
            return 0.0;
        }
        self.host_used_mips[host.0] / cap
    }

    /// Whether `host` is above the β overload threshold.
    pub fn is_overloaded(&self, host: PmId) -> bool {
        self.host_utilization(host) > self.beta_overload
    }

    /// Whether `host` currently runs no VMs (and is therefore asleep).
    pub fn is_asleep(&self, host: PmId) -> bool {
        self.host_vms[host.0].is_empty()
    }

    /// Whether `host` is down this step (scheduled outage). A down host
    /// serves nothing: resident VMs accrue full downtime until they are
    /// migrated away, and no placement policy should target it.
    pub fn is_down(&self, host: PmId) -> bool {
        self.host_down[host.0]
    }

    /// Number of hosts with at least one VM.
    pub fn active_hosts(&self) -> usize {
        self.host_vms.iter().filter(|v| !v.is_empty()).count()
    }

    /// The β overload threshold as a fraction.
    pub fn beta_overload(&self) -> f64 {
        self.beta_overload
    }

    /// Recent utilization history of `host` (oldest first, ending with
    /// the current observation). Adaptive MMT detectors consume this.
    pub fn host_history(&self, host: PmId) -> &[f64] {
        &self.host_history[host.0]
    }

    /// Whether moving `vm` to `host` keeps the host's *demand* at or
    /// below the β threshold — the "potential capacity" test of §3.1.
    ///
    /// Returns `false` for the VM's current host (a self-migration).
    pub fn fits_after_migration(&self, vm: VmId, host: PmId) -> bool {
        if self.placement[vm.0] == host.0 || self.host_down[host.0] {
            return false;
        }
        let cap = self.host_mips[host.0];
        if cap <= 0.0 {
            return false;
        }
        let used = self.host_used_mips[host.0] + self.vm_demand_mips[vm.0];
        used / cap <= self.beta_overload
    }

    /// Sum of the *requested* MIPS of the VMs on `host` (its reserved
    /// capacity, as opposed to the demand actually drawn this step).
    pub fn host_reserved_mips(&self, host: PmId) -> f64 {
        self.host_reserved_mips[host.0]
    }

    /// The configured CPU oversubscription ratio.
    pub fn oversubscription_ratio(&self) -> f64 {
        self.oversubscription_ratio
    }

    /// Whether the oversubscription policy allows `vm` to land on
    /// `host`: the host's reserved MIPS plus the VM's requested MIPS must
    /// stay within `ratio × capacity`. Placement policies (PABFD, MadVM,
    /// the initial packing) honor this bound; the engine does not force
    /// it on arbitrary scheduler actions.
    pub fn reservation_allows(&self, vm: VmId, host: PmId) -> bool {
        let cap = self.host_mips[host.0];
        if cap <= 0.0 {
            return false;
        }
        self.host_reserved_mips[host.0] + self.vm_mips[vm.0] <= self.oversubscription_ratio * cap
    }

    /// Power draw of `host` in Watts at a hypothetical `utilization`
    /// fraction. Power-aware placement (PABFD) uses this to rank
    /// destinations by marginal power increase.
    pub fn host_power_watts(&self, host: PmId, utilization: f64) -> f64 {
        self.host_power[host.0].watts_at(utilization)
    }

    /// Iterator over all host ids.
    pub fn hosts(&self) -> impl Iterator<Item = PmId> {
        (0..self.n_hosts()).map(PmId)
    }

    /// Iterator over all VM ids.
    pub fn vms(&self) -> impl Iterator<Item = VmId> {
        (0..self.n_vms()).map(VmId)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn toy_view() -> DataCenterView {
        DataCenterView {
            step: 3,
            step_seconds: 300,
            vm_mips: vec![1000.0, 2000.0, 500.0],
            vm_ram_mb: vec![1024.0, 2048.0, 512.0],
            vm_util_percent: vec![50.0, 25.0, 100.0],
            vm_demand_mips: vec![500.0, 500.0, 500.0],
            placement: vec![0, 0, 1],
            host_mips: vec![2000.0, 4000.0, 1000.0],
            host_bw_mbps: vec![1000.0, 1000.0, 1000.0],
            host_used_mips: vec![1000.0, 500.0, 0.0],
            host_vms: vec![vec![0, 1], vec![2], vec![]],
            host_history: vec![vec![0.4, 0.5], vec![0.1, 0.125], vec![0.0, 0.0]],
            host_power: std::sync::Arc::new(vec![
                PowerModel::hp_proliant_g4(),
                PowerModel::hp_proliant_g5(),
                PowerModel::hp_proliant_g4(),
            ]),
            host_reserved_mips: vec![3000.0, 500.0, 0.0],
            host_down: vec![false; 3],
            beta_overload: 0.7,
            oversubscription_ratio: 2.0,
            migration_cap: 1,
        }
    }

    #[test]
    fn basic_accessors() {
        let v = toy_view();
        assert_eq!(v.n_vms(), 3);
        assert_eq!(v.n_hosts(), 3);
        assert_eq!(v.step(), 3);
        assert_eq!(v.host_of(VmId(2)), PmId(1));
        assert_eq!(v.vms_on(PmId(0)), vec![VmId(0), VmId(1)]);
        assert_eq!(v.vm_demand_mips(VmId(0)), 500.0);
        assert_eq!(v.host_utilization(PmId(0)), 0.5);
    }

    #[test]
    fn overload_and_sleep_states() {
        let mut v = toy_view();
        assert!(!v.is_overloaded(PmId(0)));
        v.host_used_mips[0] = 1500.0;
        assert!(v.is_overloaded(PmId(0)));
        assert!(v.is_asleep(PmId(2)));
        assert!(!v.is_asleep(PmId(0)));
        assert_eq!(v.active_hosts(), 2);
    }

    #[test]
    fn fits_after_migration_checks_capacity_and_self() {
        let v = toy_view();
        // Moving vm0 (500 MIPS demand) to host1: (500+500)/4000 = 0.25 ≤ 0.7.
        assert!(v.fits_after_migration(VmId(0), PmId(1)));
        // Self-migration is never a fit.
        assert!(!v.fits_after_migration(VmId(0), PmId(0)));
        // Host2 has 1000 MIPS; vm1 demand 500 → 0.5 ≤ 0.7 fits.
        assert!(v.fits_after_migration(VmId(1), PmId(2)));
    }

    #[test]
    fn zero_capacity_host_never_fits() {
        let mut v = toy_view();
        v.host_mips[2] = 0.0;
        assert!(!v.fits_after_migration(VmId(0), PmId(2)));
        assert_eq!(v.host_utilization(PmId(2)), 0.0);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(PmId(4).to_string(), "pm4");
        assert_eq!(VmId(7).to_string(), "vm7");
    }
}
