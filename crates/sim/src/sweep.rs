//! Parallel seed-sweep driver for paper-scale experiments.
//!
//! Tables 2–3 and the statistical claims around them are averages over
//! many seeds, and each seed's run is independent: [`Simulation::run`]
//! takes `&self`, so one simulation (config + trace) can drive many
//! scheduler instances concurrently. This module fans a seed list across
//! `std::thread::scope` workers and aggregates the outcomes into a
//! [`SweepReport`].
//!
//! # Determinism contract
//!
//! A sweep's aggregated output is a pure function of `(simulation,
//! seeds, scheduler factory)` — the thread count changes wall-clock
//! time, never bytes:
//!
//! * seeds are partitioned into contiguous chunks and every outcome is
//!   written into a slot indexed by the seed's position, so results are
//!   merged in **seed order**, not completion order;
//! * aggregation is a fixed-order left-to-right reduction over that
//!   seed-ordered list;
//! * [`SweepReport`] deliberately excludes the per-step decision-time
//!   measurements (`decision_micros`, `mean_decision_ms`), the only
//!   wall-clock — hence nondeterministic — fields a run produces.
//!   Timing claims belong to the bench harness, not the sweep report.

use serde::{Deserialize, Serialize};

use megh_linalg::{mean, std_dev};

use crate::{Scheduler, Simulation, SimulationOutcome};

/// Runs `sim` once per seed, fanning the seeds across `threads` scoped
/// workers, and returns the outcomes **in seed order**.
///
/// `make` builds a fresh scheduler for each seed; it must be `Sync`
/// because workers call it concurrently. `threads` is clamped to
/// `1..=seeds.len()`. Worker panics propagate when the scope joins.
///
/// # Examples
///
/// ```
/// use megh_sim::{sweep::run_sweep, DataCenterConfig, NoOpScheduler, Simulation};
/// use megh_trace::PlanetLabConfig;
///
/// let trace = PlanetLabConfig::new(6, 1).generate_steps(10);
/// let sim = Simulation::new(DataCenterConfig::paper_planetlab(3, 6), trace).unwrap();
/// let outcomes = run_sweep(&sim, &[1, 2, 3], 2, |_seed| NoOpScheduler::default());
/// assert_eq!(outcomes.len(), 3);
/// ```
pub fn run_sweep<S, F>(
    sim: &Simulation,
    seeds: &[u64],
    threads: usize,
    make: F,
) -> Vec<SimulationOutcome>
where
    S: Scheduler,
    F: Fn(u64) -> S + Sync,
{
    if seeds.is_empty() {
        return Vec::new(); // lint: allow(alloc)
    }
    let threads = threads.clamp(1, seeds.len());
    let mut slots: Vec<Option<SimulationOutcome>> = Vec::new(); // lint: allow(alloc)
    slots.resize_with(seeds.len(), || None);
    // Contiguous chunks keep each worker on a disjoint slice of the slot
    // vector: no locks, and slot index == seed index by construction.
    let chunk = seeds.len().div_ceil(threads);
    if threads == 1 {
        for (slot, &seed) in slots.iter_mut().zip(seeds) {
            *slot = Some(sim.run(make(seed)));
        }
    } else {
        let make = &make;
        std::thread::scope(|scope| {
            for (seed_chunk, slot_chunk) in seeds.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, &seed) in slot_chunk.iter_mut().zip(seed_chunk) {
                        *slot = Some(sim.run(make(seed)));
                    }
                });
            }
        });
    }
    // Every slot was filled by exactly one worker (panics would have
    // propagated out of the scope above), so flatten drops nothing.
    slots.into_iter().flatten().collect() // lint: allow(alloc)
}

/// One seed's deterministic summary — a [`crate::SummaryReport`] minus
/// its wall-clock decision-time fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedRun {
    /// The seed this run used.
    pub seed: u64,
    /// Steps simulated.
    pub steps: usize,
    /// Total operation cost, USD.
    pub total_cost_usd: f64,
    /// Energy component of the total, USD.
    pub energy_cost_usd: f64,
    /// SLA component of the total, USD.
    pub sla_cost_usd: f64,
    /// Total VM migrations.
    pub total_migrations: usize,
    /// Mean number of active hosts.
    pub mean_active_hosts: f64,
}

/// Deterministic aggregate over a seed sweep — the raw material for a
/// "mean ± std over N seeds" table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Scheduler name (taken from the first outcome).
    pub scheduler: String,
    /// Number of seeds swept.
    pub seeds: usize,
    /// Per-seed summaries, in seed order.
    pub runs: Vec<SeedRun>,
    /// Mean of `total_cost_usd` over the seeds.
    pub mean_total_cost_usd: f64,
    /// Sample standard deviation of `total_cost_usd` (0 for one seed).
    pub std_total_cost_usd: f64,
    /// Smallest per-seed total cost.
    pub min_total_cost_usd: f64,
    /// Largest per-seed total cost.
    pub max_total_cost_usd: f64,
    /// Mean migration count over the seeds.
    pub mean_total_migrations: f64,
    /// Mean of the per-seed mean active-host counts.
    pub mean_active_hosts: f64,
}

impl SweepReport {
    /// Aggregates seed-ordered outcomes (as returned by [`run_sweep`])
    /// into a report.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` and `outcomes` disagree in length.
    pub fn from_outcomes(seeds: &[u64], outcomes: &[SimulationOutcome]) -> Self {
        assert_eq!(seeds.len(), outcomes.len(), "one outcome per seed required");
        let runs: Vec<SeedRun> = seeds
            .iter()
            .zip(outcomes)
            .map(|(&seed, outcome)| {
                let summary = outcome.report();
                SeedRun {
                    seed,
                    steps: summary.steps,
                    total_cost_usd: summary.total_cost_usd,
                    energy_cost_usd: summary.energy_cost_usd,
                    sla_cost_usd: summary.sla_cost_usd,
                    total_migrations: summary.total_migrations,
                    mean_active_hosts: summary.mean_active_hosts,
                }
            })
            .collect(); // lint: allow(alloc) — report assembly is a cold path
        let costs: Vec<f64> = runs.iter().map(|r| r.total_cost_usd).collect(); // lint: allow(alloc)
        if runs.is_empty() {
            // Keep every aggregate finite so the report always
            // serializes to plain JSON numbers.
            return Self {
                scheduler: String::new(),
                seeds: 0,
                runs,
                mean_total_cost_usd: 0.0,
                std_total_cost_usd: 0.0,
                min_total_cost_usd: 0.0,
                max_total_cost_usd: 0.0,
                mean_total_migrations: 0.0,
                mean_active_hosts: 0.0,
            };
        }
        Self {
            scheduler: outcomes
                .first()
                .map(|o| o.scheduler().to_string()) // lint: allow(alloc)
                .unwrap_or_default(),
            seeds: runs.len(),
            mean_total_cost_usd: mean(&costs),
            std_total_cost_usd: if costs.len() > 1 {
                std_dev(&costs)
            } else {
                0.0
            },
            min_total_cost_usd: costs.iter().copied().fold(f64::INFINITY, f64::min),
            max_total_cost_usd: costs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean_total_migrations: mean(
                &runs
                    .iter()
                    .map(|r| r.total_migrations as f64)
                    .collect::<Vec<f64>>(), // lint: allow(alloc)
            ),
            mean_active_hosts: mean(
                &runs
                    .iter()
                    .map(|r| r.mean_active_hosts)
                    .collect::<Vec<f64>>(), // lint: allow(alloc)
            ),
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataCenterConfig, DataCenterView, MigrationRequest, PmId, VmId};
    use megh_trace::PlanetLabConfig;

    /// A deliberately seed-sensitive scheduler: an LCG stream decides
    /// which VM moves where, so different seeds produce different runs
    /// while each seed stays fully deterministic.
    struct LcgScheduler {
        state: u64,
    }

    impl Scheduler for LcgScheduler {
        fn name(&self) -> &str {
            "LCG"
        }

        fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let vm = (self.state >> 33) as usize % view.n_vms();
            let host = (self.state >> 13) as usize % view.n_hosts();
            vec![MigrationRequest::new(VmId(vm), PmId(host))]
        }
    }

    fn mini_sim(steps: usize) -> Simulation {
        let trace = PlanetLabConfig::new(8, 7).generate_steps(steps);
        Simulation::new(DataCenterConfig::paper_planetlab(4, 8), trace).unwrap()
    }

    #[test]
    fn outcomes_are_merged_in_seed_order() {
        let sim = mini_sim(20);
        let seeds = [9u64, 1, 5];
        let outcomes = run_sweep(&sim, &seeds, 3, |seed| LcgScheduler { state: seed });
        let report = SweepReport::from_outcomes(&seeds, &outcomes);
        let got: Vec<u64> = report.runs.iter().map(|r| r.seed).collect();
        assert_eq!(got, seeds);
    }

    #[test]
    fn thread_count_does_not_change_report_bytes() {
        let sim = mini_sim(25);
        let seeds: Vec<u64> = (0..8).collect();
        let serialize = |threads: usize| {
            let outcomes = run_sweep(&sim, &seeds, threads, |seed| LcgScheduler { state: seed });
            serde_json::to_string(&SweepReport::from_outcomes(&seeds, &outcomes)).unwrap()
        };
        let single = serialize(1);
        assert_eq!(single, serialize(8));
        assert_eq!(single, serialize(3)); // uneven chunks too
    }

    #[test]
    fn different_seeds_produce_different_runs() {
        let sim = mini_sim(30);
        let seeds = [1u64, 2];
        let outcomes = run_sweep(&sim, &seeds, 2, |seed| LcgScheduler { state: seed });
        assert_ne!(outcomes[0].final_placement(), outcomes[1].final_placement());
    }

    #[test]
    fn aggregates_match_hand_math() {
        let sim = mini_sim(15);
        let seeds = [3u64, 4];
        let outcomes = run_sweep(&sim, &seeds, 1, |seed| LcgScheduler { state: seed });
        let report = SweepReport::from_outcomes(&seeds, &outcomes);
        let c0 = outcomes[0].report().total_cost_usd;
        let c1 = outcomes[1].report().total_cost_usd;
        assert_eq!(report.seeds, 2);
        assert!((report.mean_total_cost_usd - (c0 + c1) / 2.0).abs() < 1e-12);
        assert_eq!(report.min_total_cost_usd, c0.min(c1));
        assert_eq!(report.max_total_cost_usd, c0.max(c1));
    }

    #[test]
    fn empty_seed_list_yields_empty_report() {
        let sim = mini_sim(5);
        let outcomes = run_sweep(&sim, &[], 4, |seed| LcgScheduler { state: seed });
        assert!(outcomes.is_empty());
        let report = SweepReport::from_outcomes(&[], &outcomes);
        assert_eq!(report.seeds, 0);
        assert!(report.runs.is_empty());
    }

    #[test]
    fn oversized_thread_count_is_clamped() {
        let sim = mini_sim(10);
        let seeds = [1u64, 2];
        let outcomes = run_sweep(&sim, &seeds, 64, |seed| LcgScheduler { state: seed });
        assert_eq!(outcomes.len(), 2);
    }
}
