//! The discrete-time simulation loop.
//!
//! Each observation interval (τ = 300 s by default) the engine:
//!
//! 1. reads every VM's utilization from the trace and derives host loads,
//! 2. hands the scheduler a read-only [`DataCenterView`] and times its
//!    decision (that wall-clock time is the "execution time" metric of
//!    Tables 2–3 and Figures 2(d)–6),
//! 3. validates the requested migrations (in-range, not self-migrations,
//!    one per VM) and truncates to the configured per-step cap,
//! 4. applies them: the VM moves, and `migration_downtime_fraction × TM`
//!    seconds of downtime accrue to it, where `TM = RAM/bandwidth` (§3.3),
//! 5. accounts energy (SPECpower draw × τ; hosts with no VMs sleep at
//!    0 W) and SLA costs (hosts whose demand exceeds capacity add the
//!    unserved fraction of τ as downtime to each of their VMs;
//!    cumulative downtime fractions map to payback bands),
//! 6. reports the per-stage cost `ΔC_p + ΔC_v` back to the scheduler.
//!
//! Placement changes take effect within the step; migration duration
//! affects only downtime accounting, not when capacity moves. This is the
//! same granularity CloudSim's power-aware examples use.
//!
//! # Streaming and parallelism
//!
//! The loop is driven by any [`TraceSource`], pulling utilization
//! columns in chunks of [`SimOptions::chunk_steps`] steps, so a run
//! holds only the current chunk in memory regardless of trace length.
//! [`Simulation::run`] streams from an in-memory [`WorkloadTrace`]
//! cursor; [`run_streamed`] drives the same loop from a lazy source
//! (generator or file reader) without ever materializing the trace.
//!
//! With [`SimOptions::sim_threads`] > 1, the phase-5 accounting kernels
//! (per-host power/deficit, per-VM SLA) run on a persistent
//! [`crate::pool::StepPool`] — workers spawned once per run, fed
//! disjoint index chunks over channels — and are merged on the main
//! thread in index order — outcomes are byte-identical for any chunk
//! size and any thread count (see [`SimulationOutcome::fingerprint`]).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use megh_trace::{TraceSource, WorkloadTrace};

use crate::pool::{HostInputs, StepPool, VmInputs};
use crate::step::{host_metrics_chunk, vm_sla_chunk};
use crate::{
    config::InitialPlacement, DataCenterConfig, DataCenterView, Scheduler, SimError, StepFeedback,
    StepRecord, SummaryReport,
};

/// Tuning knobs for the streaming step loop.
///
/// The defaults reproduce the paper setup: one simulated day per chunk
/// (288 five-minute steps), single-threaded accounting, no progress
/// output. Every combination of these knobs yields a byte-identical
/// [`SimulationOutcome`]; they trade memory and wall-clock only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Trace steps fetched per [`TraceSource::fill_chunk`] call. Peak
    /// trace memory is `chunk_steps × n_vms` doubles. Clamped to ≥ 1.
    pub chunk_steps: usize,
    /// Worker threads for the per-step accounting kernels. Values ≤ 1
    /// run the kernels inline on the caller's thread.
    pub sim_threads: usize,
    /// Emit a progress/ETA line on stderr roughly every this many
    /// steps; 0 disables progress output.
    pub progress_every: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            chunk_steps: 288,
            sim_threads: 1,
            progress_every: 0,
        }
    }
}

/// A configured simulation, ready to run a scheduler over a trace.
///
/// # Examples
///
/// ```
/// use megh_sim::{DataCenterConfig, NoOpScheduler, Simulation};
/// use megh_trace::PlanetLabConfig;
///
/// let trace = PlanetLabConfig::new(8, 3).generate_steps(10);
/// let sim = Simulation::new(DataCenterConfig::paper_planetlab(4, 8), trace)?;
/// let outcome = sim.run(NoOpScheduler::default());
/// assert_eq!(outcome.records().len(), 10);
/// # Ok::<(), megh_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: DataCenterConfig,
    trace: WorkloadTrace,
    initial_placement: Vec<usize>,
    options: SimOptions,
}

impl Simulation {
    /// Builds a simulation, validating the configuration against the
    /// trace and computing the initial placement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid configurations or when the trace
    /// row count differs from the configured VM count.
    pub fn new(config: DataCenterConfig, trace: WorkloadTrace) -> Result<Self, SimError> {
        config.validate()?;
        if trace.n_vms() != config.vms.len() {
            return Err(SimError::TraceMismatch {
                config_vms: config.vms.len(),
                trace_vms: trace.n_vms(),
            });
        }
        let step0 = if trace.n_steps() > 0 {
            Some(trace.step_column(0))
        } else {
            None
        };
        let initial_placement = Self::place_initial(&config, step0.as_deref())?;
        Ok(Self {
            config,
            trace,
            initial_placement,
            options: SimOptions::default(),
        })
    }

    /// Replaces the streaming/parallelism options (builder style).
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// The validated configuration.
    pub fn config(&self) -> &DataCenterConfig {
        &self.config
    }

    /// The driving workload trace.
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }

    /// The VM→host assignment used at step 0.
    pub fn initial_placement(&self) -> &[usize] {
        &self.initial_placement
    }

    /// The active streaming/parallelism options.
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    fn place_initial(
        config: &DataCenterConfig,
        step0_util: Option<&[f64]>,
    ) -> Result<Vec<usize>, SimError> {
        let m = config.pms.len();
        let n = config.vms.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        Ok(match config.initial_placement {
            InitialPlacement::Explicit(ref hosts) => {
                // `validate()` has already vetted the list, but the
                // placement is this function's postcondition — recheck
                // locally so every VM index produced below is in range
                // regardless of how we were reached.
                if hosts.len() != n {
                    return Err(SimError::PlacementLengthMismatch {
                        n_vms: n,
                        listed: hosts.len(),
                    });
                }
                if let Some(vm) = hosts.iter().position(|&h| h >= m) {
                    return Err(SimError::PlacementHostOutOfRange {
                        vm,
                        host: hosts[vm],
                        n_hosts: m,
                    });
                }
                hosts.clone()
            }
            InitialPlacement::RoundRobin => (0..n).map(|j| j % m).collect(),
            InitialPlacement::RandomUniform { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n).map(|_| rng.gen_range(0..m)).collect()
            }
            InitialPlacement::FirstFit => {
                let loads: Vec<f64> = config.vms.iter().map(|vm| vm.mips).collect();
                Self::first_fit(config, (0..n).collect(), &loads)
            }
            InitialPlacement::DemandPacked => {
                let loads: Vec<f64> = (0..n)
                    .map(|j| step0_util.map_or(0.0, |u| u[j]) / 100.0 * config.vms[j].mips)
                    .collect();
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]).then(a.cmp(&b)));
                Self::first_fit(config, order, &loads)
            }
        })
    }

    /// First-fit of `order`ed VMs by the given per-VM `loads`, keeping
    /// each host at or below β × capacity in load and within the
    /// oversubscription ratio in *requested* MIPS; falls back to the
    /// least-loaded host when nothing fits (overcommit the scheduler
    /// must repair).
    fn first_fit(config: &DataCenterConfig, order: Vec<usize>, loads: &[f64]) -> Vec<usize> {
        let m = config.pms.len();
        let beta = config.cost.beta_overload;
        let ratio = config.oversubscription_ratio;
        let mut used = vec![0.0f64; m];
        let mut reserved = vec![0.0f64; m];
        let mut placement = vec![0usize; order.len()];
        for &j in &order {
            let requested = config.vms[j].mips;
            let host = (0..m)
                .find(|&h| {
                    let cap = config.pms[h].mips;
                    (used[h] + loads[j]) / cap <= beta && reserved[h] + requested <= ratio * cap
                })
                .unwrap_or_else(|| {
                    (0..m)
                        .min_by(|&a, &b| {
                            let la = used[a] / config.pms[a].mips;
                            let lb = used[b] / config.pms[b].mips;
                            la.total_cmp(&lb)
                        })
                        // The caller returns early when m == 0, so the
                        // range is never empty; 0 keeps the path total.
                        .unwrap_or(0)
                });
            used[host] += loads[j];
            reserved[host] += requested;
            placement[j] = host;
        }
        placement
    }

    /// Runs the scheduler over the whole trace and returns the outcome.
    pub fn run<S: Scheduler>(&self, scheduler: S) -> SimulationOutcome {
        self.run_steps(scheduler, self.trace.n_steps())
    }

    /// Runs at most `max_steps` steps (truncated to the trace length).
    pub fn run_steps<S: Scheduler>(&self, scheduler: S, max_steps: usize) -> SimulationOutcome {
        run_core(
            &self.config,
            &self.initial_placement,
            self.trace.cursor(),
            max_steps,
            scheduler,
            &self.options,
        )
    }
}

/// Runs a scheduler directly over a lazy [`TraceSource`] without ever
/// materializing the full trace: peak trace memory is one chunk
/// ([`SimOptions::chunk_steps`] columns), independent of trace length.
///
/// The source must be freshly constructed or [`TraceSource::reset`];
/// its declared header drives validation and the step count. The
/// outcome is byte-identical to materializing the same source with
/// [`TraceSource::take_steps`] and running [`Simulation::run`] (the
/// take-steps path sanitizes values, which streaming sources already
/// guarantee by contract).
///
/// # Errors
///
/// Returns [`SimError`] for invalid configurations or when the source
/// header's VM count differs from the configured VM count.
pub fn run_streamed<T: TraceSource, S: Scheduler>(
    config: &DataCenterConfig,
    mut source: T,
    scheduler: S,
    options: SimOptions,
) -> Result<SimulationOutcome, SimError> {
    config.validate()?;
    let header = source.header();
    if header.n_vms != config.vms.len() {
        return Err(SimError::TraceMismatch {
            config_vms: config.vms.len(),
            trace_vms: header.n_vms,
        });
    }
    // Peek the first column for demand-aware initial placement, then
    // rewind so the run replays the stream from the start.
    let step0: Option<Vec<f64>> = if header.n_vms > 0 && header.n_steps > 0 {
        let mut col = vec![0.0f64; header.n_vms];
        let got = source.fill_chunk(&mut col);
        source.reset();
        (got > 0).then_some(col)
    } else {
        None
    };
    let placement = Simulation::place_initial(config, step0.as_deref())?;
    Ok(run_core(
        config,
        &placement,
        source,
        header.n_steps,
        scheduler,
        &options,
    ))
}

/// The step loop shared by [`Simulation::run_steps`] and
/// [`run_streamed`]. `source` must be positioned at step 0; the loop
/// pulls `opts.chunk_steps` columns at a time and stops early if the
/// source dries up before its declared `n_steps` (e.g. a file reader
/// that hit an I/O error mid-stream).
fn run_core<T: TraceSource, S: Scheduler>(
    config: &DataCenterConfig,
    initial_placement: &[usize],
    mut source: T,
    max_steps: usize,
    mut scheduler: S,
    opts: &SimOptions,
) -> SimulationOutcome {
    let header = source.header();
    let n = config.vms.len();
    let m = config.pms.len();
    let tau = header.step_seconds as f64;
    let steps = max_steps.min(header.n_steps);
    let cap = config.migration_cap();
    let cost = &config.cost;
    let threads = opts.sim_threads.max(1);
    let chunk_steps = opts.chunk_steps.max(1);
    // Workers are spawned once here and fed over channels every step;
    // `None` keeps the single-threaded path free of any pool overhead.
    let mut pool = (threads > 1 && (m > 1 || n > 1)).then(|| StepPool::new(threads));

    let mut placement = initial_placement.to_vec();
    let mut vm_downtime_s = vec![0.0f64; n];
    let mut vm_requested_s = vec![0.0f64; n];
    let mut host_history: Vec<Vec<f64>> = vec![Vec::new(); m];
    let mut host_energy_joules = vec![0.0f64; m];
    let mut cumulative_migrations = 0usize;
    let mut records = Vec::with_capacity(steps.min(1 << 20));
    let mut events: Vec<crate::StepEvents> = Vec::with_capacity(steps.min(1 << 20));
    // Occupancy before the first step, for sleep/wake event edges.
    let mut prev_active: Vec<bool> = {
        let mut counts = vec![0usize; m];
        for &h in &placement {
            counts[h] += 1;
        }
        counts.iter().map(|&c| c > 0).collect()
    };

    let vm_mips: Vec<f64> = config.vms.iter().map(|v| v.mips).collect();
    let vm_ram: Vec<f64> = config.vms.iter().map(|v| v.ram_mb).collect();
    // Shared with pool workers (constant for the whole run).
    let host_mips: Arc<Vec<f64>> = Arc::new(config.pms.iter().map(|p| p.mips).collect());
    let host_bw: Vec<f64> = config.pms.iter().map(|p| p.bw_mbps).collect();
    // Shared once: the power curves never change during a run.
    let host_power = std::sync::Arc::new(
        config
            .pms
            .iter()
            .map(|p| p.power.clone())
            .collect::<Vec<_>>(),
    );

    // One chunk of trace columns plus the per-step kernel output slots,
    // allocated once and reused every step.
    let mut chunk = vec![0.0f64; chunk_steps * n.max(1)];
    let mut step_joules = vec![0.0f64; m];
    let mut step_deficit = vec![0.0f64; m];
    let mut step_util_frac = vec![0.0f64; m];
    let mut step_sla = vec![0.0f64; n];

    // Wall clock for operator progress lines only; never feeds results.
    // lint: allow(nondet)
    let run_started = Instant::now();
    let mut last_report = 0usize;

    let mut step = 0usize;
    while step < steps {
        let want = chunk_steps.min(steps - step);
        let got = if n == 0 {
            // No VMs means no columns to read; the steps still elapse.
            want
        } else {
            source.fill_chunk(&mut chunk[..want * n])
        };
        if got == 0 {
            break; // source exhausted before its declared length
        }
        for local in 0..got {
            let util_col = &chunk[local * n..(local + 1) * n];
            let step_idx = step + local;

            // 0. Scheduled outages active this interval. `Arc` so the
            // worker pool can share it without copying.
            let down: Arc<Vec<bool>> = Arc::new(
                (0..m)
                    .map(|h| {
                        config
                            .outages
                            .iter()
                            .any(|o| o.host == h && o.covers(step_idx))
                    })
                    .collect(),
            );

            // 1. Demands from the trace column.
            let util: Vec<f64> = util_col.to_vec();
            let demand: Vec<f64> = (0..n).map(|j| util[j] / 100.0 * vm_mips[j]).collect();

            let mut host_used = vec![0.0f64; m];
            let mut host_reserved = vec![0.0f64; m];
            let mut host_vms: Vec<Vec<usize>> = vec![Vec::new(); m];
            for j in 0..n {
                host_used[placement[j]] += demand[j];
                host_reserved[placement[j]] += vm_mips[j];
                host_vms[placement[j]].push(j);
            }

            // 2. Histories (ending with the current observation).
            for h in 0..m {
                let u = if host_mips[h] > 0.0 {
                    host_used[h] / host_mips[h]
                } else {
                    0.0
                };
                host_history[h].push(u);
                let window = config.history_window;
                if host_history[h].len() > window {
                    let excess = host_history[h].len() - window;
                    host_history[h].drain(..excess);
                }
            }

            let view = DataCenterView {
                step: step_idx,
                step_seconds: header.step_seconds,
                vm_mips: vm_mips.clone(),
                vm_ram_mb: vm_ram.clone(),
                vm_util_percent: util,
                vm_demand_mips: demand.clone(),
                placement: placement.clone(),
                host_mips: host_mips.as_ref().clone(),
                host_bw_mbps: host_bw.clone(),
                host_used_mips: host_used.clone(),
                host_vms,
                host_history: host_history.clone(),
                host_power: host_power.clone(),
                host_reserved_mips: host_reserved,
                host_down: down.as_ref().clone(),
                beta_overload: cost.beta_overload,
                oversubscription_ratio: config.oversubscription_ratio,
                migration_cap: cap,
            };

            // 3. Timed decision. Wall-clock here only *measures* the
            // scheduler; it never feeds back into any decision.
            // lint: allow(nondet)
            let started = Instant::now();
            let requested = scheduler.decide(&view);
            let decision_micros = started.elapsed().as_micros() as u64;

            // 4. Validate, dedupe per VM, cap; then price the whole
            // batch's bandwidth at once (concurrent migrations may
            // share rack uplinks) and apply.
            let mut seen = vec![false; n];
            let mut staged: Vec<(usize, usize, usize)> = Vec::new(); // (vm, src, dst)
            for req in requested {
                if staged.len() >= cap {
                    break;
                }
                let (j, k) = (req.vm.0, req.target.0);
                if j >= n || k >= m || placement[j] == k || seen[j] || down[k] {
                    continue; // a down host cannot receive a VM
                }
                seen[j] = true;
                staged.push((j, placement[j], k));
            }
            let endpoints: Vec<(usize, usize, f64)> = staged
                .iter()
                .map(|&(_, src, dst)| {
                    // Evacuating a down host copies from storage at the
                    // destination's speed; otherwise the slower NIC binds.
                    let bw = if down[src] {
                        host_bw[dst]
                    } else {
                        host_bw[src].min(host_bw[dst])
                    };
                    (src, dst, bw)
                })
                .collect();
            let effective_bw = config.network.effective_bandwidths(&endpoints);
            let mut applied = Vec::new();
            let mut migration_events = Vec::new();
            for (&(j, src, dst), &bw) in staged.iter().zip(&effective_bw) {
                let Some(estimate) = config.migration_model.estimate(
                    config.vms[j].ram_mb,
                    bw,
                    cost.migration_downtime_fraction,
                ) else {
                    continue;
                };
                vm_downtime_s[j] += estimate.downtime_seconds;
                host_used[src] -= demand[j];
                host_used[dst] += demand[j];
                placement[j] = dst;
                applied.push(crate::MigrationRequest::new(
                    crate::VmId(j),
                    crate::PmId(dst),
                ));
                migration_events.push(crate::MigrationEvent {
                    vm: crate::VmId(j),
                    from: crate::PmId(src),
                    to: crate::PmId(dst),
                });
            }
            let migrations = applied.len();
            cumulative_migrations += migrations;

            // 5. Energy + SLA accounting on the post-migration
            // placement, via the kernels in [`crate::step`]. The
            // fraction of each host's demanded work it cannot serve is
            // §3.3's overloading downtime: "overloading happens when
            // VMs try to use more resources than the capacity of the
            // host" — VMs on a host demanding 130 % of capacity lose
            // the unserved 23 % of the interval as downtime. The β
            // threshold remains the *management* signal (detectors,
            // placement, the overloaded-hosts metric).
            let mut host_vm_count = vec![0usize; m];
            for j in 0..n {
                host_vm_count[placement[j]] += 1;
            }
            let host_vm_count = Arc::new(host_vm_count);
            if let Some(pool) = pool.as_mut() {
                // Disjoint host chunks; outputs land in per-host slots,
                // so the merge below is order-independent of worker
                // scheduling. `host_used` is dead after this phase, so
                // it moves into the shared inputs outright.
                let inputs = HostInputs {
                    used: Arc::new(host_used),
                    mips: Arc::clone(&host_mips),
                    count: Arc::clone(&host_vm_count),
                    down: Arc::clone(&down),
                    power: Arc::clone(&host_power),
                    tau,
                };
                pool.host_metrics(
                    &inputs,
                    &mut step_joules,
                    &mut step_deficit,
                    &mut step_util_frac,
                );
            } else {
                host_metrics_chunk(
                    &host_used,
                    &host_mips,
                    &host_vm_count,
                    &down,
                    &host_power,
                    tau,
                    &mut step_joules,
                    &mut step_deficit,
                    &mut step_util_frac,
                );
            }
            // Deterministic merge in ascending host order — identical
            // float-accumulation order to the sequential loop.
            let mut joules = 0.0;
            let mut active_hosts = 0;
            let mut overloaded_hosts = 0;
            for h in 0..m {
                if down[h] || host_vm_count[h] == 0 {
                    continue;
                }
                active_hosts += 1;
                joules += step_joules[h];
                host_energy_joules[h] += step_joules[h];
                if step_util_frac[h] > cost.beta_overload {
                    overloaded_hosts += 1;
                }
            }
            let energy_cost_usd = cost.energy_cost_usd(joules);

            if let Some(pool) = pool.as_mut() {
                // Disjoint VM chunks, each reading the full per-host
                // deficit array. `placement` and the deficit buffer are
                // lent to the workers as `Arc`s and reclaimed below
                // once every chunk has been merged back.
                let placement_arc = Arc::new(std::mem::take(&mut placement));
                let deficit_arc = Arc::new(std::mem::take(&mut step_deficit));
                let inputs = VmInputs {
                    placement: Arc::clone(&placement_arc),
                    deficit: Arc::clone(&deficit_arc),
                    tau,
                    cost: cost.clone(),
                };
                pool.vm_sla(
                    &inputs,
                    &mut vm_downtime_s,
                    &mut vm_requested_s,
                    &mut step_sla,
                );
                drop(inputs);
                // All jobs have been collected, so both Arcs are unique
                // again; the fallback clone is unreachable in practice.
                placement = Arc::try_unwrap(placement_arc).unwrap_or_else(|a| a.as_ref().clone());
                step_deficit = Arc::try_unwrap(deficit_arc).unwrap_or_else(|a| a.as_ref().clone());
            } else {
                vm_sla_chunk(
                    &placement,
                    &step_deficit,
                    tau,
                    cost,
                    &mut vm_downtime_s,
                    &mut vm_requested_s,
                    &mut step_sla,
                );
            }
            // Deterministic merge in ascending VM order.
            let mut sla_cost_usd = 0.0;
            for &s in &step_sla {
                sla_cost_usd += s;
            }

            let total_cost_usd = energy_cost_usd + sla_cost_usd;

            // 6. Events, feedback, record.
            let current_active: Vec<bool> =
                (0..m).map(|h| host_vm_count[h] > 0 && !down[h]).collect();
            events.push(crate::StepEvents {
                migrations: migration_events,
                hosts_slept: (0..m)
                    .filter(|&h| prev_active[h] && !current_active[h])
                    .collect(),
                hosts_woken: (0..m)
                    .filter(|&h| !prev_active[h] && current_active[h])
                    .collect(),
                hosts_down: (0..m).filter(|&h| down[h]).collect(),
            });
            prev_active = current_active;

            scheduler.observe(&StepFeedback {
                step: step_idx,
                energy_cost_usd,
                sla_cost_usd,
                total_cost_usd,
                applied: applied.clone(),
            });
            records.push(StepRecord {
                step: step_idx,
                energy_cost_usd,
                sla_cost_usd,
                total_cost_usd,
                migrations,
                cumulative_migrations,
                active_hosts,
                decision_micros,
                overloaded_hosts,
            });
        }
        step += got;
        if opts.progress_every > 0 && (step - last_report >= opts.progress_every || step >= steps) {
            last_report = step;
            let elapsed = run_started.elapsed().as_secs_f64();
            let frac = step as f64 / steps.max(1) as f64;
            let eta = if frac > 0.0 {
                elapsed * (1.0 - frac) / frac
            } else {
                0.0
            };
            eprintln!(
                "[sim] step {step}/{steps} ({:.0}%) elapsed {elapsed:.1}s eta {eta:.1}s",
                frac * 100.0
            );
        }
    }

    SimulationOutcome {
        scheduler: scheduler.name().to_string(),
        records,
        events,
        final_placement: placement,
        vm_downtime_s,
        vm_requested_s,
        host_energy_joules,
    }
}

/// The result of running one scheduler over one trace.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    scheduler: String,
    records: Vec<StepRecord>,
    events: Vec<crate::StepEvents>,
    final_placement: Vec<usize>,
    vm_downtime_s: Vec<f64>,
    vm_requested_s: Vec<f64>,
    host_energy_joules: Vec<f64>,
}

impl SimulationOutcome {
    /// The scheduler's reported name.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// Per-step records, one per simulated interval.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// The VM→host assignment after the final step.
    pub fn final_placement(&self) -> &[usize] {
        &self.final_placement
    }

    /// Per-VM cumulative downtime in seconds.
    pub fn vm_downtime_seconds(&self) -> &[f64] {
        &self.vm_downtime_s
    }

    /// Per-VM cumulative requested (active) time in seconds.
    pub fn vm_requested_seconds(&self) -> &[f64] {
        &self.vm_requested_s
    }

    /// The structured event log, one entry per step.
    pub fn events(&self) -> &[crate::StepEvents] {
        &self.events
    }

    /// Per-host energy consumed over the run, in Joules.
    pub fn host_energy_joules(&self) -> &[f64] {
        &self.host_energy_joules
    }

    /// A bit-exact digest of every deterministic field of the outcome:
    /// costs and counters per step (floats via [`f64::to_bits`]), the
    /// event log, the final placement, and the per-VM / per-host
    /// accumulators. `decision_micros` is excluded — it measures wall
    /// clock. Two runs of the same scheduler over the same trace must
    /// produce equal fingerprints regardless of [`SimOptions`]; the CI
    /// equivalence tests assert exactly that.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "scheduler={};", self.scheduler);
        for r in &self.records {
            let _ = write!(
                out,
                "r{}:{:016x},{:016x},{:016x},{},{},{},{};",
                r.step,
                r.energy_cost_usd.to_bits(),
                r.sla_cost_usd.to_bits(),
                r.total_cost_usd.to_bits(),
                r.migrations,
                r.cumulative_migrations,
                r.active_hosts,
                r.overloaded_hosts,
            );
        }
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(out, "e{i}:");
            for mv in &e.migrations {
                let _ = write!(out, "m{}-{}-{},", mv.vm.0, mv.from.0, mv.to.0);
            }
            let _ = write!(
                out,
                "s{:?}w{:?}d{:?};",
                e.hosts_slept, e.hosts_woken, e.hosts_down
            );
        }
        let _ = write!(out, "p{:?};", self.final_placement);
        for &v in &self.vm_downtime_s {
            let _ = write!(out, "{:016x},", v.to_bits());
        }
        out.push(';');
        for &v in &self.vm_requested_s {
            let _ = write!(out, "{:016x},", v.to_bits());
        }
        out.push(';');
        for &v in &self.host_energy_joules {
            let _ = write!(out, "{:016x},", v.to_bits());
        }
        out
    }

    /// Aggregates the run into a Table 2/3-style summary row.
    pub fn report(&self) -> SummaryReport {
        SummaryReport::from_records(&self.scheduler, &self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MigrationRequest, NoOpScheduler, PmId, VmId};
    use megh_trace::{PlanetLabConfig, WorkloadTrace};

    fn flat_trace(n_vms: usize, steps: usize, util: f64) -> WorkloadTrace {
        WorkloadTrace::from_rows(300, vec![vec![util; steps]; n_vms]).unwrap()
    }

    /// A scheduler that always asks for one fixed migration.
    struct OneMove {
        vm: usize,
        target: usize,
    }

    impl Scheduler for OneMove {
        fn name(&self) -> &str {
            "OneMove"
        }
        fn decide(&mut self, _view: &DataCenterView) -> Vec<MigrationRequest> {
            vec![MigrationRequest::new(VmId(self.vm), PmId(self.target))]
        }
    }

    #[test]
    fn trace_mismatch_is_rejected() {
        let trace = flat_trace(3, 5, 10.0);
        let config = DataCenterConfig::paper_planetlab(2, 4);
        assert_eq!(
            Simulation::new(config, trace).unwrap_err(),
            SimError::TraceMismatch {
                config_vms: 4,
                trace_vms: 3
            }
        );
    }

    #[test]
    fn round_robin_initial_placement() {
        let trace = flat_trace(5, 2, 10.0);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 5), trace).unwrap();
        assert_eq!(sim.initial_placement(), &[0, 1, 0, 1, 0]);
    }

    #[test]
    fn random_placement_is_seeded() {
        let mut config = DataCenterConfig::paper_planetlab(4, 10);
        config.initial_placement = InitialPlacement::RandomUniform { seed: 9 };
        let trace = flat_trace(10, 2, 10.0);
        let a = Simulation::new(config.clone(), trace.clone()).unwrap();
        let b = Simulation::new(config, trace).unwrap();
        assert_eq!(a.initial_placement(), b.initial_placement());
    }

    #[test]
    fn first_fit_respects_beta() {
        let mut config = DataCenterConfig::paper_planetlab(4, 6);
        config.initial_placement = InitialPlacement::FirstFit;
        let trace = flat_trace(6, 2, 10.0);
        let sim = Simulation::new(config.clone(), trace).unwrap();
        // Requested MIPS per host never exceeds β × capacity at placement
        // time unless overcommit was forced (not the case for 6 VMs on 4
        // hosts here).
        let mut requested = [0.0; 4];
        for (j, &h) in sim.initial_placement().iter().enumerate() {
            requested[h] += config.vms[j].mips;
        }
        for (h, req) in requested.iter().enumerate() {
            assert!(
                req / config.pms[h].mips <= config.cost.beta_overload + 1e-9,
                "host {h} over-committed at placement time"
            );
        }
    }

    #[test]
    fn noop_run_has_no_migrations_and_positive_cost() {
        let trace = flat_trace(4, 6, 20.0);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 4), trace).unwrap();
        let outcome = sim.run(NoOpScheduler);
        let report = outcome.report();
        assert_eq!(report.total_migrations, 0);
        assert!(report.total_cost_usd > 0.0);
        assert_eq!(report.steps, 6);
        assert_eq!(report.sla_cost_usd, 0.0, "20 % util must not violate SLAs");
    }

    #[test]
    fn energy_cost_matches_hand_computation() {
        // 1 host awake, 1 asleep. Two small VMs first-fit onto host 0 at
        // 0 % utilization.
        let mut config = DataCenterConfig::paper_planetlab(2, 2);
        config.vms = vec![
            crate::VmSpec::new(500.0, 613.0, 100.0),
            crate::VmSpec::new(500.0, 613.0, 100.0),
        ];
        let trace = flat_trace(2, 1, 0.0);
        config.initial_placement = InitialPlacement::FirstFit;
        let sim = Simulation::new(config.clone(), trace).unwrap();
        let outcome = sim.run(NoOpScheduler);
        let r = &outcome.records()[0];
        // Host 0 is a G4 idling at 86 W for 300 s; host 1 sleeps.
        let want = config.cost.energy_cost_usd(86.0 * 300.0);
        assert!((r.energy_cost_usd - want).abs() < 1e-9);
        assert_eq!(r.active_hosts, 1);
    }

    #[test]
    fn migration_moves_vm_and_counts() {
        let trace = flat_trace(2, 3, 10.0);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(3, 2), trace).unwrap();
        let outcome = sim.run(OneMove { vm: 0, target: 2 });
        // First step migrates vm0 to host 2; later steps are self-moves
        // (vm0 already there) and are ignored.
        assert_eq!(outcome.report().total_migrations, 1);
        assert_eq!(outcome.final_placement()[0], 2);
        assert!(outcome.vm_downtime_seconds()[0] > 0.0);
        assert_eq!(outcome.vm_downtime_seconds()[1], 0.0);
    }

    #[test]
    fn out_of_range_requests_are_ignored() {
        let trace = flat_trace(2, 2, 10.0);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 2), trace).unwrap();
        let outcome = sim.run(OneMove { vm: 7, target: 1 });
        assert_eq!(outcome.report().total_migrations, 0);
        let outcome = sim.run(OneMove { vm: 0, target: 9 });
        assert_eq!(outcome.report().total_migrations, 0);
    }

    #[test]
    fn migration_cap_is_enforced() {
        struct MoveAll;
        impl Scheduler for MoveAll {
            fn name(&self) -> &str {
                "MoveAll"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
                view.vms()
                    .map(|vm| {
                        let h = view.host_of(vm).0;
                        MigrationRequest::new(vm, PmId((h + 1) % view.n_hosts()))
                    })
                    .collect()
            }
        }
        let trace = flat_trace(10, 1, 10.0);
        let mut config = DataCenterConfig::paper_planetlab(4, 10);
        config.migration_cap_fraction = 0.02;
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(MoveAll);
        // cap = ceil(0.02 × 10) = 1.
        assert_eq!(outcome.report().total_migrations, 1);
    }

    #[test]
    fn overload_accrues_downtime_and_sla_cost() {
        // 2 VMs of up to 2500 MIPS at 100 % on one G4 host (3720 MIPS)
        // → guaranteed overload.
        let mut config = DataCenterConfig::paper_planetlab(1, 2);
        config.vms = vec![
            crate::VmSpec::new(2500.0, 1024.0, 100.0),
            crate::VmSpec::new(2500.0, 1024.0, 100.0),
        ];
        let trace = flat_trace(2, 4, 100.0);
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(NoOpScheduler);
        assert!(outcome.vm_downtime_seconds().iter().all(|&d| d > 0.0));
        let report = outcome.report();
        assert!(report.sla_cost_usd > 0.0, "sustained overload must cost");
        assert!(outcome.records().iter().all(|r| r.overloaded_hosts == 1));
    }

    #[test]
    fn per_step_costs_sum_to_total() {
        let trace = PlanetLabConfig::new(6, 5).generate_steps(30);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(3, 6), trace).unwrap();
        let outcome = sim.run(NoOpScheduler);
        let report = outcome.report();
        let sum: f64 = outcome.records().iter().map(|r| r.total_cost_usd).sum();
        assert!((report.total_cost_usd - sum).abs() < 1e-9);
        assert!(
            (report.total_cost_usd - report.energy_cost_usd - report.sla_cost_usd).abs() < 1e-9
        );
    }

    #[test]
    fn run_steps_truncates() {
        let trace = flat_trace(2, 10, 10.0);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 2), trace).unwrap();
        assert_eq!(sim.run_steps(NoOpScheduler, 4).records().len(), 4);
        assert_eq!(sim.run_steps(NoOpScheduler, 99).records().len(), 10);
    }

    #[test]
    fn duplicate_requests_for_same_vm_keep_first() {
        struct TwoForOne;
        impl Scheduler for TwoForOne {
            fn name(&self) -> &str {
                "TwoForOne"
            }
            fn decide(&mut self, _v: &DataCenterView) -> Vec<MigrationRequest> {
                vec![
                    MigrationRequest::new(VmId(0), PmId(1)),
                    MigrationRequest::new(VmId(0), PmId(2)),
                ]
            }
        }
        let mut config = DataCenterConfig::paper_planetlab(3, 2);
        config.migration_cap_fraction = 1.0; // cap is not the limiter here
        let trace = flat_trace(2, 1, 10.0);
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(TwoForOne);
        assert_eq!(outcome.report().total_migrations, 1);
        assert_eq!(outcome.final_placement()[0], 1);
    }

    #[test]
    fn demand_packed_initial_placement_packs_by_first_step_demand() {
        let mut config = DataCenterConfig::paper_planetlab(4, 4);
        config.vms = vec![crate::VmSpec::new(1000.0, 512.0, 100.0); 4];
        config.initial_placement = InitialPlacement::DemandPacked;
        // All four demand 10 % of 1000 = 100 MIPS: they pack onto one
        // host (400 ≪ β × 3720, reservation 4000 ≤ 2 × 3720).
        let trace = flat_trace(4, 2, 10.0);
        let sim = Simulation::new(config, trace).unwrap();
        let first = sim.initial_placement()[0];
        assert!(sim.initial_placement().iter().all(|&h| h == first));
    }

    #[test]
    fn demand_packed_respects_oversubscription() {
        let mut config = DataCenterConfig::paper_planetlab(4, 8);
        config.vms = vec![crate::VmSpec::new(2500.0, 512.0, 100.0); 8];
        config.initial_placement = InitialPlacement::DemandPacked;
        let trace = flat_trace(8, 2, 1.0); // near-idle demand
        let sim = Simulation::new(config.clone(), trace).unwrap();
        let mut reserved = [0.0; 4];
        for (j, &h) in sim.initial_placement().iter().enumerate() {
            reserved[h] += config.vms[j].mips;
        }
        for (h, r) in reserved.iter().enumerate() {
            assert!(
                *r <= config.oversubscription_ratio * config.pms[h].mips + 1e-9,
                "host {h} over-reserved at {r}"
            );
        }
    }

    #[test]
    fn oversubscribed_network_slows_concurrent_inter_rack_migrations() {
        // Two hosts per rack, heavy oversubscription; two simultaneous
        // inter-rack migrations must each see less downtime-relevant
        // bandwidth than a lone one would.
        struct MoveTwo;
        impl Scheduler for MoveTwo {
            fn name(&self) -> &str {
                "MoveTwo"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
                if view.step() == 0 {
                    vec![
                        MigrationRequest::new(VmId(0), PmId(2)),
                        MigrationRequest::new(VmId(1), PmId(3)),
                    ]
                } else {
                    Vec::new()
                }
            }
        }
        let run_with = |network: crate::NetworkModel| {
            let mut config = DataCenterConfig::paper_planetlab(4, 2);
            config.vms = vec![crate::VmSpec::new(1000.0, 1024.0, 100.0); 2];
            config.initial_placement = InitialPlacement::Explicit(vec![0, 1]);
            config.network = network;
            let trace = flat_trace(2, 2, 10.0);
            let sim = Simulation::new(config, trace).unwrap();
            let outcome = sim.run(MoveTwo);
            assert_eq!(outcome.report().total_migrations, 2);
            outcome.vm_downtime_seconds().to_vec()
        };
        let full = run_with(crate::NetworkModel::FullBisection);
        let shared = run_with(crate::NetworkModel::RackOversubscribed {
            hosts_per_rack: 2,
            ratio: 8.0,
        });
        for (f, s) in full.iter().zip(&shared) {
            assert!(
                s > f,
                "contended migration must incur more downtime ({s} vs {f})"
            );
        }
    }

    #[test]
    fn precopy_migration_model_changes_downtime() {
        let run_with = |model: crate::MigrationModel| {
            let mut config = DataCenterConfig::paper_planetlab(3, 2);
            config.vms = vec![crate::VmSpec::new(1000.0, 2048.0, 100.0); 2];
            config.migration_model = model;
            let trace = flat_trace(2, 2, 10.0);
            let sim = Simulation::new(config, trace).unwrap();
            let outcome = sim.run(OneMove { vm: 0, target: 2 });
            outcome.vm_downtime_seconds()[0]
        };
        let simple = run_with(crate::MigrationModel::Simple);
        let precopy = run_with(crate::MigrationModel::PreCopy(
            crate::PreCopyModel::default(),
        ));
        assert!(simple > 0.0);
        assert!(precopy > 0.0);
        // The idle-ish VM dirties slowly: pre-copy's stop-and-copy pause
        // is far below the simple model's 10 % blanket charge.
        assert!(
            precopy < simple,
            "precopy {precopy} should undercut simple {simple} for a quiet VM"
        );
    }

    #[test]
    fn event_log_tracks_sleep_and_wake_edges() {
        // vm0 moves from host 0 (shared with vm1) to empty host 2 at
        // step 0: host 2 wakes; nothing sleeps. No further changes.
        let trace = flat_trace(2, 3, 10.0);
        let mut config = DataCenterConfig::paper_planetlab(3, 2);
        config.initial_placement = InitialPlacement::Explicit(vec![0, 0]);
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(OneMove { vm: 0, target: 2 });
        let step0 = &outcome.events()[0];
        assert_eq!(step0.migrations.len(), 1);
        assert_eq!(step0.migrations[0].from, PmId(0));
        assert_eq!(step0.migrations[0].to, PmId(2));
        assert_eq!(step0.hosts_woken, vec![2]);
        assert!(step0.hosts_slept.is_empty());
        let step1 = &outcome.events()[1];
        assert!(step1.migrations.is_empty());
        assert!(step1.hosts_woken.is_empty() && step1.hosts_slept.is_empty());
    }

    #[test]
    fn host_energy_breakdown_sums_to_total() {
        let trace = flat_trace(4, 6, 30.0);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(3, 4), trace).unwrap();
        let outcome = sim.run(NoOpScheduler);
        let per_host: f64 = outcome.host_energy_joules().iter().sum();
        let cost = crate::CostParams::paper_defaults();
        let total_cost = outcome.report().energy_cost_usd;
        assert!((cost.energy_cost_usd(per_host) - total_cost).abs() < 1e-9);
    }

    #[test]
    fn explicit_placement_with_wrong_length_is_rejected() {
        // Regression: `place_initial` used to clone the list blindly,
        // so a 2-entry placement over 3 VMs produced out-of-bounds VM
        // indexing later in the run instead of a clean error here.
        let trace = flat_trace(3, 3, 10.0);
        let mut config = DataCenterConfig::paper_planetlab(3, 3);
        config.initial_placement = InitialPlacement::Explicit(vec![0, 1]);
        assert_eq!(
            Simulation::new(config, trace).unwrap_err(),
            SimError::PlacementLengthMismatch {
                n_vms: 3,
                listed: 2
            }
        );
    }

    #[test]
    fn explicit_placement_with_unknown_host_is_rejected() {
        let trace = flat_trace(2, 2, 10.0);
        let mut config = DataCenterConfig::paper_planetlab(2, 2);
        config.initial_placement = InitialPlacement::Explicit(vec![0, 5]);
        assert_eq!(
            Simulation::new(config, trace).unwrap_err(),
            SimError::PlacementHostOutOfRange {
                vm: 1,
                host: 5,
                n_hosts: 2
            }
        );
    }

    #[test]
    fn empty_data_center_runs() {
        let trace = WorkloadTrace::from_rows(300, vec![]).unwrap();
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 0), trace).unwrap();
        let outcome = sim.run(NoOpScheduler);
        // Hosts with no VMs sleep: zero cost.
        assert_eq!(outcome.report().total_cost_usd, 0.0);
    }

    #[test]
    fn history_window_is_bounded() {
        struct HistoryProbe {
            max_seen: usize,
        }
        impl Scheduler for HistoryProbe {
            fn name(&self) -> &str {
                "HistoryProbe"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
                for h in view.hosts() {
                    self.max_seen = self.max_seen.max(view.host_history(h).len());
                }
                Vec::new()
            }
        }
        let trace = flat_trace(2, 40, 10.0);
        let mut config = DataCenterConfig::paper_planetlab(2, 2);
        config.history_window = 7;
        let sim = Simulation::new(config, trace).unwrap();
        // Run and inspect via a probe-owned max (scheduler is consumed).
        let mut probe = HistoryProbe { max_seen: 0 };
        sim.run(&mut probe);
        assert_eq!(probe.max_seen, 7);
    }

    /// A contrived scheduler that migrates a rotating VM every step so
    /// the equivalence tests exercise the migration, downtime, and
    /// overload paths, not just idle accounting.
    struct Rotor;
    impl Scheduler for Rotor {
        fn name(&self) -> &str {
            "Rotor"
        }
        fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
            let n = view.n_vms();
            let m = view.n_hosts();
            if n == 0 || m < 2 {
                return Vec::new();
            }
            let j = view.step() % n;
            let h = view.host_of(VmId(j)).0;
            vec![MigrationRequest::new(VmId(j), PmId((h + 1) % m))]
        }
    }

    fn busy_setup(steps: usize) -> (DataCenterConfig, WorkloadTrace) {
        let mut config = DataCenterConfig::paper_planetlab(4, 8);
        // High per-VM demand so some hosts overload and SLA costs flow.
        config.vms = vec![crate::VmSpec::new(2000.0, 1024.0, 100.0); 8];
        config.initial_placement = InitialPlacement::Explicit(vec![0, 0, 0, 1, 1, 2, 2, 3]);
        let trace = PlanetLabConfig::new(8, 77).generate_steps(steps);
        (config, trace)
    }

    #[test]
    fn streaming_chunk_size_is_invisible() {
        let (config, trace) = busy_setup(50);
        let base = Simulation::new(config.clone(), trace.clone())
            .unwrap()
            .run(Rotor);
        for chunk_steps in [1usize, 7, 64, 50] {
            let out = Simulation::new(config.clone(), trace.clone())
                .unwrap()
                .with_options(SimOptions {
                    chunk_steps,
                    ..SimOptions::default()
                })
                .run(Rotor);
            assert_eq!(
                out.fingerprint(),
                base.fingerprint(),
                "chunk_steps = {chunk_steps} changed the outcome"
            );
        }
    }

    #[test]
    fn streaming_thread_count_is_invisible() {
        let (config, trace) = busy_setup(40);
        let base = Simulation::new(config.clone(), trace.clone())
            .unwrap()
            .run(Rotor);
        for sim_threads in [1usize, 2, 4] {
            let out = Simulation::new(config.clone(), trace.clone())
                .unwrap()
                .with_options(SimOptions {
                    sim_threads,
                    chunk_steps: 13,
                    ..SimOptions::default()
                })
                .run(Rotor);
            assert_eq!(
                out.fingerprint(),
                base.fingerprint(),
                "sim_threads = {sim_threads} changed the outcome"
            );
        }
    }

    #[test]
    fn streaming_run_matches_materialized_run() {
        // Drive the engine straight from the lazy generator and compare
        // against materialize-then-run.
        let gen = PlanetLabConfig::new(8, 21);
        let (mut config, _) = busy_setup(1);
        config.initial_placement = InitialPlacement::DemandPacked;
        let trace = gen.generate_steps(30);
        let base = Simulation::new(config.clone(), trace).unwrap().run(Rotor);
        let out = run_streamed(
            &config,
            gen.source(30),
            Rotor,
            SimOptions {
                chunk_steps: 7,
                sim_threads: 2,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.fingerprint(), base.fingerprint());
    }

    #[test]
    fn run_streamed_rejects_vm_count_mismatch() {
        let config = DataCenterConfig::paper_planetlab(2, 4);
        let source = PlanetLabConfig::new(3, 1).source(5);
        assert_eq!(
            run_streamed(&config, source, NoOpScheduler, SimOptions::default()).unwrap_err(),
            SimError::TraceMismatch {
                config_vms: 4,
                trace_vms: 3
            }
        );
    }

    #[test]
    fn fingerprint_excludes_wall_clock() {
        let (config, trace) = busy_setup(10);
        let a = Simulation::new(config.clone(), trace.clone())
            .unwrap()
            .run(Rotor);
        let b = Simulation::new(config, trace).unwrap().run(Rotor);
        // decision_micros certainly differs between runs; fingerprints
        // must not.
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
