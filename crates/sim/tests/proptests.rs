//! Property-based tests of the simulator's accounting invariants.

use megh_sim::{
    CostParams, DataCenterConfig, InitialPlacement, MigrationRequest, NoOpScheduler, PmId,
    PowerModel, Scheduler, Simulation, SlaBand, VmId, VmSpec,
};
use megh_trace::WorkloadTrace;
use proptest::prelude::*;

/// A scheduler that replays a scripted list of (possibly invalid)
/// migration requests, one batch per step.
struct Scripted {
    script: Vec<Vec<MigrationRequest>>,
    step: usize,
}

impl Scheduler for Scripted {
    fn name(&self) -> &str {
        "Scripted"
    }
    fn decide(&mut self, _view: &megh_sim::DataCenterView) -> Vec<MigrationRequest> {
        let batch = self.script.get(self.step).cloned().unwrap_or_default();
        self.step += 1;
        batch
    }
}

fn trace_strategy(n_vms: usize, steps: usize) -> impl Strategy<Value = WorkloadTrace> {
    prop::collection::vec(prop::collection::vec(0.0..=100.0f64, steps), n_vms)
        .prop_map(|rows| WorkloadTrace::from_rows(300, rows).expect("valid rows"))
}

fn requests_strategy(
    n_vms: usize,
    n_hosts: usize,
    steps: usize,
) -> impl Strategy<Value = Vec<Vec<MigrationRequest>>> {
    prop::collection::vec(
        prop::collection::vec(
            // Deliberately allow out-of-range ids: the engine must
            // discard them.
            (0..n_vms * 2, 0..n_hosts * 2)
                .prop_map(|(vm, host)| MigrationRequest::new(VmId(vm), PmId(host))),
            0..5,
        ),
        steps,
    )
}

fn small_config(n_hosts: usize, n_vms: usize) -> DataCenterConfig {
    let mut config = DataCenterConfig::paper_planetlab(n_hosts, n_vms);
    config.vms = vec![VmSpec::new(1000.0, 1024.0, 100.0); n_vms];
    config.initial_placement = InitialPlacement::RoundRobin;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever a scheduler requests, accounting stays coherent:
    /// costs decompose exactly, downtime never exceeds requested time,
    /// placement stays in range, migration counts match records.
    #[test]
    fn accounting_invariants_hold_under_arbitrary_requests(
        trace in trace_strategy(4, 12),
        script in requests_strategy(4, 3, 12),
    ) {
        let config = small_config(3, 4);
        let sim = Simulation::new(config, trace).expect("valid");
        let outcome = sim.run(Scripted { script, step: 0 });
        let report = outcome.report();
        prop_assert!((report.total_cost_usd
            - report.energy_cost_usd
            - report.sla_cost_usd).abs() < 1e-9);
        prop_assert!(report.energy_cost_usd >= 0.0);
        prop_assert!(report.sla_cost_usd >= 0.0);
        for &h in outcome.final_placement() {
            prop_assert!(h < 3);
        }
        let mut cumulative = 0;
        for r in outcome.records() {
            cumulative += r.migrations;
            prop_assert_eq!(r.cumulative_migrations, cumulative);
            prop_assert!(r.active_hosts <= 3);
            prop_assert!(r.overloaded_hosts <= 3);
        }
        for (d, rq) in outcome.vm_downtime_seconds().iter().zip(outcome.vm_requested_seconds()) {
            prop_assert!(*d >= 0.0);
            prop_assert!(d <= rq);
        }
    }

    /// Energy accounting: each active host contributes between its idle
    /// and peak draw; sleeping hosts contribute nothing.
    #[test]
    fn per_step_energy_is_bounded_by_power_envelope(
        trace in trace_strategy(4, 8),
    ) {
        let config = small_config(2, 4);
        let cost = CostParams::paper_defaults();
        let idle = PowerModel::hp_proliant_g4().idle_watts()
            .min(PowerModel::hp_proliant_g5().idle_watts());
        let peak = PowerModel::hp_proliant_g4().peak_watts()
            .max(PowerModel::hp_proliant_g5().peak_watts());
        let sim = Simulation::new(config, trace).expect("valid");
        let outcome = sim.run(NoOpScheduler);
        for r in outcome.records() {
            let lo = cost.energy_cost_usd(idle * 300.0 * r.active_hosts as f64);
            let hi = cost.energy_cost_usd(peak * 300.0 * r.active_hosts as f64);
            prop_assert!(r.energy_cost_usd >= lo - 1e-9, "below idle floor");
            prop_assert!(r.energy_cost_usd <= hi + 1e-9, "above peak ceiling");
        }
    }

    /// The SLA band function is monotone in the downtime fraction and
    /// its cost rate is monotone in the band.
    #[test]
    fn sla_band_is_monotone(a in 0.0..0.01f64, b in 0.0..0.01f64) {
        let cost = CostParams::paper_defaults();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let band_rank = |band: SlaBand| match band {
            SlaBand::None => 0,
            SlaBand::Minor => 1,
            SlaBand::Major => 2,
        };
        prop_assert!(band_rank(cost.sla_band(lo)) <= band_rank(cost.sla_band(hi)));
        prop_assert!(
            cost.sla_cost_usd(cost.sla_band(lo), 300.0)
                <= cost.sla_cost_usd(cost.sla_band(hi), 300.0) + 1e-12
        );
    }

    /// A NoOp run's total cost is invariant to the scheduler's identity
    /// and scales monotonically with trace utilization.
    #[test]
    fn uniform_utilization_scales_cost_monotonically(u in 0.0..=50.0f64) {
        let config = small_config(2, 4);
        let low = WorkloadTrace::from_rows(300, vec![vec![u; 6]; 4]).unwrap();
        let high = WorkloadTrace::from_rows(300, vec![vec![(u + 30.0).min(100.0); 6]; 4]).unwrap();
        let cost_low = Simulation::new(config.clone(), low)
            .unwrap()
            .run(NoOpScheduler)
            .report()
            .energy_cost_usd;
        let cost_high = Simulation::new(config, high)
            .unwrap()
            .run(NoOpScheduler)
            .report()
            .energy_cost_usd;
        prop_assert!(cost_high >= cost_low - 1e-12);
    }

    /// Initial placements are always complete and in range, for every
    /// policy.
    #[test]
    fn initial_placements_are_valid(
        trace in trace_strategy(6, 2),
        policy_idx in 0..4usize,
    ) {
        let mut config = small_config(3, 6);
        config.initial_placement = match policy_idx {
            0 => InitialPlacement::RoundRobin,
            1 => InitialPlacement::RandomUniform { seed: 11 },
            2 => InitialPlacement::FirstFit,
            _ => InitialPlacement::DemandPacked,
        };
        let sim = Simulation::new(config, trace).expect("valid");
        prop_assert_eq!(sim.initial_placement().len(), 6);
        for &h in sim.initial_placement() {
            prop_assert!(h < 3);
        }
    }
}
