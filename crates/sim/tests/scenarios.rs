//! Scripted end-to-end scenarios with hand-computed expected accounting.
//!
//! Where the unit tests pin individual mechanisms, these pin the
//! *composition*: several steps of a known workload with known
//! migrations, checked against arithmetic done by hand from the paper's
//! cost model (§3.2–3.3, Table 1).

use megh_sim::{
    CostParams, DataCenterConfig, DataCenterView, InitialPlacement, MigrationRequest,
    NoOpScheduler, PmId, Scheduler, Simulation, SlaBand, VmId, VmSpec,
};
use megh_trace::WorkloadTrace;

/// Replays one scripted batch per step.
struct Script(Vec<Vec<MigrationRequest>>);

impl Scheduler for Script {
    fn name(&self) -> &str {
        "Script"
    }
    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        self.0.get(view.step()).cloned().unwrap_or_default()
    }
}

/// Scenario 1: two G4 hosts, two 1000-MIPS VMs on host 0 at constant
/// 37.2 % utilization → demand 372 MIPS each, host util exactly 20 %.
///
/// Hand computation (3 steps, no migrations):
/// * G4 at 20 % draws 92.6 W (Table 1, exact knot).
/// * Energy = 92.6 W × 300 s × 3 = 83 340 J.
/// * Cost = 83 340 / 3.6e6 × 0.18675 = 0.00432...
/// * No overload, no migration → SLA = 0.
#[test]
fn scenario_constant_load_exact_energy() {
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.vms = vec![VmSpec::new(1000.0, 1024.0, 100.0); 2];
    config.initial_placement = InitialPlacement::Explicit(vec![0, 0]);
    let trace = WorkloadTrace::from_rows(300, vec![vec![37.2; 3]; 2]).unwrap();
    let outcome = Simulation::new(config, trace).unwrap().run(NoOpScheduler);
    let report = outcome.report();
    let want = 92.6 * 300.0 * 3.0 / 3.6e6 * 0.18675;
    assert!(
        (report.energy_cost_usd - want).abs() < 1e-9,
        "energy {} want {want}",
        report.energy_cost_usd
    );
    assert_eq!(report.sla_cost_usd, 0.0);
    assert_eq!(outcome.host_energy_joules()[0], 92.6 * 900.0);
    assert_eq!(outcome.host_energy_joules()[1], 0.0);
}

/// Scenario 2: one migration with exact downtime arithmetic.
///
/// VM of 1024 MB migrates over 1 Gbps: TM = 8192/1000 = 8.192 s;
/// simple-model downtime = 0.8192 s. With requested time 300 s at step
/// 0, the downtime fraction is 0.273 % > 0.1 % → major band from the
/// first interval; by step k the fraction is 0.8192/(300(k+1)).
/// Major band while fraction > 0.001 → steps 0 and 1 (0.27 %, 0.137 %);
/// minor band while > 0.0005 → steps 2–4; none afterwards.
/// SLA = 2 × 0.333 × 1.2 × 300/3600 + 3 × 0.167 × 1.2 × 300/3600.
#[test]
fn scenario_single_migration_band_decay() {
    let mut config = DataCenterConfig::paper_planetlab(2, 1);
    config.vms = vec![VmSpec::new(1000.0, 1024.0, 100.0)];
    config.initial_placement = InitialPlacement::Explicit(vec![0]);
    let steps = 8;
    let trace = WorkloadTrace::from_rows(300, vec![vec![10.0; steps]]).unwrap();
    let script = Script(vec![vec![MigrationRequest::new(VmId(0), PmId(1))]]);
    let outcome = Simulation::new(config, trace).unwrap().run(script);

    assert_eq!(outcome.report().total_migrations, 1);
    let downtime = outcome.vm_downtime_seconds()[0];
    assert!((downtime - 0.8192).abs() < 1e-9, "downtime {downtime}");

    let cost = CostParams::paper_defaults();
    let per_step = |band: SlaBand| cost.sla_cost_usd(band, 300.0);
    let want_sla = 2.0 * per_step(SlaBand::Major) + 3.0 * per_step(SlaBand::Minor);
    assert!(
        (outcome.report().sla_cost_usd - want_sla).abs() < 1e-9,
        "sla {} want {want_sla}",
        outcome.report().sla_cost_usd
    );
    // Per-step check of the band sequence.
    let sla_series: Vec<f64> = outcome.records().iter().map(|r| r.sla_cost_usd).collect();
    assert!((sla_series[0] - per_step(SlaBand::Major)).abs() < 1e-12);
    assert!((sla_series[1] - per_step(SlaBand::Major)).abs() < 1e-12);
    assert!((sla_series[2] - per_step(SlaBand::Minor)).abs() < 1e-12);
    assert!((sla_series[4] - per_step(SlaBand::Minor)).abs() < 1e-12);
    assert_eq!(sla_series[5], 0.0);
    assert_eq!(sla_series[7], 0.0);
}

/// Scenario 3: deficit arithmetic. Two 2500-MIPS VMs at 100 % on one
/// G4 (3720 MIPS): util = 5000/3720 = 1.3441 → deficit fraction
/// 1 − 1/1.3441 = 0.256 → 76.8 s of downtime per VM per step.
#[test]
fn scenario_deficit_downtime_rate() {
    let mut config = DataCenterConfig::paper_planetlab(1, 2);
    config.vms = vec![VmSpec::new(2500.0, 1024.0, 100.0); 2];
    let steps = 4;
    let trace = WorkloadTrace::from_rows(300, vec![vec![100.0; steps]; 2]).unwrap();
    let outcome = Simulation::new(config, trace).unwrap().run(NoOpScheduler);
    let per_step = (1.0 - 3720.0 / 5000.0) * 300.0;
    for &d in outcome.vm_downtime_seconds() {
        assert!(
            (d - per_step * steps as f64).abs() < 1e-9,
            "downtime {d}, want {}",
            per_step * steps as f64
        );
    }
    // Energy: the G4 is clamped at 100 % → 117 W.
    let want_joules = 117.0 * 300.0 * steps as f64;
    assert!((outcome.host_energy_joules()[0] - want_joules).abs() < 1e-9);
}

/// Scenario 4: consolidation arithmetic. Two VMs on two G4 hosts at
/// 20 % each (92.6 W × 2); migrating one VM onto the other host gives
/// one host at 40 % (99.5 W) and one asleep — the energy delta per step
/// must be exactly (2 × 92.6 − 99.5) × 300 J.
#[test]
fn scenario_consolidation_energy_delta() {
    let mk = |script: Vec<Vec<MigrationRequest>>| {
        let mut config = DataCenterConfig::paper_planetlab(2, 2);
        // Two *identical* G4 hosts (the paper fleet alternates G4/G5).
        config.pms = vec![megh_sim::PmSpec::hp_proliant_g4(); 2];
        config.vms = vec![VmSpec::new(1860.0, 512.0, 100.0); 2];
        config.initial_placement = InitialPlacement::Explicit(vec![0, 1]);
        let trace = WorkloadTrace::from_rows(300, vec![vec![40.0; 2]; 2]).unwrap();
        Simulation::new(config, trace).unwrap().run(Script(script))
    };
    // 1860 × 40 % = 744 MIPS on a 3720 host → 20 % util.
    let spread = mk(vec![]);
    let packed = mk(vec![vec![MigrationRequest::new(VmId(0), PmId(1))]]);
    let spread_joules: f64 = spread.host_energy_joules().iter().sum();
    let packed_joules: f64 = packed.host_energy_joules().iter().sum();
    let want_delta = (2.0 * 92.6 - 99.5) * 300.0 * 2.0;
    assert!(
        ((spread_joules - packed_joules) - want_delta).abs() < 1e-6,
        "delta {} want {want_delta}",
        spread_joules - packed_joules
    );
    assert_eq!(packed.records().last().unwrap().active_hosts, 1);
}

/// Scenario 5: the engine's timing of detection vs accounting — a
/// scheduler that reacts to the *current* view prevents the deficit in
/// the same step it appears.
#[test]
fn scenario_same_step_reaction_prevents_deficit() {
    struct Reactive;
    impl Scheduler for Reactive {
        fn name(&self) -> &str {
            "Reactive"
        }
        fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
            // Evacuate VM 1 the moment host 0's demand exceeds capacity.
            if view.host_utilization(PmId(0)) > 1.0 {
                vec![MigrationRequest::new(VmId(1), PmId(1))]
            } else {
                Vec::new()
            }
        }
    }
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.vms = vec![VmSpec::new(2500.0, 512.0, 100.0); 2];
    config.initial_placement = InitialPlacement::Explicit(vec![0, 0]);
    // Step 0 idle; step 1 both burst to 100 % (5000 > 3720).
    let trace =
        WorkloadTrace::from_rows(300, vec![vec![5.0, 100.0, 100.0], vec![5.0, 100.0, 100.0]])
            .unwrap();
    let outcome = Simulation::new(config, trace).unwrap().run(Reactive);
    // The reactive move lands within step 1: deficits never materialise
    // (2500/3720 = 0.67 per host afterwards), so the only downtime is
    // the migration itself.
    let max_tm_downtime = 0.1 * 512.0 * 8.0 / 1000.0 + 1e-9;
    for &d in outcome.vm_downtime_seconds() {
        assert!(
            d <= max_tm_downtime,
            "downtime {d} exceeds migration-only bound"
        );
    }
    assert_eq!(outcome.report().total_migrations, 1);
}
