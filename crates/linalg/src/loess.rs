//! Loess (locally weighted linear regression) used by the LR-MMT and
//! LRR-MMT overload detectors.
//!
//! Beloglazov & Buyya (2012) predict the next CPU utilization of a host by
//! fitting a local linear regression over the recent utilization history
//! (tricube weights); the *robust* variant (LRR) re-weights residuals with
//! the bisquare function for a few iterations so isolated spikes do not
//! dominate the fit. A host is flagged overloaded when the prediction,
//! inflated by a safety parameter, exceeds 100 %.

use std::fmt;

/// Error returned when a Loess fit is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoessError {
    /// Fewer than two data points were supplied.
    TooFewPoints,
    /// `xs` and `ys` have different lengths.
    LengthMismatch,
    /// The weighted design matrix is singular (e.g. all x identical).
    Singular,
}

impl fmt::Display for LoessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewPoints => write!(f, "loess needs at least two points"),
            Self::LengthMismatch => write!(f, "xs and ys must have equal length"),
            Self::Singular => write!(f, "singular design matrix in loess fit"),
        }
    }
}

impl std::error::Error for LoessError {}

/// Tricube kernel `(1 − |u|³)³` on `[−1, 1]`, zero outside.
fn tricube(u: f64) -> f64 {
    let a = u.abs();
    if a >= 1.0 {
        0.0
    } else {
        (1.0 - a.powi(3)).powi(3)
    }
}

/// Bisquare kernel `(1 − u²)²` on `[−1, 1]`, zero outside.
fn bisquare(u: f64) -> f64 {
    let a = u.abs();
    if a >= 1.0 {
        0.0
    } else {
        (1.0 - a * a).powi(2)
    }
}

/// Weighted least-squares line through `(xs, ys)` with weights `w`.
///
/// Returns `(intercept, slope)`.
fn weighted_line(xs: &[f64], ys: &[f64], w: &[f64]) -> Result<(f64, f64), LoessError> {
    let sw: f64 = w.iter().sum();
    if sw <= 0.0 {
        return Err(LoessError::Singular);
    }
    let swx: f64 = xs.iter().zip(w).map(|(x, w)| x * w).sum();
    let swy: f64 = ys.iter().zip(w).map(|(y, w)| y * w).sum();
    let swxx: f64 = xs.iter().zip(w).map(|(x, w)| x * x * w).sum();
    let swxy: f64 = xs.iter().zip(ys).zip(w).map(|((x, y), w)| x * y * w).sum();
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 {
        return Err(LoessError::Singular);
    }
    let slope = (sw * swxy - swx * swy) / denom;
    let intercept = (swy - slope * swx) / sw;
    Ok((intercept, slope))
}

/// Fits a locally weighted line around `x0` and evaluates it there.
///
/// Weights are tricube in the distance to `x0`, normalised by the maximum
/// distance in the window. When `robust_iterations > 0`, residuals are
/// re-weighted with the bisquare kernel (LRR's robustness step).
///
/// # Errors
///
/// Returns an error for mismatched/too-short inputs or a singular fit.
///
/// # Examples
///
/// ```
/// use megh_linalg::loess_fit;
///
/// let xs: Vec<f64> = (0..10).map(f64::from).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// let y10 = loess_fit(&xs, &ys, 10.0, 0)?;
/// assert!((y10 - 21.0).abs() < 1e-6);
/// # Ok::<(), megh_linalg::LoessError>(())
/// ```
pub fn loess_fit(
    xs: &[f64],
    ys: &[f64],
    x0: f64,
    robust_iterations: usize,
) -> Result<f64, LoessError> {
    if xs.len() != ys.len() {
        return Err(LoessError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(LoessError::TooFewPoints);
    }
    let max_dist = xs
        .iter()
        .map(|x| (x - x0).abs())
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let mut weights: Vec<f64> = xs
        .iter()
        // Strictly positive floor keeps far points from being zeroed out
        // entirely, which would make tiny windows singular.
        .map(|x| tricube((x - x0).abs() / (max_dist * (1.0 + 1e-9))).max(1e-9))
        .collect();
    let (mut intercept, mut slope) = weighted_line(xs, ys, &weights)?;
    for _ in 0..robust_iterations {
        let residuals: Vec<f64> = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| y - (intercept + slope * x))
            .collect();
        let mut abs_res: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
        abs_res.sort_by(|a, b| a.total_cmp(b));
        let s = abs_res[abs_res.len() / 2].max(1e-12); // median |residual|
        for (w, r) in weights.iter_mut().zip(&residuals) {
            *w *= bisquare(r / (6.0 * s)).max(1e-9);
        }
        let (i2, s2) = weighted_line(xs, ys, &weights)?;
        intercept = i2;
        slope = s2;
    }
    Ok(intercept + slope * x0)
}

/// Predicts the next value of an evenly spaced series via Loess.
///
/// The series values are treated as `y` at `x = 0, 1, …, n−1` and the fit
/// is evaluated at `x = n`. This is exactly how the LR/LRR detectors
/// extrapolate host utilization one observation interval ahead.
///
/// # Errors
///
/// Returns an error when the series has fewer than two points or the fit
/// is singular.
pub fn loess_predict_next(series: &[f64], robust_iterations: usize) -> Result<f64, LoessError> {
    let xs: Vec<f64> = (0..series.len()).map(|i| i as f64).collect();
    loess_fit(&xs, series, series.len() as f64, robust_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.5 * x + 3.0).collect();
        let y = loess_fit(&xs, &ys, 20.0, 0).unwrap();
        assert!((y - (-7.0)).abs() < 1e-6);
    }

    #[test]
    fn predict_next_on_linear_series() {
        let series: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        let next = loess_predict_next(&series, 0).unwrap();
        assert!((next - 1.0).abs() < 1e-6);
    }

    #[test]
    fn robust_fit_shrugs_off_outlier() {
        let xs: Vec<f64> = (0..15).map(f64::from).collect();
        let mut ys: Vec<f64> = xs.clone();
        ys[7] = 100.0; // single spike
        let plain = loess_fit(&xs, &ys, 15.0, 0).unwrap();
        let robust = loess_fit(&xs, &ys, 15.0, 4).unwrap();
        // The robust prediction must be closer to the true value 15.
        assert!((robust - 15.0).abs() < (plain - 15.0).abs());
        assert!((robust - 15.0).abs() < 2.0);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert_eq!(
            loess_fit(&[1.0, 2.0], &[1.0], 0.0, 0).unwrap_err(),
            LoessError::LengthMismatch
        );
    }

    #[test]
    fn rejects_short_series() {
        assert_eq!(
            loess_predict_next(&[1.0], 0).unwrap_err(),
            LoessError::TooFewPoints
        );
    }

    #[test]
    fn rejects_degenerate_x() {
        // All x identical → singular design matrix.
        assert_eq!(
            loess_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 1.0, 0).unwrap_err(),
            LoessError::Singular
        );
    }

    #[test]
    fn constant_series_predicts_constant() {
        let series = vec![0.4; 12];
        let next = loess_predict_next(&series, 2).unwrap();
        assert!((next - 0.4).abs() < 1e-9);
    }
}
