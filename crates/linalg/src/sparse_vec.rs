//! Sparse vectors stored as sorted `(index, value)` pairs.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use serde::{Deserialize, Serialize};

/// A sparse vector of fixed dimension storing only non-zero entries.
///
/// Entries are kept sorted by index with no duplicates and no explicit
/// zeros, so `dot`, `add` and iteration are linear in the number of
/// non-zeros. Megh's basis vectors `φ_a` have exactly one non-zero, which
/// is what makes its per-step update cost independent of the `N · M`
/// dimension of the projected space.
///
/// # Examples
///
/// ```
/// use megh_linalg::SparseVec;
///
/// let phi = SparseVec::basis(6, 2);
/// assert_eq!(phi.nnz(), 1);
/// assert_eq!(phi.get(2), 1.0);
/// assert_eq!(phi.get(3), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    entries: Vec<(usize, f64)>,
}

impl SparseVec {
    /// Creates an all-zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            // An empty Vec never touches the heap.
            entries: Vec::new(), // lint: allow(alloc)
        }
    }

    /// Creates the standard basis vector `e_index` of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dim {dim}"
        );
        Self {
            dim,
            entries: vec![(index, 1.0)], // lint: allow(alloc) — construction
        }
    }

    /// Builds a sparse vector from `(index, value)` pairs.
    ///
    /// Zero values are dropped; duplicate indices are summed.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= dim`.
    pub fn from_pairs(dim: usize, pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        // Construction from arbitrary pairs is not the decide loop.
        let mut entries: Vec<(usize, f64)> = pairs.into_iter().collect(); // lint: allow(alloc)
        for &(i, _) in &entries {
            assert!(i < dim, "index {i} out of range for dim {dim}");
        }
        entries.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(entries.len()); // lint: allow(alloc)
        for (i, v) in entries {
            match merged.last_mut() {
                Some((j, w)) if *j == i => *w += v,
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        Self {
            dim,
            entries: merged,
        }
    }

    /// Builds a sparse vector from a dense slice, dropping zeros.
    pub fn from_dense(values: &[f64]) -> Self {
        Self::from_pairs(
            values.len(),
            values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v)),
        )
    }

    /// The dimension of the vector (including zero entries).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the vector stores no non-zero entries.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the value at `index` (0.0 for entries not stored).
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn get(&self, index: usize) -> f64 {
        assert!(index < self.dim, "index {index} out of range");
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            // lint: allow(implicit_panic) -- binary_search returned Ok(pos), so pos indexes a stored entry
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Sets the value at `index`, inserting or removing an entry as needed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn set(&mut self, index: usize, value: f64) {
        assert!(index < self.dim, "index {index} out of range");
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => {
                if value == 0.0 {
                    self.entries.remove(pos);
                } else {
                    // lint: allow(implicit_panic) -- binary_search returned Ok(pos), so pos indexes a stored entry
                    self.entries[pos].1 = value;
                }
            }
            Err(pos) => {
                if value != 0.0 {
                    self.entries.insert(pos, (index, value));
                }
            }
        }
    }

    /// Adds `value` to the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn add_at(&mut self, index: usize, value: f64) {
        let current = self.get(index);
        self.set(index, current + value);
    }

    /// Removes all entries, keeping the allocated capacity so the vector
    /// can be refilled without touching the heap.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends an entry whose index is strictly greater than every index
    /// already stored, skipping the binary search that [`SparseVec::set`]
    /// performs.
    ///
    /// Zero values are dropped so the no-explicit-zeros invariant holds.
    /// This is the bulk-fill primitive behind the CSR product fast paths:
    /// kernels that produce entries in ascending index order stream them
    /// straight into the output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim` or if `index` does not exceed the last
    /// stored index.
    pub fn push_sorted(&mut self, index: usize, value: f64) {
        assert!(index < self.dim, "index {index} out of range");
        assert!(
            self.entries.last().is_none_or(|&(last, _)| last < index),
            "push_sorted index not strictly increasing"
        );
        if value != 0.0 {
            self.entries.push((index, value));
        }
    }

    /// Overwrites `self` with `other`'s contents, reusing `self`'s
    /// entry buffer when it is already large enough.
    pub fn copy_from(&mut self, other: &SparseVec) {
        self.dim = other.dim;
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Iterates over the stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Dot product with another sparse vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    // lint: depth_budget(1)
    pub fn dot(&self, other: &SparseVec) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch in dot product");
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, va) = self.entries[i];
            let (ib, vb) = other.entries[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product with a dense slice.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != self.dim()`.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        assert_eq!(self.dim, dense.len(), "dimension mismatch in dot product");
        // lint: allow(implicit_panic) -- stored indices are < dim = dense.len() (asserted above)
        self.entries.iter().map(|&(i, v)| v * dense[i]).sum()
    }

    /// Returns `self + scale * other` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled(&self, other: &SparseVec, scale: f64) -> SparseVec {
        assert_eq!(self.dim, other.dim, "dimension mismatch in add_scaled");
        // The allocating variant; hot paths use add_scaled_assign.
        let mut out = self.clone(); // lint: allow(alloc)
        out.add_scaled_assign(other, scale);
        out
    }

    /// Adds `scale * other` into `self` in place.
    ///
    /// Unlike [`SparseVec::add_scaled`] this reuses `self`'s entry
    /// buffer: once it has grown to the working-set size, further calls
    /// perform no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled_assign(&mut self, other: &SparseVec, scale: f64) {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch in add_scaled_assign"
        );
        if scale == 0.0 {
            return;
        }
        for (i, v) in other.iter() {
            self.add_at(i, scale * v);
        }
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
        } else {
            for (_, v) in &mut self.entries {
                *v *= factor;
            }
        }
    }

    /// Materialises the vector into a dense `Vec<f64>`.
    pub fn to_dense(&self) -> Vec<f64> {
        // Dense materialisation is a diagnostic path, not the hot loop.
        let mut out = vec![0.0; self.dim]; // lint: allow(alloc)
        for (i, v) in self.iter() {
            // lint: allow(implicit_panic) -- stored indices are < dim and out is dim-long
            out[i] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_has_single_nonzero() {
        let v = SparseVec::basis(5, 3);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(3), 1.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.dim(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_rejects_out_of_range() {
        let _ = SparseVec::basis(3, 3);
    }

    #[test]
    fn from_pairs_merges_duplicates_and_drops_zeros() {
        let v = SparseVec::from_pairs(4, [(1, 2.0), (1, 3.0), (2, 0.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(1), 5.0);
    }

    #[test]
    fn from_pairs_cancelling_duplicates_vanish() {
        let v = SparseVec::from_pairs(4, [(1, 2.0), (1, -2.0)]);
        assert!(v.is_zero());
    }

    #[test]
    fn set_insert_update_remove() {
        let mut v = SparseVec::zeros(4);
        v.set(2, 1.5);
        assert_eq!(v.get(2), 1.5);
        v.set(2, 2.5);
        assert_eq!(v.get(2), 2.5);
        assert_eq!(v.nnz(), 1);
        v.set(2, 0.0);
        assert!(v.is_zero());
    }

    #[test]
    fn dot_of_disjoint_supports_is_zero() {
        let a = SparseVec::from_pairs(6, [(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_pairs(6, [(1, 3.0), (3, 4.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn dot_matches_dense_computation() {
        let a = SparseVec::from_pairs(5, [(0, 1.0), (2, -2.0), (4, 0.5)]);
        let b = SparseVec::from_pairs(5, [(2, 3.0), (4, 4.0)]);
        let dense: f64 = a
            .to_dense()
            .iter()
            .zip(b.to_dense())
            .map(|(x, y)| x * y)
            .sum();
        assert!((a.dot(&b) - dense).abs() < 1e-12);
        assert!((a.dot_dense(&b.to_dense()) - dense).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_combines_supports() {
        let a = SparseVec::basis(3, 0);
        let b = SparseVec::basis(3, 1);
        let c = a.add_scaled(&b, -0.5);
        assert_eq!(c.get(0), 1.0);
        assert_eq!(c.get(1), -0.5);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn add_scaled_cancels_to_zero_entry() {
        let a = SparseVec::basis(3, 1);
        let c = a.add_scaled(&a, -1.0);
        assert!(c.is_zero());
    }

    #[test]
    fn add_scaled_assign_matches_add_scaled() {
        let a = SparseVec::from_pairs(6, [(0, 1.0), (2, -2.0), (5, 0.5)]);
        let b = SparseVec::from_pairs(6, [(2, 2.0), (3, 4.0)]);
        let want = a.add_scaled(&b, -0.25);
        let mut got = a.clone();
        got.add_scaled_assign(&b, -0.25);
        assert_eq!(got, want);
    }

    #[test]
    fn add_scaled_assign_with_zero_scale_is_identity() {
        let mut a = SparseVec::from_pairs(3, [(1, 2.0)]);
        let b = SparseVec::from_pairs(3, [(0, 1.0), (2, 3.0)]);
        let before = a.clone();
        a.add_scaled_assign(&b, 0.0);
        assert_eq!(a, before);
    }

    #[test]
    fn clear_and_copy_from_reuse_storage() {
        let mut scratch = SparseVec::from_pairs(4, [(0, 1.0), (3, 2.0)]);
        scratch.clear();
        assert!(scratch.is_zero());
        assert_eq!(scratch.dim(), 4);
        let src = SparseVec::from_pairs(4, [(1, -1.5)]);
        scratch.copy_from(&src);
        assert_eq!(scratch, src);
    }

    #[test]
    fn push_sorted_streams_ascending_entries() {
        let mut v = SparseVec::zeros(5);
        v.push_sorted(1, 2.0);
        v.push_sorted(2, 0.0); // explicit zero is dropped
        v.push_sorted(4, -1.0);
        assert_eq!(v, SparseVec::from_pairs(5, [(1, 2.0), (4, -1.0)]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_sorted_rejects_non_increasing_index() {
        let mut v = SparseVec::zeros(5);
        v.push_sorted(3, 1.0);
        v.push_sorted(3, 1.0);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = SparseVec::from_pairs(3, [(0, 1.0), (1, 2.0)]);
        a.scale(0.0);
        assert!(a.is_zero());
    }

    #[test]
    fn from_dense_roundtrip() {
        let dense = vec![0.0, 1.0, 0.0, -2.5];
        let v = SparseVec::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), dense);
    }
}
