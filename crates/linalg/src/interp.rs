//! Piecewise-linear interpolation over sorted knot tables.

use serde::{Deserialize, Serialize};

/// A piecewise-linear function defined by `(x, y)` knots.
///
/// The simulator uses this to interpolate the SPECpower tables (Table 1 of
/// the paper): power is tabulated at 0 %, 10 %, …, 100 % utilization and
/// interpolated linearly in between, exactly as CloudSim's
/// `PowerModelSpecPower` does.
///
/// # Examples
///
/// ```
/// use megh_linalg::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 86.0), (1.0, 117.0)]).unwrap();
/// assert_eq!(f.eval(0.5), 101.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds an interpolator from knots.
    ///
    /// # Errors
    ///
    /// Returns `None` when fewer than two knots are provided, knots are
    /// not strictly increasing in `x`, or any coordinate is non-finite.
    pub fn new(mut knots: Vec<(f64, f64)>) -> Option<Self> {
        if knots.len() < 2 {
            return None;
        }
        if knots.iter().any(|&(x, y)| !x.is_finite() || !y.is_finite()) {
            return None;
        }
        // All coordinates are finite (checked above); total_cmp keeps
        // the comparator total regardless.
        knots.sort_by(|a, b| a.0.total_cmp(&b.0));
        if knots.windows(2).any(|w| w[0].0 >= w[1].0) {
            return None;
        }
        Some(Self { knots })
    }

    /// Evaluates the function at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let first = self.knots[0];
        let last = self.knots[self.knots.len() - 1];
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            return last.1;
        }
        // Find the segment containing x.
        let idx = self
            .knots
            .partition_point(|&(kx, _)| kx <= x)
            .saturating_sub(1);
        let (x0, y0) = self.knots[idx];
        let (x1, y1) = self.knots[idx + 1];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The domain covered by the knots, as `(min_x, max_x)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.knots[0].0, self.knots[self.knots.len() - 1].0)
    }

    /// The knots defining the function.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_knots() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (0.5, 3.0), (1.0, 2.0)]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(0.5), 3.0);
        assert_eq!(f.eval(1.0), 2.0);
    }

    #[test]
    fn linear_between_knots() {
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 10.0)]).unwrap();
        assert!((f.eval(0.3) - 3.0).abs() < 1e-12);
        assert!((f.eval(0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_domain() {
        let f = PiecewiseLinear::new(vec![(0.0, 5.0), (1.0, 9.0)]).unwrap();
        assert_eq!(f.eval(-1.0), 5.0);
        assert_eq!(f.eval(2.0), 9.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let f = PiecewiseLinear::new(vec![(1.0, 10.0), (0.0, 0.0)]).unwrap();
        assert!((f.eval(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(PiecewiseLinear::new(vec![(0.0, 1.0)]).is_none());
        assert!(PiecewiseLinear::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_none());
        assert!(PiecewiseLinear::new(vec![(0.0, f64::NAN), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn domain_reports_extent() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (2.0, 3.0)]).unwrap();
        assert_eq!(f.domain(), (0.0, 2.0));
    }
}
