//! Dictionary-of-keys sparse matrices with sorted row/column adjacency.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use serde::{Deserialize, Serialize};

use crate::SparseVec;

/// A square sparse matrix stored as sorted per-row and per-column
/// adjacency lists.
///
/// This is the data structure §5.2 of the paper describes: only non-zero
/// entries are stored, and the per-row / per-column indexes make the
/// sparse-times-sparse products used by the Sherman–Morrison update
/// proportional to the number of non-zeros actually touched rather than
/// to the matrix order. Each list holds `(index, value)` pairs sorted by
/// index, with the value mirrored in both orientations, so a product
/// walks contiguous pairs directly — there is no per-entry hash or tree
/// probe on the decision hot path.
///
/// # Examples
///
/// ```
/// use megh_linalg::{DokMatrix, SparseVec};
///
/// let m = DokMatrix::scaled_identity(3, 0.5);
/// let v = SparseVec::basis(3, 1);
/// assert_eq!(m.mul_sparse_vec(&v).get(1), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct DokMatrix {
    order: usize,
    nnz: usize,
    /// Sorted `(col, value)` pairs, per row.
    rows: Vec<Vec<(usize, f64)>>,
    /// Sorted `(row, value)` pairs, per column; values mirror `rows`.
    cols: Vec<Vec<(usize, f64)>>,
}

impl DokMatrix {
    /// Creates an all-zero square matrix of the given order.
    pub fn zeros(order: usize) -> Self {
        Self {
            order,
            nnz: 0,
            // One-time construction of the empty adjacency skeleton.
            rows: vec![Vec::new(); order], // lint: allow(alloc)
            cols: vec![Vec::new(); order], // lint: allow(alloc)
        }
    }

    /// Creates `scale · I`, the paper's initialisation `B₀ = (1/δ) I`.
    pub fn scaled_identity(order: usize, scale: f64) -> Self {
        let mut m = Self::zeros(order);
        if scale != 0.0 {
            for i in 0..order {
                m.set(i, i, scale);
            }
        }
        m
    }

    /// The matrix order (number of rows = number of columns).
    pub fn order(&self) -> usize {
        self.order
    }

    /// The number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Returns the entry at `(row, col)`, 0.0 when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.order && col < self.order, "index out of range");
        // Contract: rows/cols are order-long adjacency tables.
        debug_assert!(row < self.rows.len());
        match self.rows[row].binary_search_by_key(&col, |&(c, _)| c) {
            // lint: allow(implicit_panic) -- binary_search returned Ok(pos), so pos indexes a stored entry
            Ok(pos) => self.rows[row][pos].1,
            Err(_) => 0.0,
        }
    }

    /// Sets the entry at `(row, col)`, removing it when `value == 0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.order && col < self.order, "index out of range");
        // Contract: rows/cols are order-long adjacency tables.
        debug_assert!(row < self.rows.len() && col < self.cols.len());
        let row_list = &mut self.rows[row];
        match row_list.binary_search_by_key(&col, |&(c, _)| c) {
            Ok(pos) => {
                // The mirror entry exists whenever the dual-adjacency
                // invariant holds; a missing mirror is repaired in place
                // (the `check-invariants` feature verifies the invariant
                // after every Sherman–Morrison update).
                let col_list = &mut self.cols[col];
                let mirror = col_list.binary_search_by_key(&row, |&(r, _)| r);
                if value == 0.0 {
                    row_list.remove(pos);
                    if let Ok(m) = mirror {
                        col_list.remove(m);
                    }
                    // lint: allow(implicit_panic) -- an entry was just removed from row_list, so nnz >= 1
                    self.nnz -= 1;
                } else {
                    // lint: allow(implicit_panic) -- binary_search returned Ok(pos), so pos indexes a stored entry
                    row_list[pos].1 = value;
                    match mirror {
                        // lint: allow(implicit_panic) -- mirror search returned Ok(m), so m indexes a stored entry
                        Ok(m) => col_list[m].1 = value,
                        Err(m) => col_list.insert(m, (row, value)),
                    }
                }
            }
            Err(pos) => {
                if value != 0.0 {
                    row_list.insert(pos, (col, value));
                    let col_list = &mut self.cols[col];
                    match col_list.binary_search_by_key(&row, |&(r, _)| r) {
                        Ok(m) => col_list[m].1 = value,
                        Err(m) => col_list.insert(m, (row, value)),
                    }
                    self.nnz += 1;
                }
            }
        }
    }

    /// Verifies the dual-adjacency invariant: `rows` and `cols` are each
    /// sorted and strictly increasing, mirror each other entry for entry,
    /// and together store exactly [`DokMatrix::nnz`] values.
    ///
    /// Intended for the `check-invariants` feature and tests; cost is
    /// `O(nnz · log nnz)`.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violation found.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        if self.rows.len() != self.order || self.cols.len() != self.order {
            return Err("adjacency list count does not match matrix order");
        }
        let mut row_entries = 0usize;
        for (r, row) in self.rows.iter().enumerate() {
            let mut prev: Option<usize> = None;
            for &(c, v) in row {
                if c >= self.order {
                    return Err("row entry column index out of range");
                }
                if prev.is_some_and(|p| p >= c) {
                    return Err("row adjacency list not strictly increasing");
                }
                prev = Some(c);
                if v == 0.0 {
                    return Err("explicit zero stored in row adjacency list");
                }
                debug_assert!(c < self.cols.len());
                match self.cols[c].binary_search_by_key(&r, |&(rr, _)| rr) {
                    Ok(m) if self.cols[c][m].1 == v => {}
                    Ok(_) => return Err("mirror entry disagrees on value"),
                    Err(_) => return Err("row entry missing from column mirror"),
                }
                row_entries += 1;
            }
        }
        let col_entries: usize = self.cols.iter().map(Vec::len).sum();
        for col in &self.cols {
            if col.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err("column adjacency list not strictly increasing");
            }
        }
        if row_entries != self.nnz || col_entries != self.nnz {
            return Err("stored entry count disagrees with nnz");
        }
        Ok(())
    }

    /// Adds `delta` to the entry at `(row, col)`.
    pub fn add_at(&mut self, row: usize, col: usize, delta: f64) {
        let v = self.get(row, col) + delta;
        self.set(row, col, v);
    }

    /// Iterates over all stored `((row, col), value)` triplets in
    /// row-major order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&(c, v)| ((r, c), v)))
    }

    /// Computes `M · v` for a sparse vector `v`.
    ///
    /// Cost is proportional to the number of stored entries in the columns
    /// selected by `v`'s non-zeros, not to the matrix order.
    ///
    /// # Examples
    ///
    /// ```
    /// use megh_linalg::{DokMatrix, SparseVec};
    ///
    /// let mut m = DokMatrix::zeros(3);
    /// m.set(0, 1, 2.0);
    /// m.set(2, 1, -1.0);
    /// // Column 1 is selected: the product is 2·e₀ − 1·e₂, scaled by v₁.
    /// let out = m.mul_sparse_vec(&SparseVec::from_pairs(3, [(1, 3.0)]));
    /// assert_eq!(out.to_dense(), vec![6.0, 0.0, -3.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.order()`.
    pub fn mul_sparse_vec(&self, v: &SparseVec) -> SparseVec {
        let mut out = SparseVec::zeros(self.order);
        self.mul_sparse_vec_into(v, &mut out);
        out
    }

    /// Computes `M · v` into a caller-provided output vector, reusing
    /// its storage (no allocation once `out`'s buffer has warmed up).
    ///
    /// # Examples
    ///
    /// ```
    /// use megh_linalg::{DokMatrix, SparseVec};
    ///
    /// let m = DokMatrix::scaled_identity(2, 4.0);
    /// let mut out = SparseVec::zeros(2);
    /// m.mul_sparse_vec_into(&SparseVec::basis(2, 0), &mut out);
    /// assert_eq!(out.get(0), 4.0);
    /// // `out` is cleared on entry, so the scratch can be reused freely.
    /// m.mul_sparse_vec_into(&SparseVec::basis(2, 1), &mut out);
    /// assert_eq!(out.to_dense(), vec![0.0, 4.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `v.dim()` or `out.dim()` differs from `self.order()`.
    pub fn mul_sparse_vec_into(&self, v: &SparseVec, out: &mut SparseVec) {
        assert_eq!(v.dim(), self.order, "dimension mismatch");
        assert_eq!(out.dim(), self.order, "output dimension mismatch");
        out.clear();
        for (col, value) in v.iter() {
            // Contract: SparseVec stores indices < dim = order (asserted
            // above), and cols is order-long.
            debug_assert!(col < self.cols.len());
            for &(row, w) in &self.cols[col] {
                out.add_at(row, value * w);
            }
        }
    }

    /// Computes `vᵀ · M` for a sparse vector `v` (returned as a vector).
    ///
    /// # Examples
    ///
    /// ```
    /// use megh_linalg::{DokMatrix, SparseVec};
    ///
    /// let mut m = DokMatrix::zeros(3);
    /// m.set(1, 0, 2.0);
    /// m.set(1, 2, 5.0);
    /// // Row 1 is selected: the left product reads a row, not a column.
    /// let out = m.mul_sparse_vec_left(&SparseVec::basis(3, 1));
    /// assert_eq!(out.to_dense(), vec![2.0, 0.0, 5.0]);
    /// assert!(m.mul_sparse_vec(&SparseVec::basis(3, 1)).is_zero());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.order()`.
    pub fn mul_sparse_vec_left(&self, v: &SparseVec) -> SparseVec {
        let mut out = SparseVec::zeros(self.order);
        self.mul_sparse_vec_left_into(v, &mut out);
        out
    }

    /// Computes `vᵀ · M` into a caller-provided output vector, reusing
    /// its storage.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim()` or `out.dim()` differs from `self.order()`.
    pub fn mul_sparse_vec_left_into(&self, v: &SparseVec, out: &mut SparseVec) {
        assert_eq!(v.dim(), self.order, "dimension mismatch");
        assert_eq!(out.dim(), self.order, "output dimension mismatch");
        out.clear();
        for (row, value) in v.iter() {
            // Contract: SparseVec stores indices < dim = order (asserted
            // above), and rows is order-long.
            debug_assert!(row < self.rows.len());
            for &(col, w) in &self.rows[row] {
                out.add_at(col, value * w);
            }
        }
    }

    /// Computes `M · v` for a dense vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.order()`.
    pub fn mul_dense_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.order, "dimension mismatch");
        // Dense materialisation is a diagnostic path, not the hot loop.
        let mut out = vec![0.0; self.order]; // lint: allow(alloc)
        for (row, list) in self.rows.iter().enumerate() {
            for &(col, value) in list {
                // lint: allow(implicit_panic) -- row enumerates the order-long rows table and out/v are order-long (asserted)
                out[row] += value * v[col];
            }
        }
        out
    }

    /// Adds the rank-1 outer product `scale · u vᵀ` in place.
    ///
    /// Cost is `O(nnz(u) · nnz(v))` list updates.
    ///
    /// # Examples
    ///
    /// ```
    /// use megh_linalg::{DokMatrix, SparseVec};
    ///
    /// let mut m = DokMatrix::zeros(2);
    /// m.add_outer_product(&SparseVec::basis(2, 0), &SparseVec::basis(2, 1), 3.0);
    /// assert_eq!(m.get(0, 1), 3.0);
    /// assert_eq!(m.nnz(), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `u` or `v` differ from the order.
    pub fn add_outer_product(&mut self, u: &SparseVec, v: &SparseVec, scale: f64) {
        assert_eq!(u.dim(), self.order, "dimension mismatch for u");
        assert_eq!(v.dim(), self.order, "dimension mismatch for v");
        for (i, uv) in u.iter() {
            for (j, vv) in v.iter() {
                self.add_at(i, j, scale * uv * vv);
            }
        }
    }
}

/// Serialized form: order plus `(row, col, value)` triplets — JSON (and
/// most formats) cannot key maps by tuples.
#[derive(Serialize, Deserialize)]
struct DokMatrixRepr {
    order: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl Serialize for DokMatrix {
    // Cold persistence path; the unknown-receiver fallback aliases the
    // inner `.serialize(serializer)` call to every workspace
    // `serialize` (including megh-serve's allocating wire impls), so
    // the subtree is vouched.
    // lint: allow(transitive_alloc)
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Row-major iteration is already sorted by (row, col).
        // Serialization is an explicit cold path. lint: allow(alloc)
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|((r, c), v)| (r, c, v)).collect();
        DokMatrixRepr {
            order: self.order,
            triplets,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for DokMatrix {
    // Cold path, same aliasing as `serialize` above.
    // lint: allow(transitive_alloc)
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = DokMatrixRepr::deserialize(deserializer)?;
        let mut m = DokMatrix::zeros(repr.order);
        for (r, c, v) in repr.triplets {
            if r >= repr.order || c >= repr.order {
                // lint: allow(alloc)
                return Err(serde::de::Error::custom(format!(
                    "triplet ({r}, {c}) outside order {}",
                    repr.order
                )));
            }
            m.set(r, c, v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_preserves_entries() {
        let mut m = DokMatrix::zeros(4);
        m.set(0, 3, 1.5);
        m.set(2, 1, -0.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: DokMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.order(), 4);
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.get(0, 3), 1.5);
        assert_eq!(back.get(2, 1), -0.5);
        // Rebuilt indexes must work for products.
        let v = SparseVec::basis(4, 3);
        assert_eq!(back.mul_sparse_vec(&v).get(0), 1.5);
    }

    #[test]
    fn serde_rejects_out_of_range_triplets() {
        let json = r#"{"order":2,"triplets":[[5,0,1.0]]}"#;
        assert!(serde_json::from_str::<DokMatrix>(json).is_err());
    }

    #[test]
    fn scaled_identity_layout() {
        let m = DokMatrix::scaled_identity(3, 0.25);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 0.25);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn zero_scale_identity_is_empty() {
        let m = DokMatrix::scaled_identity(3, 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn set_and_remove_updates_indexes() {
        let mut m = DokMatrix::zeros(4);
        m.set(1, 2, 5.0);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 2), 5.0);
        m.set(1, 2, 0.0);
        assert_eq!(m.nnz(), 0);
        // A sparse product must no longer see the removed entry.
        let v = SparseVec::basis(4, 2);
        assert!(m.mul_sparse_vec(&v).is_zero());
    }

    #[test]
    fn iter_is_row_major_sorted() {
        let mut m = DokMatrix::zeros(3);
        m.set(2, 0, 1.0);
        m.set(0, 2, 2.0);
        m.set(0, 1, 3.0);
        m.set(1, 1, 4.0);
        let keys: Vec<(usize, usize)> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(0, 1), (0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    fn mul_sparse_vec_matches_dense() {
        let mut m = DokMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(0, 2, 2.0);
        m.set(2, 1, -1.0);
        let v = SparseVec::from_pairs(3, [(0, 1.0), (1, 2.0), (2, 3.0)]);
        let got = m.mul_sparse_vec(&v).to_dense();
        let want = m.mul_dense_vec(&v.to_dense());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_into_reuses_scratch_and_matches_alloc_path() {
        let mut m = DokMatrix::zeros(4);
        m.set(0, 1, 2.0);
        m.set(1, 1, -1.0);
        m.set(3, 2, 4.0);
        let v = SparseVec::from_pairs(4, [(1, 1.5), (2, 0.5)]);
        let mut scratch = SparseVec::from_pairs(4, [(0, 9.0), (3, 9.0)]);
        m.mul_sparse_vec_into(&v, &mut scratch);
        assert_eq!(scratch, m.mul_sparse_vec(&v));
        m.mul_sparse_vec_left_into(&v, &mut scratch);
        assert_eq!(scratch, m.mul_sparse_vec_left(&v));
    }

    #[test]
    fn left_multiply_is_transpose_multiply() {
        let mut m = DokMatrix::zeros(3);
        m.set(0, 1, 2.0);
        m.set(2, 1, 3.0);
        let v = SparseVec::from_pairs(3, [(0, 1.0), (2, 1.0)]);
        let left = m.mul_sparse_vec_left(&v);
        // vᵀM has entry at column 1: 1·2 + 1·3 = 5.
        assert_eq!(left.get(1), 5.0);
        assert_eq!(left.nnz(), 1);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = DokMatrix::zeros(3);
        let u = SparseVec::basis(3, 0);
        let v = SparseVec::from_pairs(3, [(1, 2.0), (2, -1.0)]);
        m.add_outer_product(&u, &v, 0.5);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), -0.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn outer_product_cancellation_removes_entries() {
        let mut m = DokMatrix::zeros(2);
        let u = SparseVec::basis(2, 0);
        let v = SparseVec::basis(2, 1);
        m.add_outer_product(&u, &v, 1.0);
        m.add_outer_product(&u, &v, -1.0);
        assert_eq!(m.nnz(), 0);
    }
}
