//! Dictionary-of-keys sparse matrices with row/column adjacency.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::SparseVec;

/// A square sparse matrix stored as a dictionary of keys.
///
/// This is the data structure §5.2 of the paper describes: only non-zero
/// entries are stored (as `(row, column) → value` triplets), and per-row /
/// per-column occupancy indexes make the sparse-times-sparse products used
/// by the Sherman–Morrison update proportional to the number of non-zeros
/// actually touched rather than to the matrix order.
///
/// # Examples
///
/// ```
/// use megh_linalg::{DokMatrix, SparseVec};
///
/// let m = DokMatrix::scaled_identity(3, 0.5);
/// let v = SparseVec::basis(3, 1);
/// assert_eq!(m.mul_sparse_vec(&v).get(1), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct DokMatrix {
    order: usize,
    entries: HashMap<(usize, usize), f64>,
    /// Column indices with a stored entry, per row.
    rows: Vec<BTreeSet<usize>>,
    /// Row indices with a stored entry, per column.
    cols: Vec<BTreeSet<usize>>,
}

impl DokMatrix {
    /// Creates an all-zero square matrix of the given order.
    pub fn zeros(order: usize) -> Self {
        Self {
            order,
            entries: HashMap::new(),
            rows: vec![BTreeSet::new(); order],
            cols: vec![BTreeSet::new(); order],
        }
    }

    /// Creates `scale · I`, the paper's initialisation `B₀ = (1/δ) I`.
    pub fn scaled_identity(order: usize, scale: f64) -> Self {
        let mut m = Self::zeros(order);
        if scale != 0.0 {
            for i in 0..order {
                m.set(i, i, scale);
            }
        }
        m
    }

    /// The matrix order (number of rows = number of columns).
    pub fn order(&self) -> usize {
        self.order
    }

    /// The number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns the entry at `(row, col)`, 0.0 when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.order && col < self.order, "index out of range");
        self.entries.get(&(row, col)).copied().unwrap_or(0.0)
    }

    /// Sets the entry at `(row, col)`, removing it when `value == 0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.order && col < self.order, "index out of range");
        if value == 0.0 {
            if self.entries.remove(&(row, col)).is_some() {
                self.rows[row].remove(&col);
                self.cols[col].remove(&row);
            }
        } else {
            self.entries.insert((row, col), value);
            self.rows[row].insert(col);
            self.cols[col].insert(row);
        }
    }

    /// Adds `delta` to the entry at `(row, col)`.
    pub fn add_at(&mut self, row: usize, col: usize, delta: f64) {
        let v = self.get(row, col) + delta;
        self.set(row, col, v);
    }

    /// Iterates over all stored `((row, col), value)` triplets.
    ///
    /// Iteration order is unspecified.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Computes `M · v` for a sparse vector `v`.
    ///
    /// Cost is proportional to the number of stored entries in the columns
    /// selected by `v`'s non-zeros, not to the matrix order.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.order()`.
    pub fn mul_sparse_vec(&self, v: &SparseVec) -> SparseVec {
        assert_eq!(v.dim(), self.order, "dimension mismatch");
        let mut out = SparseVec::zeros(self.order);
        for (col, value) in v.iter() {
            for &row in &self.cols[col] {
                out.add_at(row, value * self.get(row, col));
            }
        }
        out
    }

    /// Computes `vᵀ · M` for a sparse vector `v` (returned as a vector).
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.order()`.
    pub fn mul_sparse_vec_left(&self, v: &SparseVec) -> SparseVec {
        assert_eq!(v.dim(), self.order, "dimension mismatch");
        let mut out = SparseVec::zeros(self.order);
        for (row, value) in v.iter() {
            for &col in &self.rows[row] {
                out.add_at(col, value * self.get(row, col));
            }
        }
        out
    }

    /// Computes `M · v` for a dense vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.order()`.
    pub fn mul_dense_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.order, "dimension mismatch");
        let mut out = vec![0.0; self.order];
        for (&(row, col), &value) in &self.entries {
            out[row] += value * v[col];
        }
        out
    }

    /// Adds the rank-1 outer product `scale · u vᵀ` in place.
    ///
    /// Cost is `O(nnz(u) · nnz(v))`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `u` or `v` differ from the order.
    pub fn add_outer_product(&mut self, u: &SparseVec, v: &SparseVec, scale: f64) {
        assert_eq!(u.dim(), self.order, "dimension mismatch for u");
        assert_eq!(v.dim(), self.order, "dimension mismatch for v");
        for (i, uv) in u.iter() {
            for (j, vv) in v.iter() {
                self.add_at(i, j, scale * uv * vv);
            }
        }
    }

    /// Materialises the matrix into a dense row-major buffer.
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.order, self.order);
        for (&(r, c), &v) in &self.entries {
            d.set(r, c, v);
        }
        d
    }
}

/// Serialized form: order plus `(row, col, value)` triplets — JSON (and
/// most formats) cannot key maps by tuples.
#[derive(Serialize, Deserialize)]
struct DokMatrixRepr {
    order: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl Serialize for DokMatrix {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut triplets: Vec<(usize, usize, f64)> =
            self.entries.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        DokMatrixRepr { order: self.order, triplets }.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for DokMatrix {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = DokMatrixRepr::deserialize(deserializer)?;
        let mut m = DokMatrix::zeros(repr.order);
        for (r, c, v) in repr.triplets {
            if r >= repr.order || c >= repr.order {
                return Err(serde::de::Error::custom(format!(
                    "triplet ({r}, {c}) outside order {}",
                    repr.order
                )));
            }
            m.set(r, c, v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_preserves_entries() {
        let mut m = DokMatrix::zeros(4);
        m.set(0, 3, 1.5);
        m.set(2, 1, -0.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: DokMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.order(), 4);
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.get(0, 3), 1.5);
        assert_eq!(back.get(2, 1), -0.5);
        // Rebuilt indexes must work for products.
        let v = SparseVec::basis(4, 3);
        assert_eq!(back.mul_sparse_vec(&v).get(0), 1.5);
    }

    #[test]
    fn serde_rejects_out_of_range_triplets() {
        let json = r#"{"order":2,"triplets":[[5,0,1.0]]}"#;
        assert!(serde_json::from_str::<DokMatrix>(json).is_err());
    }

    #[test]
    fn scaled_identity_layout() {
        let m = DokMatrix::scaled_identity(3, 0.25);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 0.25);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn zero_scale_identity_is_empty() {
        let m = DokMatrix::scaled_identity(3, 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn set_and_remove_updates_indexes() {
        let mut m = DokMatrix::zeros(4);
        m.set(1, 2, 5.0);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 2), 5.0);
        m.set(1, 2, 0.0);
        assert_eq!(m.nnz(), 0);
        // A sparse product must no longer see the removed entry.
        let v = SparseVec::basis(4, 2);
        assert!(m.mul_sparse_vec(&v).is_zero());
    }

    #[test]
    fn mul_sparse_vec_matches_dense() {
        let mut m = DokMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(0, 2, 2.0);
        m.set(2, 1, -1.0);
        let v = SparseVec::from_pairs(3, [(0, 1.0), (1, 2.0), (2, 3.0)]);
        let got = m.mul_sparse_vec(&v).to_dense();
        let want = m.mul_dense_vec(&v.to_dense());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn left_multiply_is_transpose_multiply() {
        let mut m = DokMatrix::zeros(3);
        m.set(0, 1, 2.0);
        m.set(2, 1, 3.0);
        let v = SparseVec::from_pairs(3, [(0, 1.0), (2, 1.0)]);
        let left = m.mul_sparse_vec_left(&v);
        // vᵀM has entry at column 1: 1·2 + 1·3 = 5.
        assert_eq!(left.get(1), 5.0);
        assert_eq!(left.nnz(), 1);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = DokMatrix::zeros(3);
        let u = SparseVec::basis(3, 0);
        let v = SparseVec::from_pairs(3, [(1, 2.0), (2, -1.0)]);
        m.add_outer_product(&u, &v, 0.5);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), -0.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn outer_product_cancellation_removes_entries() {
        let mut m = DokMatrix::zeros(2);
        let u = SparseVec::basis(2, 0);
        let v = SparseVec::basis(2, 1);
        m.add_outer_product(&u, &v, 1.0);
        m.add_outer_product(&u, &v, -1.0);
        assert_eq!(m.nnz(), 0);
    }
}
