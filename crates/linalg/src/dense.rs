//! Dense matrices with Gauss–Jordan inversion.
//!
//! These are the reference implementations: the paper (§5.2) contrasts the
//! `O(d³)` Gauss–Jordan inversion a naive LSPI implementation would need
//! against Megh's incremental Sherman–Morrison update. We keep the dense
//! path both for that comparison benchmark and to property-test the sparse
//! path against it.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use megh_linalg::DenseMatrix;
///
/// let i = DenseMatrix::identity(3);
/// let inv = i.inverse().unwrap();
/// assert_eq!(inv.get(1, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * v[j]).sum())
            .collect()
    }

    /// Inverts the matrix with Gauss–Jordan elimination and partial
    /// pivoting.
    ///
    /// This is the `O(n³)` routine the paper's Eq. (11) avoids at runtime.
    ///
    /// # Errors
    ///
    /// Returns `None` when the matrix is not square or is singular to
    /// working precision.
    pub fn inverse(&self) -> Option<DenseMatrix> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = DenseMatrix::identity(n);
        for col in 0..n {
            // Partial pivot: pick the largest magnitude entry in the column.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a.get(r1, col).abs().total_cmp(&a.get(r2, col).abs()))
                // `col..n` is non-empty for every col < n; `col` itself
                // keeps the fallback total (the singularity check below
                // rejects a zero pivot anyway).
                .unwrap_or(col);
            let pivot = a.get(pivot_row, col);
            if pivot.abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let (x, y) = (a.get(col, j), a.get(pivot_row, j));
                    a.set(col, j, y);
                    a.set(pivot_row, j, x);
                    let (x, y) = (inv.get(col, j), inv.get(pivot_row, j));
                    inv.set(col, j, y);
                    inv.set(pivot_row, j, x);
                }
            }
            let pivot = a.get(col, col);
            for j in 0..n {
                a.set(col, j, a.get(col, j) / pivot);
                inv.set(col, j, inv.get(col, j) / pivot);
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a.get(row, col);
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a.set(row, j, a.get(row, j) - factor * a.get(col, j));
                    inv.set(row, j, inv.get(row, j) - factor * inv.get(col, j));
                }
            }
        }
        Some(inv)
    }

    /// Maximum absolute entry-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverse_is_identity() {
        let i = DenseMatrix::identity(4);
        let inv = i.inverse().unwrap();
        assert!(i.max_abs_diff(&inv) < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = DenseMatrix::from_rows(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-9);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn non_square_has_no_inverse() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let inv = m.inverse().unwrap();
        // The permutation matrix is its own inverse.
        assert!(inv.max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let v = vec![2.0, 1.0, 0.5];
        let got = a.mul_vec(&v);
        assert_eq!(got, vec![3.0, 1.5]);
    }
}
