//! Cross-representation verification for the `check-invariants` mode.
//!
//! The Sherman–Morrison fast path maintains `B = T⁻¹` incrementally and
//! never materialises `T`. This helper quantifies how far a maintained
//! inverse has drifted from that contract: `‖B·T − I‖∞` is exactly zero
//! for a true inverse and grows with accumulated floating-point error,
//! so the runtime checks (and the property tests) assert it stays below
//! a small tolerance. The function is compiled unconditionally — only
//! the call sites inside the hot paths are feature-gated — so tests can
//! use the same predicate the runtime checks use.

use crate::{DenseMatrix, DokMatrix};

/// Dense materialisations live here, outside the hot-path modules: they
/// are diagnostic/verification APIs, never decision paths, and keeping
/// them out of the `deny_alloc` files keeps the no-alloc call-graph rule
/// vouch-free.
impl DokMatrix {
    /// Materialises the matrix into a dense row-major buffer.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.order(), self.order());
        for ((r, c), v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }
}

/// Largest absolute entry of `B·T − I` — the inverse-drift residual.
///
/// # Panics
///
/// Panics if the operands are not square matrices of the same order
/// (propagated from [`DenseMatrix::matmul`]).
///
/// # Examples
///
/// ```
/// use megh_linalg::{identity_residual, DenseMatrix};
///
/// let i = DenseMatrix::identity(3);
/// assert_eq!(identity_residual(&i, &i), 0.0);
/// ```
pub fn identity_residual(b: &DenseMatrix, t: &DenseMatrix) -> f64 {
    b.matmul(t).max_abs_diff(&DenseMatrix::identity(b.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_inverse_has_zero_residual() {
        let mut t = DenseMatrix::zeros(3, 3);
        let mut b = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            t.set(i, i, 4.0);
            b.set(i, i, 0.25);
        }
        assert!(identity_residual(&b, &t) < 1e-15);
    }

    #[test]
    fn wrong_inverse_is_flagged() {
        let t = DenseMatrix::identity(2);
        let mut b = DenseMatrix::identity(2);
        b.set(0, 0, 2.0);
        assert!(identity_residual(&b, &t) > 0.5);
    }
}
