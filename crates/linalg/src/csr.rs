//! Compressed-sparse-row snapshots of [`DokMatrix`] for read-heavy phases.
//!
//! The DOK representation is built for *updates*: every Sherman–Morrison
//! step inserts or removes entries, and per-row/per-column `Vec`s keep
//! those edits `O(log nnz)`. A long evaluation phase inverts the access
//! pattern — thousands of products against a matrix that never changes —
//! and there the DOK layout pays for its flexibility: each row and each
//! column is its own heap allocation, scattered across the heap, and the
//! generic accumulate path re-searches the output vector per entry.
//!
//! [`CsrMatrix`] freezes a [`DokMatrix`] into three contiguous arrays
//! (`row_ptr` / `col_idx` / `vals`) plus a transposed copy of the same
//! shape, so both product orientations walk a single flat slice:
//!
//! * `vᵀ·M` (the `Bᵀ·v` of Eq. 11) walks the row-major arrays,
//! * `M·v` (the `B·u`) walks the transposed, column-major arrays —
//!   exactly the role `DokMatrix`'s `cols` adjacency plays.
//!
//! Because Megh's `u`, `v` are basis-like (one or two non-zeros), the
//! kernels special-case small supports: a single selected row/column is
//! *copied* into the output in one pass — no per-entry binary search —
//! which is what lets a frozen evaluation phase run at memory bandwidth.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use crate::{DokMatrix, SparseVec};

/// Unroll width of the scaled-copy kernels: four f64 lanes is one AVX2
/// register (or two SSE2 ones), and the compiler keeps the block in
/// packed multiplies either way.
const LANES: usize = 4;

/// Scalar scaled copy of one CSR adjacency slice: the reference kernel
/// the unrolled path must match bit for bit (it also serves the
/// unrolled path's `len % LANES` remainder).
#[inline]
fn scaled_copy_scalar(idx: &[usize], weights: &[f64], value: f64, out: &mut SparseVec) {
    for (&i, &w) in idx.iter().zip(weights) {
        out.push_sorted(i, value * w);
    }
}

/// Four-lane unrolled scaled copy of one CSR adjacency slice.
///
/// Bitwise-equal to [`scaled_copy_scalar`] by construction: every lane
/// is one independent IEEE-754 multiply (`value * w`), so unrolling
/// reorders instructions, never operands — there is no cross-lane
/// accumulation to re-associate. The four multiplies in the block are
/// data-independent, which is what lets LLVM emit packed `mulpd` over
/// the contiguous `vals`/`vals_t` slice; the trailing `len % 4` entries
/// replay the scalar kernel verbatim.
#[inline]
fn scaled_copy_unrolled(idx: &[usize], weights: &[f64], value: f64, out: &mut SparseVec) {
    debug_assert_eq!(idx.len(), weights.len());
    let mut idx4 = idx.chunks_exact(LANES);
    let mut w4 = weights.chunks_exact(LANES);
    for (i, w) in (&mut idx4).zip(&mut w4) {
        // lint: allow(implicit_panic) -- chunks_exact(LANES) yields exactly LANES-long slices, zipped 1:1
        let p = [value * w[0], value * w[1], value * w[2], value * w[3]];
        // lint: allow(implicit_panic) -- i has exactly LANES elements (chunks_exact), p is a LANES-long array
        out.push_sorted(i[0], p[0]);
        // lint: allow(implicit_panic) -- i has exactly LANES elements (chunks_exact), p is a LANES-long array
        out.push_sorted(i[1], p[1]);
        // lint: allow(implicit_panic) -- i has exactly LANES elements (chunks_exact), p is a LANES-long array
        out.push_sorted(i[2], p[2]);
        // lint: allow(implicit_panic) -- i has exactly LANES elements (chunks_exact), p is a LANES-long array
        out.push_sorted(i[3], p[3]);
    }
    scaled_copy_scalar(idx4.remainder(), w4.remainder(), value, out);
}

/// The backend-agnostic sparse matrix–vector product interface.
///
/// Both [`DokMatrix`] (mutable, update-optimised) and [`CsrMatrix`]
/// (frozen, read-optimised) implement it, so consumers like
/// `SparseLspi` can switch representation per phase without touching
/// the call sites.
pub trait SparseMatVec {
    /// The matrix order (number of rows = number of columns).
    fn order(&self) -> usize;

    /// The number of stored non-zero entries.
    fn nnz(&self) -> usize;

    /// Computes `M · v` into a caller-provided output vector, reusing
    /// its storage.
    fn mul_sparse_vec_into(&self, v: &SparseVec, out: &mut SparseVec);

    /// Computes `vᵀ · M` into a caller-provided output vector, reusing
    /// its storage.
    fn mul_sparse_vec_left_into(&self, v: &SparseVec, out: &mut SparseVec);
}

impl SparseMatVec for DokMatrix {
    fn order(&self) -> usize {
        DokMatrix::order(self)
    }

    fn nnz(&self) -> usize {
        DokMatrix::nnz(self)
    }

    fn mul_sparse_vec_into(&self, v: &SparseVec, out: &mut SparseVec) {
        DokMatrix::mul_sparse_vec_into(self, v, out);
    }

    fn mul_sparse_vec_left_into(&self, v: &SparseVec, out: &mut SparseVec) {
        DokMatrix::mul_sparse_vec_left_into(self, v, out);
    }
}

/// A frozen compressed-sparse-row snapshot of a square sparse matrix.
///
/// Immutable by construction: there is no `set`. Build one with
/// [`DokMatrix::to_csr`] when entering a read-heavy phase and drop it
/// when updates resume.
///
/// # Examples
///
/// ```
/// use megh_linalg::{DokMatrix, SparseMatVec, SparseVec};
///
/// let mut dok = DokMatrix::zeros(3);
/// dok.set(0, 1, 2.0);
/// dok.set(2, 1, 3.0);
/// let csr = dok.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// let v = SparseVec::basis(3, 1);
/// // Products agree with the DOK backend exactly.
/// assert_eq!(csr.mul_sparse_vec(&v), dok.mul_sparse_vec(&v));
/// assert_eq!(csr.mul_sparse_vec_left(&v), dok.mul_sparse_vec_left(&v));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    order: usize,
    /// Row-major layout: entries of row `r` live at
    /// `row_ptr[r]..row_ptr[r+1]` in `col_idx` / `vals`, sorted by column.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
    /// Transposed (column-major) copy: entries of column `c` live at
    /// `col_ptr[c]..col_ptr[c+1]` in `row_idx` / `vals_t`, sorted by row.
    /// This is what the right product `M·v` walks, mirroring the DOK
    /// `cols` adjacency.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals_t: Vec<f64>,
}

impl SparseMatVec for CsrMatrix {
    fn order(&self) -> usize {
        CsrMatrix::order(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn mul_sparse_vec_into(&self, v: &SparseVec, out: &mut SparseVec) {
        CsrMatrix::mul_sparse_vec_into(self, v, out);
    }

    fn mul_sparse_vec_left_into(&self, v: &SparseVec, out: &mut SparseVec) {
        CsrMatrix::mul_sparse_vec_left_into(self, v, out);
    }
}

impl DokMatrix {
    /// Freezes this matrix into a contiguous CSR snapshot.
    ///
    /// One-time `O(order + nnz)` cost; the snapshot does not track later
    /// DOK edits.
    ///
    /// # Examples
    ///
    /// ```
    /// use megh_linalg::DokMatrix;
    ///
    /// let m = DokMatrix::scaled_identity(4, 0.5);
    /// let csr = m.to_csr();
    /// assert_eq!(csr.order(), 4);
    /// assert_eq!(csr.get(2, 2), 0.5);
    /// assert_eq!(csr.get(2, 3), 0.0);
    /// ```
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_dok(self)
    }
}

impl CsrMatrix {
    /// Builds a CSR snapshot from a [`DokMatrix`].
    ///
    /// Equivalent to [`DokMatrix::to_csr`].
    pub fn from_dok(dok: &DokMatrix) -> Self {
        let order = DokMatrix::order(dok);
        let nnz = DokMatrix::nnz(dok);
        // Snapshot construction is the one-time cold path; the product
        // kernels below never allocate.
        let mut row_ptr: Vec<usize> = Vec::with_capacity(order + 1); // lint: allow(alloc)
        let mut col_idx: Vec<usize> = Vec::with_capacity(nnz); // lint: allow(alloc)
        let mut vals = Vec::with_capacity(nnz); // lint: allow(alloc)
        let mut col_counts = vec![0usize; order + 1]; // lint: allow(alloc)
        row_ptr.push(0);
        let mut current_row = 0usize;
        // `DokMatrix::iter` is row-major with columns sorted within each
        // row — exactly CSR entry order.
        for ((r, c), v) in dok.iter() {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            col_idx.push(c);
            vals.push(v);
            // lint: allow(implicit_panic) -- DOK stores only in-range columns: c < order and col_counts is order+1 long
            col_counts[c + 1] += 1;
        }
        while row_ptr.len() < order + 1 {
            row_ptr.push(col_idx.len());
        }

        // Counting-sort the same triplets into the transposed layout.
        // Row-major input order means rows arrive sorted within each
        // column, matching the DOK `cols` adjacency exactly.
        let mut col_ptr = col_counts; // prefix-summed in place
        for c in 1..col_ptr.len() {
            col_ptr[c] += col_ptr[c - 1];
        }
        let mut cursor = col_ptr.clone(); // lint: allow(alloc)
        let mut row_idx = vec![0usize; nnz]; // lint: allow(alloc)
        let mut vals_t = vec![0.0f64; nnz]; // lint: allow(alloc)
                                            // Every row's entry range sits inside the entry arrays: the
                                            // prefix sums in `row_ptr` top out at `col_idx.len()`, and
                                            // `vals` was pushed in lockstep with `col_idx`.
        debug_assert_eq!(vals.len(), col_idx.len());
        for r in 0..order {
            debug_assert!(r + 1 < row_ptr.len());
            let start = row_ptr[r];
            let stop = row_ptr[r + 1];
            debug_assert!(start <= stop && stop <= col_idx.len());
            for k in start..stop {
                let c = col_idx[k];
                // lint: allow(implicit_panic) -- counting-sort cursor: c < order (DOK invariant) and cursor is order+1 long
                let slot = cursor[c];
                // lint: allow(implicit_panic) -- counting sort: column c's cursor advances once per stored entry, so slot < nnz
                row_idx[slot] = r;
                // lint: allow(implicit_panic) -- counting sort: column c's cursor advances once per stored entry, so slot < nnz
                vals_t[slot] = vals[k];
                // lint: allow(implicit_panic) -- counting-sort cursor: c < order (DOK invariant) and cursor is order+1 long
                cursor[c] += 1;
            }
        }
        Self {
            order,
            row_ptr,
            col_idx,
            vals,
            col_ptr,
            row_idx,
            vals_t,
        }
    }

    /// The matrix order (number of rows = number of columns).
    pub fn order(&self) -> usize {
        self.order
    }

    /// The number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Returns the entry at `(row, col)`, 0.0 when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.order && col < self.order, "index out of range");
        // Structural invariant (checked by `check_matches_dok`): the
        // pointer array is order+1 long, so row+1 is in range.
        debug_assert!(row + 1 < self.row_ptr.len());
        // lint: allow(implicit_panic) -- row_ptr is a monotone prefix array topping out at nnz = col_idx.len()
        let cols = &self.col_idx[self.row_ptr[row]..self.row_ptr[row + 1]];
        match cols.binary_search(&col) {
            // lint: allow(implicit_panic) -- pos indexes inside `cols`, whose entries sit below nnz = vals.len()
            Ok(pos) => self.vals[self.row_ptr[row] + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored `((row, col), value)` triplets in
    /// row-major order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        (0..self.order).flat_map(move |r| {
            // lint: allow(implicit_panic) -- r < order and row_ptr is order+1 long (structural invariant)
            (self.row_ptr[r]..self.row_ptr[r + 1])
                // lint: allow(implicit_panic) -- k ranges over row r's entries, all below nnz = col_idx.len() = vals.len()
                .map(move |k| ((r, self.col_idx[k]), self.vals[k]))
        })
    }

    /// Computes `M · v` for a sparse vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.order()`.
    pub fn mul_sparse_vec(&self, v: &SparseVec) -> SparseVec {
        let mut out = SparseVec::zeros(self.order);
        self.mul_sparse_vec_into(v, &mut out);
        out
    }

    /// Computes `M · v` into a caller-provided output vector, reusing
    /// its storage (no allocation once `out`'s buffer has warmed up).
    ///
    /// Walks the transposed (column-major) arrays; a single-non-zero
    /// `v` — Megh's `φ_a` basis vectors — is served by one contiguous
    /// scaled copy of the selected column.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim()` or `out.dim()` differs from `self.order()`.
    // Depth 4: the unrolled fast path adds one frame (its remainder
    // replays the scalar kernel) on top of the push/add leaf calls.
    // lint: depth_budget(4)
    pub fn mul_sparse_vec_into(&self, v: &SparseVec, out: &mut SparseVec) {
        assert_eq!(v.dim(), self.order, "dimension mismatch");
        assert_eq!(out.dim(), self.order, "output dimension mismatch");
        out.clear();
        if v.nnz() == 1 {
            // Fast path: out = value · column(col), already sorted by
            // row, copied through the 4-lane unrolled kernel.
            let (col, value) = v.iter().next().unwrap_or((0, 0.0));
            // SparseVec invariant: stored indices are < dim = order,
            // and the pointer array is order+1 long.
            debug_assert!(col + 1 < self.col_ptr.len());
            let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
            scaled_copy_unrolled(&self.row_idx[lo..hi], &self.vals_t[lo..hi], value, out);
            return;
        }
        for (col, value) in v.iter() {
            debug_assert!(col + 1 < self.col_ptr.len());
            let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
            // lint: allow(implicit_panic) -- col_ptr is a monotone prefix array topping out at nnz = row_idx.len()
            for (&row, &w) in self.row_idx[lo..hi].iter().zip(&self.vals_t[lo..hi]) {
                out.add_at(row, value * w);
            }
        }
    }

    /// Computes `vᵀ · M` for a sparse vector `v` (returned as a vector).
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.order()`.
    pub fn mul_sparse_vec_left(&self, v: &SparseVec) -> SparseVec {
        let mut out = SparseVec::zeros(self.order);
        self.mul_sparse_vec_left_into(v, &mut out);
        out
    }

    /// Computes `vᵀ · M` into a caller-provided output vector, reusing
    /// its storage.
    ///
    /// Walks the row-major arrays; a single-non-zero `v` is served by
    /// one contiguous scaled copy of the selected row.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim()` or `out.dim()` differs from `self.order()`.
    pub fn mul_sparse_vec_left_into(&self, v: &SparseVec, out: &mut SparseVec) {
        assert_eq!(v.dim(), self.order, "dimension mismatch");
        assert_eq!(out.dim(), self.order, "output dimension mismatch");
        out.clear();
        if v.nnz() == 1 {
            // Fast path: out = value · row(row), already sorted by
            // column, copied through the 4-lane unrolled kernel.
            let (row, value) = v.iter().next().unwrap_or((0, 0.0));
            // SparseVec invariant: stored indices are < dim = order,
            // and the pointer array is order+1 long.
            debug_assert!(row + 1 < self.row_ptr.len());
            let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
            scaled_copy_unrolled(&self.col_idx[lo..hi], &self.vals[lo..hi], value, out);
            return;
        }
        for (row, value) in v.iter() {
            debug_assert!(row + 1 < self.row_ptr.len());
            let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
            // lint: allow(implicit_panic) -- row_ptr is a monotone prefix array topping out at nnz = col_idx.len()
            for (&col, &w) in self.col_idx[lo..hi].iter().zip(&self.vals[lo..hi]) {
                out.add_at(col, value * w);
            }
        }
    }

    /// Verifies the snapshot's structural invariants and that it stores
    /// exactly the same entries as `dok`.
    ///
    /// Intended for the `check-invariants` feature (asserted after every
    /// `SparseLspi::freeze`) and tests; cost is `O(nnz · log nnz)`.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first discrepancy found.
    pub fn check_matches_dok(&self, dok: &DokMatrix) -> Result<(), &'static str> {
        if self.order != DokMatrix::order(dok) {
            return Err("CSR order disagrees with DOK order");
        }
        if self.nnz() != DokMatrix::nnz(dok) {
            return Err("CSR nnz disagrees with DOK nnz");
        }
        if self.row_ptr.len() != self.order + 1 || self.col_ptr.len() != self.order + 1 {
            return Err("CSR pointer array has wrong length");
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1])
            || self.col_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err("CSR pointer array not monotone");
        }
        // Row-major arrays mirror the DOK triplets bit for bit.
        let mut csr_iter = self.iter();
        for ((r, c), v) in dok.iter() {
            match csr_iter.next() {
                Some(((cr, cc), cv)) if (cr, cc) == (r, c) && cv == v => {}
                _ => return Err("CSR row-major entries diverge from DOK"),
            }
        }
        // Transposed arrays mirror the row-major ones.
        debug_assert_eq!(self.vals_t.len(), self.row_idx.len());
        for c in 0..self.order {
            debug_assert!(c + 1 < self.col_ptr.len());
            let start = self.col_ptr[c];
            let stop = self.col_ptr[c + 1];
            debug_assert!(start <= stop && stop <= self.row_idx.len());
            for k in start..stop {
                if k + 1 < stop && self.row_idx[k] >= self.row_idx[k + 1] {
                    return Err("CSR transposed rows not strictly increasing");
                }
                if self.get(self.row_idx[k], c) != self.vals_t[k] {
                    return Err("CSR transposed entry diverges from row-major");
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dok() -> DokMatrix {
        let mut m = DokMatrix::zeros(5);
        m.set(0, 0, 1.0);
        m.set(0, 3, -2.0);
        m.set(1, 1, 0.5);
        m.set(3, 0, 4.0);
        m.set(3, 4, 0.25);
        m.set(4, 3, -1.5);
        m
    }

    #[test]
    fn snapshot_preserves_entries_and_structure() {
        let dok = sample_dok();
        let csr = dok.to_csr();
        assert_eq!(csr.order(), 5);
        assert_eq!(csr.nnz(), dok.nnz());
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(csr.get(r, c), dok.get(r, c), "entry ({r}, {c})");
            }
        }
        csr.check_matches_dok(&dok).unwrap();
    }

    #[test]
    fn empty_and_identity_snapshots() {
        let empty = DokMatrix::zeros(3).to_csr();
        assert_eq!(empty.nnz(), 0);
        assert!(empty.mul_sparse_vec(&SparseVec::basis(3, 1)).is_zero());
        let id = DokMatrix::scaled_identity(4, 2.0).to_csr();
        let v = SparseVec::from_pairs(4, [(0, 1.0), (3, -1.0)]);
        assert_eq!(id.mul_sparse_vec(&v).get(0), 2.0);
        assert_eq!(id.mul_sparse_vec(&v).get(3), -2.0);
        id.check_matches_dok(&DokMatrix::scaled_identity(4, 2.0))
            .unwrap();
    }

    #[test]
    fn products_match_dok_bitwise_on_basis_vectors() {
        let dok = sample_dok();
        let csr = dok.to_csr();
        for i in 0..5 {
            let e = SparseVec::basis(5, i);
            assert_eq!(csr.mul_sparse_vec(&e), dok.mul_sparse_vec(&e));
            assert_eq!(csr.mul_sparse_vec_left(&e), dok.mul_sparse_vec_left(&e));
        }
    }

    #[test]
    fn products_match_dok_on_multi_entry_vectors() {
        let dok = sample_dok();
        let csr = dok.to_csr();
        let v = SparseVec::from_pairs(5, [(0, 1.0), (3, -0.5), (4, 2.0)]);
        assert_eq!(csr.mul_sparse_vec(&v), dok.mul_sparse_vec(&v));
        assert_eq!(csr.mul_sparse_vec_left(&v), dok.mul_sparse_vec_left(&v));
    }

    #[test]
    fn into_variants_reuse_scratch() {
        let csr = sample_dok().to_csr();
        let v = SparseVec::from_pairs(5, [(0, 2.0), (1, 1.0)]);
        let mut scratch = SparseVec::from_pairs(5, [(2, 9.0)]);
        csr.mul_sparse_vec_into(&v, &mut scratch);
        assert_eq!(scratch, csr.mul_sparse_vec(&v));
        csr.mul_sparse_vec_left_into(&v, &mut scratch);
        assert_eq!(scratch, csr.mul_sparse_vec_left(&v));
    }

    #[test]
    fn trait_object_dispatch_is_backend_agnostic() {
        let dok = sample_dok();
        let csr = dok.to_csr();
        let v = SparseVec::basis(5, 3);
        let mut a = SparseVec::zeros(5);
        let mut b = SparseVec::zeros(5);
        let backends: [&dyn SparseMatVec; 2] = [&dok, &csr];
        backends[0].mul_sparse_vec_into(&v, &mut a);
        backends[1].mul_sparse_vec_into(&v, &mut b);
        assert_eq!(a, b);
        assert_eq!(backends[0].nnz(), backends[1].nnz());
        assert_eq!(backends[0].order(), backends[1].order());
    }

    #[test]
    fn unrolled_kernel_matches_scalar_for_all_remainders() {
        // Slice lengths 0..=9 cover every `len % 4` remainder on both
        // sides of the unroll boundary.
        for len in 0..10usize {
            let idx: Vec<usize> = (0..len).map(|i| i * 3).collect();
            let weights: Vec<f64> = (0..len)
                .map(|i| 0.37 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect();
            let mut scalar = SparseVec::zeros(32);
            let mut unrolled = SparseVec::zeros(32);
            scaled_copy_scalar(&idx, &weights, 1.7, &mut scalar);
            scaled_copy_unrolled(&idx, &weights, 1.7, &mut unrolled);
            assert_eq!(scalar, unrolled, "len {len}");
        }
    }

    #[test]
    fn check_matches_dok_detects_divergence() {
        let mut dok = sample_dok();
        let csr = dok.to_csr();
        dok.set(2, 2, 7.0); // edit after the snapshot
        assert!(csr.check_matches_dok(&dok).is_err());
    }

    #[test]
    fn iter_is_row_major_sorted() {
        let csr = sample_dok().to_csr();
        let keys: Vec<(usize, usize)> = csr.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
