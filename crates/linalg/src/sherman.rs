//! Sherman–Morrison rank-1 inverse updates on sparse matrices.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use std::fmt;

use crate::{DokMatrix, SparseVec};

/// Error returned when a Sherman–Morrison update cannot be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum ShermanMorrisonError {
    /// The update denominator `1 + vᵀ B u` is (numerically) zero, meaning
    /// the updated matrix `T + u vᵀ` is singular.
    SingularUpdate,
    /// Vector dimensions do not match the matrix order.
    DimensionMismatch {
        /// Matrix order.
        order: usize,
        /// Offending vector dimension.
        dim: usize,
    },
}

impl fmt::Display for ShermanMorrisonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularUpdate => write!(f, "rank-1 update makes the matrix singular"),
            Self::DimensionMismatch { order, dim } => {
                write!(
                    f,
                    "vector dimension {dim} does not match matrix order {order}"
                )
            }
        }
    }
}

impl std::error::Error for ShermanMorrisonError {}

/// Applies the Sherman–Morrison update `B ← B − (B u vᵀ B) / (1 + vᵀ B u)`
/// in place, so that `B` stays the inverse of `T + u vᵀ`.
///
/// This is Eq. (11) of the paper: with `u = φ_{a_t}` and
/// `v = φ_{a_t} − γ φ_{π_t(s_{t+1})}`, the transition-operator update of
/// Eq. (10) is mirrored on the inverse without an `O(d³)` re-inversion.
/// Because `u` and `v` carry only one or two non-zeros, the products below
/// touch only the occupied rows/columns of `B` — `O(#migrations)` work per
/// step instead of `O(d²)`.
///
/// # Errors
///
/// Returns an error when a vector dimension does not match the matrix
/// order, or when the denominator `1 + vᵀ B u` vanishes (the update would
/// make `T` singular).
///
/// # Examples
///
/// ```
/// use megh_linalg::{sherman_morrison_update, DokMatrix, SparseVec};
///
/// let mut b = DokMatrix::scaled_identity(3, 1.0); // B = I = I⁻¹
/// let u = SparseVec::basis(3, 0);
/// let v = SparseVec::basis(3, 0);
/// sherman_morrison_update(&mut b, &u, &v)?;
/// // T became I + e₀e₀ᵀ, so B(0,0) must now be 1/2.
/// assert!((b.get(0, 0) - 0.5).abs() < 1e-12);
/// # Ok::<(), megh_linalg::ShermanMorrisonError>(())
/// ```
// lint: depth_budget(7)
pub fn sherman_morrison_update(
    b: &mut DokMatrix,
    u: &SparseVec,
    v: &SparseVec,
) -> Result<(), ShermanMorrisonError> {
    let order = b.order();
    if u.dim() != order {
        return Err(ShermanMorrisonError::DimensionMismatch {
            order,
            dim: u.dim(),
        });
    }
    if v.dim() != order {
        return Err(ShermanMorrisonError::DimensionMismatch {
            order,
            dim: v.dim(),
        });
    }
    let bu = b.mul_sparse_vec(u); // B u  — column vector
    let vb = b.mul_sparse_vec_left(v); // vᵀ B — row vector
    let denom = 1.0 + v.dot(&bu);
    if denom.abs() < 1e-12 {
        return Err(ShermanMorrisonError::SingularUpdate);
    }
    b.add_outer_product(&bu, &vb, -1.0 / denom);
    // With `check-invariants`, re-validate the DOK dual-adjacency
    // structure after every rank-1 write: the outer-product path
    // exercises insertion, in-place mutation, and zero-cancelling
    // removal, all of which must keep the row/column lists mirrored.
    #[cfg(feature = "check-invariants")]
    {
        let structure = b.check_consistency();
        assert!(
            structure.is_ok(),
            "DokMatrix invariant violated after Sherman–Morrison update: {structure:?}"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMatrix;

    /// Reference: invert `T + u vᵀ` densely and compare.
    fn check_against_dense(b: &DokMatrix, t: &DenseMatrix, u: &SparseVec, v: &SparseVec) {
        let mut t2 = t.clone();
        for (i, uv) in u.iter() {
            for (j, vv) in v.iter() {
                t2.set(i, j, t2.get(i, j) + uv * vv);
            }
        }
        let want = t2.inverse().expect("updated matrix should stay invertible");
        let got = b.to_dense();
        assert!(
            got.max_abs_diff(&want) < 1e-8,
            "sparse SM update diverged from dense inverse: diff={}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn single_basis_update_matches_dense_inverse() {
        let d = 5;
        let delta = d as f64;
        let mut b = DokMatrix::scaled_identity(d, 1.0 / delta);
        let t = {
            let mut t = DenseMatrix::zeros(d, d);
            for i in 0..d {
                t.set(i, i, delta);
            }
            t
        };
        let u = SparseVec::basis(d, 2);
        let v = SparseVec::basis(d, 2);
        sherman_morrison_update(&mut b, &u, &v).unwrap();
        check_against_dense(&b, &t, &u, &v);
    }

    #[test]
    fn megh_style_update_with_discounted_next_action() {
        // v = φ_a − γ φ_{a'}, exactly the paper's Eq. (10) increment.
        let d = 6;
        let gamma = 0.5;
        let mut b = DokMatrix::scaled_identity(d, 1.0 / d as f64);
        let mut t = DenseMatrix::zeros(d, d);
        for i in 0..d {
            t.set(i, i, d as f64);
        }
        let u = SparseVec::basis(d, 1);
        let v = SparseVec::basis(d, 1).add_scaled(&SparseVec::basis(d, 4), -gamma);
        sherman_morrison_update(&mut b, &u, &v).unwrap();
        check_against_dense(&b, &t, &u, &v);
    }

    #[test]
    fn chained_updates_stay_consistent() {
        let d = 4;
        let gamma = 0.5;
        let mut b = DokMatrix::scaled_identity(d, 1.0 / d as f64);
        let mut t = DenseMatrix::zeros(d, d);
        for i in 0..d {
            t.set(i, i, d as f64);
        }
        let steps = [(0usize, 1usize), (1, 2), (2, 3), (3, 0), (0, 2)];
        for &(a, a_next) in &steps {
            let u = SparseVec::basis(d, a);
            let v = SparseVec::basis(d, a).add_scaled(&SparseVec::basis(d, a_next), -gamma);
            sherman_morrison_update(&mut b, &u, &v).unwrap();
            for (i, uv) in u.iter() {
                for (j, vv) in v.iter() {
                    t.set(i, j, t.get(i, j) + uv * vv);
                }
            }
            let want = t.inverse().unwrap();
            assert!(b.to_dense().max_abs_diff(&want) < 1e-8);
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut b = DokMatrix::scaled_identity(3, 1.0);
        let u = SparseVec::basis(4, 0);
        let v = SparseVec::basis(3, 0);
        let err = sherman_morrison_update(&mut b, &u, &v).unwrap_err();
        assert_eq!(
            err,
            ShermanMorrisonError::DimensionMismatch { order: 3, dim: 4 }
        );
    }

    #[test]
    fn singular_update_is_rejected() {
        // B = I, u = e0, v = -e0 → denom = 1 + (-1) = 0.
        let mut b = DokMatrix::scaled_identity(2, 1.0);
        let u = SparseVec::basis(2, 0);
        let mut v = SparseVec::zeros(2);
        v.set(0, -1.0);
        let err = sherman_morrison_update(&mut b, &u, &v).unwrap_err();
        assert_eq!(err, ShermanMorrisonError::SingularUpdate);
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = ShermanMorrisonError::SingularUpdate;
        assert!(!e.to_string().is_empty());
        let e = ShermanMorrisonError::DimensionMismatch { order: 3, dim: 4 };
        assert!(e.to_string().contains('3'));
    }
}
