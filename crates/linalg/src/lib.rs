//! Sparse and dense linear algebra primitives for the Megh reproduction.
//!
//! Megh (Basu et al., ICDCS 2017) keeps its per-step cost proportional to
//! the number of migrations by (a) representing every action as a basis
//! vector with a single non-zero entry, (b) storing the inverse transition
//! operator `B = T⁻¹` as a sparse matrix, and (c) updating that inverse
//! incrementally with the Sherman–Morrison formula instead of re-inverting.
//! This crate provides exactly those primitives, plus the dense reference
//! implementations used to validate them and the small numeric utilities
//! (piecewise-linear interpolation, summary statistics, Loess regression)
//! shared by the simulator and the baseline schedulers.
//!
//! # Examples
//!
//! ```
//! use megh_linalg::{DokMatrix, SparseVec, sherman_morrison_update};
//!
//! // B = (1/d) I, the paper's initialisation of the inverse operator.
//! let d = 4;
//! let mut b = DokMatrix::scaled_identity(d, 1.0 / d as f64);
//! let u = SparseVec::basis(d, 1);
//! let v = SparseVec::basis(d, 1); // rank-1 update along a single action
//! sherman_morrison_update(&mut b, &u, &v).unwrap();
//! assert!(b.get(1, 1) < 0.25);
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

mod csr;
mod dense;
mod dok;
mod interp;
mod loess;
mod sherman;
mod sparse_vec;
mod stats;
mod verify;

pub use csr::{CsrMatrix, SparseMatVec};
pub use dense::DenseMatrix;
pub use dok::DokMatrix;
pub use interp::PiecewiseLinear;
pub use loess::{loess_fit, loess_predict_next, LoessError};
pub use sherman::{sherman_morrison_update, ShermanMorrisonError};
pub use sparse_vec::SparseVec;
pub use stats::{iqr, mad, mean, median, quantile, std_dev, variance};
pub use verify::identity_residual;

/// Absolute tolerance used by the crate's approximate float comparisons.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floats are within [`EPSILON`] of each other.
///
/// # Examples
///
/// ```
/// assert!(megh_linalg::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!megh_linalg::approx_eq(1.0, 1.1));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < EPSILON
}
