//! Summary statistics shared by the trace generators and the adaptive
//! MMT overload detectors (IQR-MMT and MAD-MMT).

/// Arithmetic mean of a slice; 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(megh_linalg::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice; 0.0 for fewer than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of a slice.
///
/// Uses the common `(n − 1) · q` positioning (R type-7). Returns 0.0 for
/// an empty slice. Values are ranked under the IEEE 754 total order, so
/// NaN inputs sort to the top quantiles instead of aborting the run.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = (sorted.len() - 1) as f64 * q;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of a slice (0.0 when empty).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Interquartile range `Q3 − Q1` of a slice.
///
/// IQR-MMT sets its adaptive overload threshold to `1 − s · IQR(history)`
/// (Beloglazov & Buyya 2012).
pub fn iqr(values: &[f64]) -> f64 {
    quantile(values, 0.75) - quantile(values, 0.25)
}

/// Median absolute deviation of a slice.
///
/// MAD-MMT sets its adaptive overload threshold to `1 − s · MAD(history)`.
pub fn mad(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(iqr(&[]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.0), 0.0);
    }

    #[test]
    fn iqr_of_uniform_sequence() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert!((iqr(&xs) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mad_is_robust_to_outlier() {
        let xs = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(mad(&xs), 1.0);
        // Adding a huge outlier barely moves the MAD.
        let with_outlier = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0, 1e6];
        assert!(mad(&with_outlier) < 3.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rejects_bad_q() {
        quantile(&[1.0], 1.5);
    }
}
