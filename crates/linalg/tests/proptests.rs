//! Property-based tests: the sparse fast paths must agree with the dense
//! reference implementations on arbitrary inputs.

use megh_linalg::{
    identity_residual, iqr, loess_predict_next, mad, mean, median, quantile,
    sherman_morrison_update, std_dev, DenseMatrix, DokMatrix, PiecewiseLinear, SparseVec,
};
use proptest::prelude::*;

fn dok_strategy(dim: usize, max_entries: usize) -> impl Strategy<Value = DokMatrix> {
    prop::collection::vec(((0..dim, 0..dim), -4.0..4.0f64), 0..max_entries).prop_map(
        move |entries| {
            let mut m = DokMatrix::zeros(dim);
            for ((r, c), val) in entries {
                m.set(r, c, val);
            }
            m
        },
    )
}

fn sparse_vec_strategy(dim: usize) -> impl Strategy<Value = SparseVec> {
    prop::collection::vec((0..dim, -5.0..5.0f64), 0..dim)
        .prop_map(move |pairs| SparseVec::from_pairs(dim, pairs))
}

proptest! {
    #[test]
    fn sparse_dot_matches_dense(a in sparse_vec_strategy(8), b in sparse_vec_strategy(8)) {
        let dense: f64 = a.to_dense().iter().zip(b.to_dense()).map(|(x, y)| x * y).sum();
        prop_assert!((a.dot(&b) - dense).abs() < 1e-9);
    }

    #[test]
    fn add_scaled_matches_dense(a in sparse_vec_strategy(8), b in sparse_vec_strategy(8), s in -3.0..3.0f64) {
        let got = a.add_scaled(&b, s).to_dense();
        let want: Vec<f64> = a
            .to_dense()
            .iter()
            .zip(b.to_dense())
            .map(|(x, y)| x + s * y)
            .collect();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn dok_mul_matches_dense(
        entries in prop::collection::vec(((0..6usize, 0..6usize), -4.0..4.0f64), 0..20),
        v in sparse_vec_strategy(6),
    ) {
        let mut m = DokMatrix::zeros(6);
        for ((r, c), val) in entries {
            m.set(r, c, val);
        }
        let got = m.mul_sparse_vec(&v).to_dense();
        let want = m.to_dense().mul_vec(&v.to_dense());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn dok_left_mul_is_transpose(
        entries in prop::collection::vec(((0..5usize, 0..5usize), -4.0..4.0f64), 0..15),
        v in sparse_vec_strategy(5),
    ) {
        let mut m = DokMatrix::zeros(5);
        for ((r, c), val) in entries {
            m.set(r, c, val);
        }
        let left = m.mul_sparse_vec_left(&v).to_dense();
        // vᵀM equals Mᵀv.
        let mt = {
            let mut t = DokMatrix::zeros(5);
            for ((r, c), val) in m.iter() {
                t.set(c, r, val);
            }
            t
        };
        let want = mt.to_dense().mul_vec(&v.to_dense());
        for (g, w) in left.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    /// The heart of Megh's §5.2: chained Sherman–Morrison updates on the
    /// sparse DOK matrix must track the dense Gauss–Jordan inverse.
    #[test]
    fn sherman_morrison_tracks_dense_inverse(
        steps in prop::collection::vec((0..6usize, 0..6usize), 1..10),
        gamma in 0.0..0.9f64,
    ) {
        let d = 6;
        let delta = d as f64;
        let mut b = DokMatrix::scaled_identity(d, 1.0 / delta);
        let mut t = DenseMatrix::zeros(d, d);
        for i in 0..d {
            t.set(i, i, delta);
        }
        for (a, a_next) in steps {
            let u = SparseVec::basis(d, a);
            let v = SparseVec::basis(d, a).add_scaled(&SparseVec::basis(d, a_next), -gamma);
            if sherman_morrison_update(&mut b, &u, &v).is_err() {
                // A singular update is legitimately rejected; skip the step
                // (the dense T would be singular too).
                continue;
            }
            for (i, uv) in u.iter() {
                for (j, vv) in v.iter() {
                    t.set(i, j, t.get(i, j) + uv * vv);
                }
            }
            let want = t.inverse().expect("T must stay invertible when SM succeeded");
            prop_assert!(b.to_dense().max_abs_diff(&want) < 1e-6);
        }
    }

    /// The CSR freeze contract: a snapshot is not an approximation of
    /// the DOK operator but the *same* operator — identical structure
    /// and, because the kernels replay DOK's walk order exactly,
    /// **bitwise** identical products in both orientations.
    #[test]
    fn csr_products_match_dok_bitwise(
        m in dok_strategy(7, 24),
        v in sparse_vec_strategy(7),
    ) {
        let csr = m.to_csr();
        prop_assert!(csr.check_matches_dok(&m).is_ok());
        let right_dok = m.mul_sparse_vec(&v);
        let right_csr = csr.mul_sparse_vec(&v);
        prop_assert_eq!(right_csr.to_dense(), right_dok.to_dense());
        let left_dok = m.mul_sparse_vec_left(&v);
        let left_csr = csr.mul_sparse_vec_left(&v);
        prop_assert_eq!(left_csr.to_dense(), left_dok.to_dense());
    }

    /// SIMD-vs-scalar: the 4-lane unrolled nnz==1 kernels must
    /// reproduce a scalar replay of the same multiplies bit for bit,
    /// for arbitrary adjacency lengths (so every `len % 4` remainder is
    /// exercised) in both product orientations.
    #[test]
    fn csr_unrolled_kernels_match_scalar_replay_bitwise(
        m in dok_strategy(9, 48),
        pivot in 0..9usize,
        value in -1e6..1e6f64,
    ) {
        let csr = m.to_csr();
        let e = SparseVec::from_pairs(9, [(pivot, value)]);

        // Right product `M·e`: scalar replay over the selected column.
        // `iter()` is row-major, so filtering by column yields rows in
        // strictly increasing order — the same walk the kernel takes.
        let mut want = SparseVec::zeros(9);
        for ((r, c), w) in csr.iter() {
            if c == pivot {
                want.push_sorted(r, value * w);
            }
        }
        prop_assert_eq!(csr.mul_sparse_vec(&e).to_dense(), want.to_dense());

        // Left product `eᵀ·M`: scalar replay over the selected row.
        let mut want = SparseVec::zeros(9);
        for ((r, c), w) in csr.iter() {
            if r == pivot {
                want.push_sorted(c, value * w);
            }
        }
        prop_assert_eq!(csr.mul_sparse_vec_left(&e).to_dense(), want.to_dense());
    }

    /// A CSR snapshot agrees with the source matrix entry for entry and
    /// round-trips through `iter()` in the same row-major order.
    #[test]
    fn csr_snapshot_preserves_every_entry(m in dok_strategy(6, 20)) {
        let csr = m.to_csr();
        prop_assert_eq!(csr.order(), m.order());
        prop_assert_eq!(csr.nnz(), m.nnz());
        for r in 0..m.order() {
            for c in 0..m.order() {
                prop_assert_eq!(csr.get(r, c), m.get(r, c));
            }
        }
        let dok_triplets: Vec<((usize, usize), f64)> = m.iter().collect();
        let csr_triplets: Vec<((usize, usize), f64)> = csr.iter().collect();
        prop_assert_eq!(csr_triplets, dok_triplets);
    }

    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(-100.0..100.0f64, 1..50)) {
        let q25 = quantile(&values, 0.25);
        let q50 = quantile(&values, 0.5);
        let q75 = quantile(&values, 0.75);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q75 + 1e-12);
        prop_assert!(iqr(&values) >= -1e-12);
        prop_assert!(mad(&values) >= 0.0);
        prop_assert!(std_dev(&values) >= 0.0);
        prop_assert!(median(&values) <= values.iter().cloned().fold(f64::MIN, f64::max) + 1e-12);
        prop_assert!(mean(&values) <= values.iter().cloned().fold(f64::MIN, f64::max) + 1e-12);
    }

    #[test]
    fn piecewise_linear_stays_in_hull(
        ys in prop::collection::vec(0.0..200.0f64, 2..12),
        x in -1.0..13.0f64,
    ) {
        let knots: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        let f = PiecewiseLinear::new(knots).unwrap();
        let lo = ys.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ys.iter().cloned().fold(f64::MIN, f64::max);
        let v = f.eval(x);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn loess_is_exact_on_lines(slope in -5.0..5.0f64, intercept in -5.0..5.0f64, n in 3..30usize) {
        let series: Vec<f64> = (0..n).map(|i| intercept + slope * i as f64).collect();
        let next = loess_predict_next(&series, 0).unwrap();
        let want = intercept + slope * n as f64;
        prop_assert!((next - want).abs() < 1e-4, "got {next}, want {want}");
    }
}

proptest! {
    /// Randomized Megh-style rank-1 update sequences: the sparse
    /// Sherman–Morrison inverse must keep inverting an independently
    /// maintained dense operator `T` (checked with the same
    /// `identity_residual` predicate the `check-invariants` runtime
    /// checks use) and must match the Gauss–Jordan inverse entrywise.
    #[test]
    fn chained_rank1_updates_track_dense_inverse(
        steps in prop::collection::vec((0..6usize, 0..6usize), 1..40),
        gamma in 0.0..0.9f64,
    ) {
        let d = 6;
        let delta = d as f64;
        let mut b = DokMatrix::scaled_identity(d, 1.0 / delta);
        let mut t = DenseMatrix::zeros(d, d);
        for i in 0..d {
            t.set(i, i, delta);
        }
        for &(a, a_next) in &steps {
            let u = SparseVec::basis(d, a);
            let v = SparseVec::basis(d, a).add_scaled(&SparseVec::basis(d, a_next), -gamma);
            // A vanishing denominator means T + u·vᵀ would be singular;
            // the update is skipped on both representations alike.
            if sherman_morrison_update(&mut b, &u, &v).is_ok() {
                t.set(a, a, t.get(a, a) + 1.0);
                t.set(a, a_next, t.get(a, a_next) - gamma);
            }
        }
        prop_assert!(identity_residual(&b.to_dense(), &t) < 1e-6);
        let gj = t.inverse().expect("operator stays invertible for gamma < 1");
        prop_assert!(b.to_dense().max_abs_diff(&gj) < 1e-6);
    }
}
