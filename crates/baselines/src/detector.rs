//! Host-overload detection policies of the MMT family.
//!
//! An MMT scheduler "starts migrating a VM when its utilization crosses a
//! certain threshold. The threshold can be fixed (for THR-MMT) or
//! determined adaptively (for IQR-MMT, MAD-MMT, LR-MMT and LRR-MMT) from
//! the summary statistics of workloads' history" (§2.1). The concrete
//! rules follow Beloglazov & Buyya (2012):
//!
//! * **THR**: overloaded when utilization > fixed threshold.
//! * **IQR**: adaptive threshold `1 − s·IQR(history)`, `s = 1.5`.
//! * **MAD**: adaptive threshold `1 − s·MAD(history)`, `s = 2.5`.
//! * **LR / LRR**: Loess local regression predicts the next utilization;
//!   overloaded when `s · prediction ≥ 1`, `s = 1.2`. LRR re-weights
//!   with bisquare iterations (robust to spikes).
//!
//! All adaptive detectors fall back to the static threshold while the
//! history is too short to estimate statistics.

use megh_linalg::{iqr, loess_predict_next, mad};
use serde::{Deserialize, Serialize};

/// Minimum history length before adaptive statistics are trusted.
const MIN_HISTORY: usize = 4;

/// A host-overload detection policy.
///
/// # Examples
///
/// ```
/// use megh_baselines::OverloadDetector;
///
/// let thr = OverloadDetector::thr(0.8);
/// assert!(thr.is_overloaded(&[0.5, 0.9]));
/// assert!(!thr.is_overloaded(&[0.9, 0.5]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OverloadDetector {
    /// Static threshold on current utilization.
    Thr {
        /// Utilization fraction above which the host is overloaded.
        threshold: f64,
    },
    /// Interquartile-range adaptive threshold.
    Iqr {
        /// Safety parameter `s` (Beloglazov: 1.5).
        safety: f64,
        /// Fallback static threshold for short histories.
        fallback: f64,
    },
    /// Median-absolute-deviation adaptive threshold.
    Mad {
        /// Safety parameter `s` (Beloglazov: 2.5).
        safety: f64,
        /// Fallback static threshold for short histories.
        fallback: f64,
    },
    /// Local-regression prediction (LR; LRR when `robust`).
    Lr {
        /// Safety multiplier on the prediction (Beloglazov: 1.2).
        safety: f64,
        /// Number of bisquare robustness iterations (0 = plain LR).
        robust_iterations: usize,
        /// Fallback static threshold for short histories.
        fallback: f64,
    },
}

impl OverloadDetector {
    /// Static-threshold detector (THR-MMT). Beloglazov's default: 0.8.
    pub fn thr(threshold: f64) -> Self {
        Self::Thr { threshold }
    }

    /// IQR detector with the literature defaults.
    pub fn iqr_default() -> Self {
        Self::Iqr {
            safety: 1.5,
            fallback: 0.8,
        }
    }

    /// MAD detector with the literature defaults.
    pub fn mad_default() -> Self {
        Self::Mad {
            safety: 2.5,
            fallback: 0.8,
        }
    }

    /// Plain local-regression detector (LR-MMT).
    pub fn lr_default() -> Self {
        Self::Lr {
            safety: 1.2,
            robust_iterations: 0,
            fallback: 0.8,
        }
    }

    /// Robust local-regression detector (LRR-MMT).
    pub fn lrr_default() -> Self {
        Self::Lr {
            safety: 1.2,
            robust_iterations: 3,
            fallback: 0.8,
        }
    }

    /// Decides whether a host with this utilization `history` (oldest
    /// first, ending at the current observation) is overloaded.
    ///
    /// An empty history is never overloaded.
    pub fn is_overloaded(&self, history: &[f64]) -> bool {
        let Some(&current) = history.last() else {
            return false;
        };
        match *self {
            Self::Thr { threshold } => current > threshold,
            Self::Iqr { safety, fallback } => {
                if history.len() < MIN_HISTORY {
                    return current > fallback;
                }
                let threshold = (1.0 - safety * iqr(history)).clamp(0.0, 1.0);
                current >= threshold
            }
            Self::Mad { safety, fallback } => {
                if history.len() < MIN_HISTORY {
                    return current > fallback;
                }
                let threshold = (1.0 - safety * mad(history)).clamp(0.0, 1.0);
                current >= threshold
            }
            Self::Lr {
                safety,
                robust_iterations,
                fallback,
            } => {
                if history.len() < MIN_HISTORY {
                    return current > fallback;
                }
                // The static threshold remains a hard backstop: a host
                // already past it is overloaded regardless of what the
                // regression extrapolates (a robust fit deliberately
                // discounts the very burst that just saturated the host).
                if current > fallback {
                    return true;
                }
                match loess_predict_next(history, robust_iterations) {
                    Ok(predicted) => safety * predicted >= 1.0,
                    Err(_) => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thr_uses_only_current_value() {
        let d = OverloadDetector::thr(0.7);
        assert!(d.is_overloaded(&[0.1, 0.71]));
        assert!(!d.is_overloaded(&[0.99, 0.7]));
        assert!(!d.is_overloaded(&[]));
    }

    #[test]
    fn iqr_adapts_to_volatility() {
        let d = OverloadDetector::iqr_default();
        // Stable history → IQR ≈ 0 → threshold ≈ 1.0: only saturated
        // hosts are overloaded.
        let stable = [0.6, 0.6, 0.6, 0.6, 0.6, 0.62];
        assert!(!d.is_overloaded(&stable));
        // Volatile history → large IQR → low threshold: the same current
        // utilization now trips the detector.
        let volatile = [0.1, 0.9, 0.15, 0.85, 0.2, 0.62];
        assert!(d.is_overloaded(&volatile));
    }

    #[test]
    fn mad_is_robust_to_single_spike() {
        let mad_det = OverloadDetector::mad_default();
        // One spike in an otherwise flat history: MAD stays ~0, so the
        // threshold stays near 1 and a 0.7 utilization is fine.
        let spiky = [0.3, 0.3, 0.3, 0.95, 0.3, 0.3, 0.7];
        assert!(!mad_det.is_overloaded(&spiky));
    }

    #[test]
    fn short_history_falls_back_to_static() {
        for d in [
            OverloadDetector::iqr_default(),
            OverloadDetector::mad_default(),
            OverloadDetector::lr_default(),
        ] {
            assert!(d.is_overloaded(&[0.9, 0.85]), "{d:?}");
            assert!(!d.is_overloaded(&[0.9, 0.5]), "{d:?}");
        }
    }

    #[test]
    fn lr_predicts_rising_trend() {
        let d = OverloadDetector::lr_default();
        // Steady climb: prediction exceeds 1/1.2 ≈ 0.83 soon.
        let rising: Vec<f64> = (0..10).map(|i| 0.30 + 0.06 * i as f64).collect();
        assert!(d.is_overloaded(&rising));
        // Flat low utilization: never overloaded.
        let flat = vec![0.3; 10];
        assert!(!d.is_overloaded(&flat));
    }

    #[test]
    fn lrr_ignores_spike_that_fools_lr() {
        let lr = OverloadDetector::lr_default();
        let lrr = OverloadDetector::lrr_default();
        // Flat 0.45 with a late spike: plain LR extrapolates the spike
        // upward; robust LR shrugs it off.
        let mut hist = vec![0.45; 10];
        hist[8] = 1.0;
        let lr_fired = lr.is_overloaded(&hist);
        let lrr_fired = lrr.is_overloaded(&hist);
        assert!(
            !lrr_fired,
            "LRR must be robust to the spike (LR fired: {lr_fired})"
        );
    }

    #[test]
    fn defaults_match_literature() {
        assert_eq!(
            OverloadDetector::iqr_default(),
            OverloadDetector::Iqr {
                safety: 1.5,
                fallback: 0.8
            }
        );
        assert_eq!(
            OverloadDetector::mad_default(),
            OverloadDetector::Mad {
                safety: 2.5,
                fallback: 0.8
            }
        );
    }
}
