//! Baseline migration schedulers the paper compares Megh against (§2, §6.3).
//!
//! * **The MMT family** (Beloglazov & Buyya 2012; Beloglazov, Abawajy &
//!   Buyya 2012): dynamic-consolidation heuristics built from three
//!   pluggable stages — an [`OverloadDetector`] per host (THR static
//!   threshold, IQR / MAD adaptive thresholds, LR / LRR local-regression
//!   predictors), Minimum-Migration-Time VM selection, and Power-Aware
//!   Best-Fit-Decreasing placement — plus underload consolidation that
//!   empties and sleeps the least-loaded hosts. [`MmtScheduler`] wires
//!   them together; [`MmtFlavor`] names the five variants of Tables 2–3.
//! * **MadVM** (Han et al., INFOCOM 2016): the approximate-MDP comparator.
//!   Per-VM discretized utilization MDPs with frequentist transition
//!   estimates and a per-step value-iteration sweep — deliberately heavy
//!   bookkeeping, which is exactly why the paper finds it ~1000× slower
//!   than Megh (Figures 4(d), 5(d)).
//! * **Q-learning** ([`QLearningScheduler`]): the classical tabular agent
//!   the paper discusses as the offline-trained comparator; it must be
//!   trained on a workload prefix before it acts sensibly.
//!
//! # Examples
//!
//! ```
//! use megh_baselines::{MmtFlavor, MmtScheduler};
//! use megh_sim::{DataCenterConfig, Simulation};
//! use megh_trace::PlanetLabConfig;
//!
//! let trace = PlanetLabConfig::new(12, 5).generate_steps(30);
//! let sim = Simulation::new(DataCenterConfig::paper_planetlab(6, 12), trace)?;
//! let outcome = sim.run(MmtScheduler::new(MmtFlavor::Thr));
//! assert_eq!(outcome.scheduler(), "THR-MMT");
//! # Ok::<(), megh_sim::SimError>(())
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

mod detector;
mod madvm;
mod mmt;
mod order;
mod placement;
mod qlearning;
mod selection;

pub use detector::OverloadDetector;
pub use madvm::{MadVmConfig, MadVmScheduler};
pub use mmt::{MmtFlavor, MmtScheduler};
pub use order::total_f64;
pub use placement::{power_aware_best_fit, PlacementRound};
pub use qlearning::{QLearningConfig, QLearningScheduler};
pub use selection::{select_minimum_migration_time, select_random, SelectionPolicy};
