//! Total-order comparison for `f64` scheduler keys.
//!
//! Every baseline ranks hosts or VMs by a floating-point key (utilization,
//! migration time, power increase, Q-value). `partial_cmp` + `unwrap` (or
//! `unwrap_or(Equal)`) is a trap on such keys: a single NaN — e.g. `0/0`
//! from a zero-capacity host — either panics outright or silently breaks
//! the comparator's transitivity, which `sort_unstable_by` is allowed to
//! punish with a panic and `min_by`/`max_by` punish with an
//! order-dependent (nondeterministic) pick. `f64::total_cmp` implements
//! the IEEE 754 `totalOrder` predicate, so every value — NaN included —
//! has one fixed place in the order and comparisons are total, stable,
//! and panic-free.

use std::cmp::Ordering;

/// Compares two `f64` keys under the IEEE 754 total order.
///
/// NaN sorts after `+∞` (and `-NaN` before `-∞`), so degenerate keys
/// cluster at the extremes instead of poisoning the sort.
///
/// # Examples
///
/// ```
/// use megh_baselines::total_f64;
/// use std::cmp::Ordering;
///
/// assert_eq!(total_f64(1.0, 2.0), Ordering::Less);
/// assert_eq!(total_f64(f64::NAN, f64::INFINITY), Ordering::Greater);
/// ```
pub fn total_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_ordinary_keys() {
        assert_eq!(total_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(total_f64(2.0, 1.0), Ordering::Greater);
        assert_eq!(total_f64(1.5, 1.5), Ordering::Equal);
    }

    #[test]
    fn nan_keys_sort_without_panicking() {
        // Regression: a NaN key (0/0 utilization on a zero-capacity host)
        // must neither panic nor destabilise the order.
        let mut keys = [2.0, f64::NAN, -1.0, f64::INFINITY, 0.5];
        keys.sort_unstable_by(|a, b| total_f64(*a, *b));
        assert_eq!(&keys[..3], &[-1.0, 0.5, 2.0]);
        assert_eq!(keys[3], f64::INFINITY);
        assert!(keys[4].is_nan(), "NaN belongs after +inf");
    }

    #[test]
    fn min_by_is_deterministic_under_nan() {
        let keys = [f64::NAN, 3.0, 1.0, f64::NAN, 2.0];
        let min = (0..keys.len())
            .min_by(|&a, &b| total_f64(keys[a], keys[b]))
            .unwrap();
        assert_eq!(min, 2, "the smallest real key wins regardless of NaNs");
    }
}
