//! The MMT scheduler family: THR-, IQR-, MAD-, LR- and LRR-MMT.
//!
//! Each step runs Beloglazov's dynamic-consolidation loop:
//!
//! 1. **Overload mitigation** — for every host the detector flags as
//!    overloaded, repeatedly select the Minimum-Migration-Time VM and
//!    queue it for migration until the host's remaining demand drops to
//!    the β threshold.
//! 2. **Placement** — assign the queued VMs to destinations with
//!    Power-Aware Best-Fit-Decreasing, excluding overloaded hosts.
//! 3. **Underload consolidation** — walk the remaining active hosts from
//!    least to most utilized; if *all* of a host's VMs can be placed on
//!    other active, non-overloaded hosts, evacuate it so it sleeps.

use std::collections::BTreeSet;

use megh_sim::{DataCenterView, MigrationRequest, PmId, Scheduler, VmId};
use serde::{Deserialize, Serialize};

use crate::{total_f64, OverloadDetector, PlacementRound};

/// The five Table 2/3 variants, differing only in overload detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmtFlavor {
    /// Static threshold (THR-MMT).
    Thr,
    /// Interquartile range (IQR-MMT).
    Iqr,
    /// Median absolute deviation (MAD-MMT).
    Mad,
    /// Local regression (LR-MMT).
    Lr,
    /// Robust local regression (LRR-MMT).
    Lrr,
}

impl MmtFlavor {
    /// All five variants, in the column order of Tables 2–3.
    pub const ALL: [MmtFlavor; 5] = [
        MmtFlavor::Thr,
        MmtFlavor::Iqr,
        MmtFlavor::Mad,
        MmtFlavor::Lr,
        MmtFlavor::Lrr,
    ];

    /// The scheduler name used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Thr => "THR-MMT",
            Self::Iqr => "IQR-MMT",
            Self::Mad => "MAD-MMT",
            Self::Lr => "LR-MMT",
            Self::Lrr => "LRR-MMT",
        }
    }

    /// The detector this flavor uses, with literature defaults.
    pub fn detector(&self) -> OverloadDetector {
        match self {
            Self::Thr => OverloadDetector::thr(0.8),
            Self::Iqr => OverloadDetector::iqr_default(),
            Self::Mad => OverloadDetector::mad_default(),
            Self::Lr => OverloadDetector::lr_default(),
            Self::Lrr => OverloadDetector::lrr_default(),
        }
    }
}

/// A dynamic-consolidation scheduler from the MMT family.
///
/// # Examples
///
/// ```
/// use megh_baselines::{MmtFlavor, MmtScheduler};
/// use megh_sim::Scheduler;
///
/// let s = MmtScheduler::new(MmtFlavor::Lr);
/// assert_eq!(s.name(), "LR-MMT");
/// ```
#[derive(Debug, Clone)]
pub struct MmtScheduler {
    flavor: MmtFlavor,
    detector: OverloadDetector,
    /// Enable step 3 (underload consolidation). On by default; the
    /// ablation benches switch it off to isolate its contribution.
    pub consolidate_underloaded: bool,
    /// Post-placement utilization bound and overload drain target.
    /// Beloglazov's algorithm packs hosts right up to the overload
    /// *detector* threshold (0.8 for THR) — the behaviour that produces
    /// the family's characteristic migration churn. Lowering it trades
    /// churn for headroom (ablation knob).
    pub utilization_bound: f64,
}

impl MmtScheduler {
    /// Creates a scheduler of the given flavor with default parameters.
    pub fn new(flavor: MmtFlavor) -> Self {
        Self {
            flavor,
            detector: flavor.detector(),
            consolidate_underloaded: true,
            utilization_bound: 0.8,
        }
    }

    /// Creates a scheduler with a custom detector (parameter studies).
    pub fn with_detector(flavor: MmtFlavor, detector: OverloadDetector) -> Self {
        Self {
            flavor,
            detector,
            consolidate_underloaded: true,
            utilization_bound: 0.8,
        }
    }

    /// The flavor this scheduler runs.
    pub fn flavor(&self) -> MmtFlavor {
        self.flavor
    }

    /// Step 1: VMs that must leave overloaded hosts.
    fn overload_evacuations(
        &self,
        view: &DataCenterView,
        overloaded: &BTreeSet<PmId>,
    ) -> Vec<VmId> {
        let mut to_move = Vec::new();
        for &host in overloaded {
            let cap = view.host_mips(host);
            if cap <= 0.0 {
                continue;
            }
            let mut remaining: Vec<VmId> = view.vms_on(host);
            let mut used = view.host_used_mips(host);
            // Evict MMT-selected VMs until the host drops below the
            // detection bound — or entirely, when the host is down.
            let drain_target = if view.is_down(host) {
                -1.0 // nothing may remain
            } else {
                self.utilization_bound
            };
            while used / cap > drain_target {
                let Some(victim) = remaining.iter().copied().min_by(|&a, &b| {
                    total_f64(view.vm_ram_mb(a), view.vm_ram_mb(b)).then(a.0.cmp(&b.0))
                }) else {
                    break;
                };
                remaining.retain(|&v| v != victim);
                used -= view.vm_demand_mips(victim);
                to_move.push(victim);
            }
        }
        to_move
    }

    /// Step 3: evacuate the least-utilized hosts entirely when possible.
    fn underload_consolidation(
        &self,
        view: &DataCenterView,
        round: &mut PlacementRound,
        overloaded: &BTreeSet<PmId>,
        already_moving: &BTreeSet<VmId>,
        requests: &mut Vec<MigrationRequest>,
    ) {
        // Candidate sources: active, not overloaded, none of their VMs
        // already scheduled to move.
        let mut candidates: Vec<PmId> = view
            .hosts()
            .filter(|&h| {
                !view.is_asleep(h)
                    && !overloaded.contains(&h)
                    && round.pending_mips(h) == 0.0 // didn't just receive evacuees
                    && view.vms_on(h).iter().all(|vm| !already_moving.contains(vm))
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            total_f64(view.host_utilization(a), view.host_utilization(b)).then(a.0.cmp(&b.0))
        });

        // Hosts that may receive evacuated VMs must stay distinct from
        // hosts being evacuated in this round.
        let mut evacuating: BTreeSet<PmId> = BTreeSet::new();
        for host in candidates {
            let vms = view.vms_on(host);
            if vms.is_empty() {
                continue;
            }
            let mut excluded: BTreeSet<PmId> = overloaded.clone();
            excluded.insert(host);
            excluded.extend(evacuating.iter().copied());
            // Also exclude sleeping hosts: waking one to empty another
            // defeats consolidation.
            for h in view.hosts() {
                if view.is_asleep(h) {
                    excluded.insert(h);
                }
            }
            // Trial placement on a copy: evacuate only when *all* VMs
            // fit, otherwise the host cannot sleep and moving a subset
            // would be pure churn.
            let mut trial = round.clone();
            let placements = trial.place_bounded(view, &vms, &excluded, self.utilization_bound);
            if placements.len() == vms.len() {
                *round = trial;
                evacuating.insert(host);
                for (vm, target) in placements {
                    requests.push(MigrationRequest::new(vm, target));
                }
            }
        }
    }
}

impl Scheduler for MmtScheduler {
    fn name(&self) -> &str {
        self.flavor.label()
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        // Detect overloaded hosts from their utilization histories;
        // down hosts must be evacuated regardless of their load.
        // Sorted set: evacuation processes hosts in id order, so decisions
        // are a pure function of the view (PR 1's MadVM nondeterminism bug
        // came from iterating a randomly-seeded HashSet here).
        let overloaded: BTreeSet<PmId> = view
            .hosts()
            .filter(|&h| {
                !view.is_asleep(h)
                    && (view.is_down(h) || self.detector.is_overloaded(view.host_history(h)))
            })
            .collect();

        // 1. Who leaves the hot hosts.
        let evacuees = self.overload_evacuations(view, &overloaded);

        // 2. Where they go — one shared placement round for the whole
        // step, so consolidation cannot re-fill hosts that just
        // received evacuees.
        let mut round = PlacementRound::new(view);
        let placements = round.place_bounded(view, &evacuees, &overloaded, self.utilization_bound);
        let mut requests: Vec<MigrationRequest> = placements
            .iter()
            .map(|&(vm, target)| MigrationRequest::new(vm, target))
            .collect();
        let moving: BTreeSet<VmId> = requests.iter().map(|r| r.vm).collect();

        // 3. Empty the coldest hosts.
        if self.consolidate_underloaded {
            self.underload_consolidation(view, &mut round, &overloaded, &moving, &mut requests);
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{DataCenterConfig, InitialPlacement, Simulation, VmSpec};
    use megh_trace::{PlanetLabConfig, WorkloadTrace};

    #[test]
    fn labels_match_paper_columns() {
        let labels: Vec<&str> = MmtFlavor::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(
            labels,
            vec!["THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT"]
        );
    }

    #[test]
    fn overloaded_host_is_relieved() {
        // Two hot VMs on one G4 host, two empty hosts available.
        let mut config = DataCenterConfig::paper_planetlab(3, 2);
        config.vms = vec![
            VmSpec::new(2500.0, 1024.0, 100.0),
            VmSpec::new(2500.0, 512.0, 100.0),
        ];
        config.initial_placement = InitialPlacement::Explicit(vec![0, 0]);
        // Both at 100 % → 5000/3720 = 1.34 utilization on host 0.
        let trace = WorkloadTrace::from_rows(300, vec![vec![100.0; 5]; 2]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(MmtScheduler::new(MmtFlavor::Thr));
        // The scheduler must have migrated at least one VM off host 0.
        assert!(outcome.report().total_migrations >= 1);
        // And by the end no host should be overloaded.
        assert_eq!(outcome.records().last().unwrap().overloaded_hosts, 0);
    }

    #[test]
    fn underload_consolidation_sleeps_hosts() {
        // Four tiny VMs spread over four hosts round-robin; consolidation
        // should gather them and sleep hosts.
        let mut config = DataCenterConfig::paper_planetlab(4, 4);
        config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); 4];
        config.initial_placement = InitialPlacement::RoundRobin;
        let trace = WorkloadTrace::from_rows(300, vec![vec![10.0; 6]; 4]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(MmtScheduler::new(MmtFlavor::Thr));
        let first = outcome.records().first().unwrap().active_hosts;
        let last = outcome.records().last().unwrap().active_hosts;
        assert!(
            last < first,
            "consolidation must reduce active hosts: {first} -> {last}"
        );
        assert_eq!(last, 1, "4 tiny VMs fit on one host");
    }

    #[test]
    fn disabling_consolidation_keeps_spread() {
        let mut config = DataCenterConfig::paper_planetlab(4, 4);
        config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); 4];
        let trace = WorkloadTrace::from_rows(300, vec![vec![10.0; 6]; 4]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let mut scheduler = MmtScheduler::new(MmtFlavor::Thr);
        scheduler.consolidate_underloaded = false;
        let outcome = sim.run(scheduler);
        assert_eq!(outcome.report().total_migrations, 0);
        assert_eq!(outcome.records().last().unwrap().active_hosts, 4);
    }

    #[test]
    fn all_flavors_run_end_to_end() {
        let trace = PlanetLabConfig::new(10, 5).generate_steps(25);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(5, 10), trace).unwrap();
        for flavor in MmtFlavor::ALL {
            let outcome = sim.run(MmtScheduler::new(flavor));
            assert_eq!(outcome.scheduler(), flavor.label());
            assert_eq!(outcome.records().len(), 25);
            assert!(outcome.report().total_cost_usd > 0.0);
        }
    }

    #[test]
    fn idle_data_center_stays_quiet_after_consolidation() {
        // All-zero workload: after the initial consolidation settles,
        // no further migrations should occur.
        let mut config = DataCenterConfig::paper_planetlab(3, 3);
        config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); 3];
        let trace = WorkloadTrace::from_rows(300, vec![vec![0.0; 10]; 3]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(MmtScheduler::new(MmtFlavor::Thr));
        let tail_migrations: usize = outcome.records()[3..].iter().map(|r| r.migrations).sum();
        assert_eq!(tail_migrations, 0, "steady state must be migration-free");
    }
}
