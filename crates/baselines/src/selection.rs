//! VM-selection policies: which VM leaves an overloaded host.

use megh_sim::{DataCenterView, PmId, VmId};
use rand::Rng;

use crate::total_f64;
use serde::{Deserialize, Serialize};

/// Named VM-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Minimum Migration Time: the VM whose RAM copies fastest over the
    /// host's bandwidth (Beloglazov's MMT, used by all five Table 2/3
    /// heuristics).
    MinimumMigrationTime,
    /// Uniform random choice — the ablation control.
    Random,
}

/// Picks the VM with the minimum migration time `RAM / bandwidth` from
/// `host`, breaking ties toward the lower VM id.
///
/// Returns `None` when the host runs no VMs.
///
/// # Examples
///
/// ```
/// use megh_baselines::select_minimum_migration_time;
/// # use megh_sim::{DataCenterConfig, NoOpScheduler, Simulation, PmId};
/// # use megh_trace::PlanetLabConfig;
/// # // Views are produced by the engine; here we only show the call shape.
/// ```
pub fn select_minimum_migration_time(view: &DataCenterView, host: PmId) -> Option<VmId> {
    let bw = view.host_bw_mbps(host);
    view.vms_on(host).into_iter().min_by(|&a, &b| {
        total_f64(migration_time(view, a, bw), migration_time(view, b, bw)).then(a.0.cmp(&b.0))
    })
}

/// Picks a uniformly random VM from `host` (ablation control).
///
/// Returns `None` when the host runs no VMs.
pub fn select_random<R: Rng>(view: &DataCenterView, host: PmId, rng: &mut R) -> Option<VmId> {
    let vms = view.vms_on(host);
    if vms.is_empty() {
        None
    } else {
        Some(vms[rng.gen_range(0..vms.len())])
    }
}

fn migration_time(view: &DataCenterView, vm: VmId, bw_mbps: f64) -> f64 {
    if bw_mbps <= 0.0 {
        return f64::INFINITY;
    }
    view.vm_ram_mb(vm) * 8.0 / bw_mbps
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{DataCenterConfig, Scheduler, Simulation, VmSpec};
    use megh_trace::WorkloadTrace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs a one-step simulation whose scheduler captures the view.
    fn capture_view(config: DataCenterConfig, trace: WorkloadTrace) -> DataCenterView {
        struct Capture(Option<DataCenterView>);
        impl Scheduler for &mut Capture {
            fn name(&self) -> &str {
                "Capture"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<megh_sim::MigrationRequest> {
                self.0 = Some(view.clone());
                Vec::new()
            }
        }
        let mut capture = Capture(None);
        Simulation::new(config, trace)
            .unwrap()
            .run_steps(&mut capture, 1);
        capture.0.expect("one step ran")
    }

    fn three_vm_setup() -> DataCenterView {
        let mut config = DataCenterConfig::paper_planetlab(2, 3);
        // Distinct RAM sizes: VM1 has the smallest → fastest to migrate.
        config.vms = vec![
            VmSpec::new(1000.0, 2048.0, 100.0),
            VmSpec::new(1000.0, 512.0, 100.0),
            VmSpec::new(1000.0, 1024.0, 100.0),
        ];
        // All VMs on host 0.
        config.initial_placement = megh_sim::InitialPlacement::Explicit(vec![0, 0, 0]);
        let trace = WorkloadTrace::from_rows(300, vec![vec![10.0]; 3]).unwrap();
        capture_view(config, trace)
    }

    #[test]
    fn mmt_picks_smallest_ram() {
        let view = three_vm_setup();
        let host = view.host_of(VmId(1));
        assert_eq!(select_minimum_migration_time(&view, host), Some(VmId(1)));
    }

    #[test]
    fn empty_host_selects_nothing() {
        let view = three_vm_setup();
        // Host 1 has no VMs (FirstFit packed all three on host 0).
        assert!(view.is_asleep(PmId(1)));
        assert_eq!(select_minimum_migration_time(&view, PmId(1)), None);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(select_random(&view, PmId(1), &mut rng), None);
    }

    #[test]
    fn random_selection_is_from_the_host() {
        let view = three_vm_setup();
        let host = view.host_of(VmId(0));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let vm = select_random(&view, host, &mut rng).unwrap();
            assert_eq!(view.host_of(vm), host);
        }
    }
}
