//! MadVM: dynamic VM management via an approximate MDP (Han et al.,
//! INFOCOM 2016) — the RL comparator of §6.3.
//!
//! Re-implemented from its description in the Megh paper and the source
//! publication: MadVM keeps, *per VM*, a discretized-utilization MDP with
//! frequentist transition estimates learned online, and on every step
//! runs a value-iteration sweep for each VM to estimate its expected
//! discounted future demand ("MadVM tries to simultaneously optimize the
//! utility functions of each of the VMs. Simultaneous optimization
//! requires bookkeeping of transition functions and evaluation of key
//! states for each of them"). Migration decisions then move the
//! highest-future-demand VMs off (expected-)overloaded hosts and gather
//! VMs from expected-underloaded hosts.
//!
//! The per-step `O(N · L² · iterations)` value-iteration cost is the
//! point: it is why MadVM's execution time is orders of magnitude above
//! Megh's (Figures 4(d), 5(d)) and why it "fails to scale-up for the
//! complete PlanetLab or Google Cluster".

use std::collections::BTreeSet;

use megh_sim::{DataCenterView, MigrationRequest, PmId, Scheduler, VmId};
use serde::{Deserialize, Serialize};

use crate::total_f64;

/// MadVM hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MadVmConfig {
    /// Number of discretized utilization levels `L`.
    pub n_levels: usize,
    /// Discount factor (the paper sets 0.5 for both Megh and MadVM).
    pub gamma: f64,
    /// Value-iteration convergence threshold.
    pub vi_epsilon: f64,
    /// Hard cap on value-iteration sweeps per VM per step.
    pub max_vi_iterations: usize,
    /// Expected-utilization fraction below which a host is a
    /// consolidation source.
    pub underload_threshold: f64,
}

impl Default for MadVmConfig {
    fn default() -> Self {
        Self {
            n_levels: 20,
            gamma: 0.5,
            vi_epsilon: 1e-9,
            max_vi_iterations: 500,
            underload_threshold: 0.2,
        }
    }
}

/// The MadVM scheduler.
///
/// # Examples
///
/// ```
/// use megh_baselines::{MadVmConfig, MadVmScheduler};
/// use megh_sim::Scheduler;
///
/// let s = MadVmScheduler::new(MadVmConfig::default());
/// assert_eq!(s.name(), "MadVM");
/// ```
#[derive(Debug, Clone)]
pub struct MadVmScheduler {
    cfg: MadVmConfig,
    /// `counts[vm][l][l']`: observed transitions level `l` → `l'`.
    counts: Vec<Vec<Vec<f64>>>,
    prev_level: Vec<Option<usize>>,
    /// Expected next utilization per VM, refreshed each step.
    expected_util: Vec<f64>,
    /// Discounted future-demand value per VM, refreshed each step.
    vm_value: Vec<f64>,
}

impl MadVmScheduler {
    /// Creates a MadVM scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `n_levels == 0` or `gamma ∉ [0, 1)`.
    pub fn new(cfg: MadVmConfig) -> Self {
        assert!(cfg.n_levels > 0, "n_levels must be positive");
        assert!((0.0..1.0).contains(&cfg.gamma), "gamma must be in [0, 1)");
        Self {
            cfg,
            counts: Vec::new(),
            prev_level: Vec::new(),
            expected_util: Vec::new(),
            vm_value: Vec::new(),
        }
    }

    /// Discretization level for a utilization fraction in `[0, 1]`.
    fn level(&self, util_fraction: f64) -> usize {
        let l = (util_fraction.clamp(0.0, 1.0) * self.cfg.n_levels as f64) as usize;
        l.min(self.cfg.n_levels - 1)
    }

    /// Midpoint utilization of a level.
    fn level_mid(&self, level: usize) -> f64 {
        (level as f64 + 0.5) / self.cfg.n_levels as f64
    }

    fn ensure_capacity(&mut self, n_vms: usize) {
        let levels = self.cfg.n_levels;
        while self.counts.len() < n_vms {
            self.counts.push(vec![vec![0.0; levels]; levels]);
            self.prev_level.push(None);
            self.expected_util.push(0.0);
            self.vm_value.push(0.0);
        }
    }

    /// One frequentist transition update + value-iteration sweep per VM.
    fn learn_and_evaluate(&mut self, view: &DataCenterView) {
        let levels = self.cfg.n_levels;
        for vm in view.vms() {
            let j = vm.0;
            let util = view.vm_utilization_percent(vm) / 100.0;
            let cur = self.level(util);
            if let Some(prev) = self.prev_level[j] {
                self.counts[j][prev][cur] += 1.0;
            }
            self.prev_level[j] = Some(cur);

            // Transition probabilities (uniform prior on unseen rows).
            let mut p = vec![vec![1.0 / levels as f64; levels]; levels];
            for (l, row) in self.counts[j].iter().enumerate() {
                let total: f64 = row.iter().sum();
                if total > 0.0 {
                    for (l2, &c) in row.iter().enumerate() {
                        p[l][l2] = c / total;
                    }
                }
            }

            // Value iteration: V(l) = mid(l) + γ Σ P(l'|l) V(l').
            // This per-VM sweep is MadVM's deliberate computational load.
            let mut v = vec![0.0f64; levels];
            for _ in 0..self.cfg.max_vi_iterations {
                let mut max_delta = 0.0f64;
                let mut next = vec![0.0f64; levels];
                for l in 0..levels {
                    let future: f64 = (0..levels).map(|l2| p[l][l2] * v[l2]).sum();
                    next[l] = self.level_mid(l) + self.cfg.gamma * future;
                    max_delta = max_delta.max((next[l] - v[l]).abs());
                }
                v = next;
                if max_delta < self.cfg.vi_epsilon {
                    break;
                }
            }
            self.vm_value[j] = v[cur];
            self.expected_util[j] = (0..levels).map(|l2| p[cur][l2] * self.level_mid(l2)).sum();
        }
    }

    /// Expected MIPS demand of a VM next step.
    fn expected_demand(&self, view: &DataCenterView, vm: VmId) -> f64 {
        self.expected_util[vm.0] * view.vm_mips(vm)
    }

    /// Chooses a destination for `vm`.
    ///
    /// Capacity feasibility is checked against the *live* expected
    /// loads (`live_used`, which includes this step's earlier
    /// decisions), but the power score ranks hosts by the *stale*
    /// per-VM snapshot (`scored_used`): each VM optimizes its own
    /// utility against the state it observed, which is the
    /// per-VM-simultaneous-optimization structure the paper criticises
    /// in MadVM. With `scored_used == live_used` this degenerates to
    /// fully coordinated placement.
    fn best_destination(
        &self,
        view: &DataCenterView,
        vm: VmId,
        scored_used: &[f64],
        live_used: &[f64],
        excluded: &BTreeSet<PmId>,
    ) -> Option<PmId> {
        let demand = self.expected_demand(view, vm);
        let mut best: Option<(PmId, f64)> = None;
        for host in view.hosts() {
            if excluded.contains(&host) || host == view.host_of(vm) || view.is_down(host) {
                continue;
            }
            let cap = view.host_mips(host);
            if cap <= 0.0 {
                continue;
            }
            if (live_used[host.0] + demand) / cap > view.beta_overload() {
                continue;
            }
            let before = scored_used[host.0] / cap;
            let after = before + demand / cap;
            let increase = view.host_power_watts(host, after) - view.host_power_watts(host, before);
            let wake = if view.is_asleep(host) {
                view.host_power_watts(host, 0.0)
            } else {
                0.0
            };
            let score = increase + wake;
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((host, score));
            }
        }
        best.map(|(h, _)| h)
    }
}

impl Scheduler for MadVmScheduler {
    fn name(&self) -> &str {
        "MadVM"
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        self.ensure_capacity(view.n_vms());
        self.learn_and_evaluate(view);

        // Expected per-host load under the learned dynamics.
        let mut expected_used = vec![0.0f64; view.n_hosts()];
        for vm in view.vms() {
            expected_used[view.host_of(vm).0] += self.expected_demand(view, vm);
        }

        let overloaded: BTreeSet<PmId> = view
            .hosts()
            .filter(|&h| {
                let cap = view.host_mips(h);
                view.is_down(h)
                    || (cap > 0.0
                        && (expected_used[h.0] / cap > view.beta_overload()
                            || view.is_overloaded(h)))
            })
            .collect();

        let mut requests = Vec::new();

        // Relieve (expected-)overloaded hosts: evict the VMs with the
        // largest discounted future demand first.
        //
        // Faithful to the paper's criticism of MadVM: each VM optimizes
        // its *own* utility against the same stale load snapshot
        // ("MadVM tries to simultaneously maximize the expected
        // cumulative rewards of each of the VMs"). Concurrent evictions
        // therefore pile onto the same attractive destination, which is
        // a real source of MadVM's extra migrations and slower
        // convergence relative to Megh (Figures 4(b), 5(b)).
        let snapshot = expected_used.clone();
        // BTreeSet iterates in host-id order, so eviction order — and with
        // it the whole decision — is a pure function of the view.
        for &host in &overloaded {
            let cap = view.host_mips(host);
            if cap <= 0.0 {
                continue;
            }
            let mut vms = view.vms_on(host);
            vms.sort_by(|&a, &b| {
                total_f64(self.vm_value[b.0], self.vm_value[a.0]).then(a.0.cmp(&b.0))
            });
            let mut drained = 0.0;
            let drain_target = if view.is_down(host) {
                -1.0 // a down host must be fully evacuated
            } else {
                view.beta_overload()
            };
            for vm in vms {
                if (snapshot[host.0] - drained) / cap <= drain_target {
                    break;
                }
                if let Some(target) =
                    self.best_destination(view, vm, &snapshot, &expected_used, &overloaded)
                {
                    let demand = self.expected_demand(view, vm);
                    drained += demand;
                    expected_used[host.0] -= demand;
                    expected_used[target.0] += demand;
                    requests.push(MigrationRequest::new(vm, target));
                }
            }
        }

        // Consolidate expected-underloaded hosts.
        let moving: BTreeSet<VmId> = requests.iter().map(|r| r.vm).collect();
        let mut sources: Vec<PmId> = view
            .hosts()
            .filter(|&h| {
                let cap = view.host_mips(h);
                !view.is_asleep(h)
                    && cap > 0.0
                    && !overloaded.contains(&h)
                    && expected_used[h.0] / cap < self.cfg.underload_threshold
                    && view.vms_on(h).iter().all(|vm| !moving.contains(vm))
            })
            .collect();
        sources.sort_by(|&a, &b| {
            let ua = expected_used[a.0] / view.host_mips(a).max(1e-9);
            let ub = expected_used[b.0] / view.host_mips(b).max(1e-9);
            total_f64(ua, ub).then(a.0.cmp(&b.0))
        });
        let mut evacuating: BTreeSet<PmId> = BTreeSet::new();
        for host in sources {
            let vms = view.vms_on(host);
            let mut excluded: BTreeSet<PmId> = overloaded.clone();
            excluded.insert(host);
            excluded.extend(evacuating.iter().copied());
            for h in view.hosts() {
                if view.is_asleep(h) {
                    excluded.insert(h);
                }
            }
            let mut staged = Vec::new();
            let mut trial_used = expected_used.clone();
            let mut ok = true;
            for &vm in &vms {
                match self.best_destination(view, vm, &trial_used, &trial_used.clone(), &excluded) {
                    Some(target) => {
                        let demand = self.expected_demand(view, vm);
                        trial_used[view.host_of(vm).0] -= demand;
                        trial_used[target.0] += demand;
                        staged.push(MigrationRequest::new(vm, target));
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && !staged.is_empty() {
                expected_used = trial_used;
                evacuating.insert(host);
                requests.extend(staged);
            }
        }

        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{DataCenterConfig, InitialPlacement, Simulation, VmSpec};
    use megh_trace::{PlanetLabConfig, WorkloadTrace};

    #[test]
    fn runs_end_to_end() {
        let trace = PlanetLabConfig::new(8, 3).generate_steps(30);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(4, 8), trace).unwrap();
        let outcome = sim.run(MadVmScheduler::new(MadVmConfig::default()));
        assert_eq!(outcome.records().len(), 30);
        assert!(outcome.report().total_cost_usd > 0.0);
    }

    #[test]
    fn relieves_persistent_overload() {
        let mut config = DataCenterConfig::paper_planetlab(3, 2);
        config.vms = vec![
            VmSpec::new(2500.0, 1024.0, 100.0),
            VmSpec::new(2500.0, 512.0, 100.0),
        ];
        config.initial_placement = InitialPlacement::Explicit(vec![0, 0]);
        let trace = WorkloadTrace::from_rows(300, vec![vec![100.0; 8]; 2]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(MadVmScheduler::new(MadVmConfig::default()));
        assert!(outcome.report().total_migrations >= 1);
        assert_eq!(outcome.records().last().unwrap().overloaded_hosts, 0);
    }

    #[test]
    fn consolidates_underloaded_hosts() {
        let mut config = DataCenterConfig::paper_planetlab(4, 4);
        config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); 4];
        let trace = WorkloadTrace::from_rows(300, vec![vec![5.0; 10]; 4]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let outcome = sim.run(MadVmScheduler::new(MadVmConfig::default()));
        let last = outcome.records().last().unwrap().active_hosts;
        assert!(last <= 2, "expected consolidation, got {last} active hosts");
    }

    #[test]
    fn level_discretization_is_sound() {
        let s = MadVmScheduler::new(MadVmConfig {
            n_levels: 10,
            ..MadVmConfig::default()
        });
        assert_eq!(s.level(0.0), 0);
        assert_eq!(s.level(0.05), 0);
        assert_eq!(s.level(0.95), 9);
        assert_eq!(s.level(1.0), 9);
        assert_eq!(s.level(2.0), 9); // overload clamps
        assert!((s.level_mid(0) - 0.05).abs() < 1e-12);
        assert!((s.level_mid(9) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn transition_learning_predicts_flat_workload() {
        let mut config = DataCenterConfig::paper_planetlab(2, 1);
        config.vms = vec![VmSpec::new(1000.0, 512.0, 100.0)];
        let trace = WorkloadTrace::from_rows(300, vec![vec![45.0; 20]]).unwrap();
        let sim = Simulation::new(config, trace).unwrap();
        let mut scheduler = MadVmScheduler::new(MadVmConfig {
            n_levels: 10,
            ..MadVmConfig::default()
        });
        sim.run(&mut scheduler);
        // Level of 0.45 with L=10 is 4, midpoint 0.45: after 20 flat
        // observations the expectation must be pinned there.
        assert!((scheduler.expected_util[0] - 0.45).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "n_levels must be positive")]
    fn zero_levels_is_rejected() {
        let _ = MadVmScheduler::new(MadVmConfig {
            n_levels: 0,
            ..MadVmConfig::default()
        });
    }

    #[test]
    fn is_deterministic() {
        let trace = PlanetLabConfig::new(6, 4).generate_steps(20);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(3, 6), trace).unwrap();
        let a = sim.run(MadVmScheduler::new(MadVmConfig::default()));
        let b = sim.run(MadVmScheduler::new(MadVmConfig::default()));
        assert_eq!(a.final_placement(), b.final_placement());
        assert_eq!(a.report().total_migrations, b.report().total_migrations);
    }
}
