//! Power-Aware Best-Fit-Decreasing (PABFD) destination selection.
//!
//! Beloglazov's modified BFD: VMs awaiting placement are sorted by CPU
//! demand in decreasing order; each is assigned to the feasible host
//! whose *power increase* from hosting it is smallest. Feasibility means
//! the host is not excluded (e.g. it is itself overloaded) and stays at
//! or below the utilization bound in *demand* after the VM lands —
//! including the VMs already assigned to it earlier in the same round.
//! Like CloudSim's `PowerVmAllocationPolicyMigration*`, the dynamic
//! placement deliberately checks utilization only, not reserved
//! (requested) capacity: consolidating by current demand while ignoring
//! reservations is exactly what lets the MMT family over-pack hosts and
//! churn when the workload bursts.
//!
//! [`PlacementRound`] carries those round-local commitments across
//! multiple placement calls within one scheduling step, so a host that
//! just received evacuees from an overloaded host cannot be
//! over-committed again by the underload-consolidation pass.

use std::collections::BTreeSet;

use megh_sim::{DataCenterView, PmId, VmId};

use crate::total_f64;

/// Round-local placement state: demand committed to
/// each host by placements already made this scheduling step.
#[derive(Debug, Clone)]
pub struct PlacementRound {
    pending_mips: Vec<f64>,
    /// Hosts woken by a placement earlier in this round (so the wake
    /// penalty is charged once).
    woken: Vec<bool>,
}

impl PlacementRound {
    /// Starts an empty round for the view's data center.
    pub fn new(view: &DataCenterView) -> Self {
        Self {
            pending_mips: vec![0.0; view.n_hosts()],
            woken: vec![false; view.n_hosts()],
        }
    }

    /// Demand (MIPS) committed to `host` so far this round.
    pub fn pending_mips(&self, host: PmId) -> f64 {
        self.pending_mips[host.0]
    }

    /// Assigns each VM in `vms` to a destination host by PABFD with the
    /// data center's β as the post-placement utilization bound.
    pub fn place(
        &mut self,
        view: &DataCenterView,
        vms: &[VmId],
        excluded: &BTreeSet<PmId>,
    ) -> Vec<(VmId, PmId)> {
        self.place_bounded(view, vms, excluded, view.beta_overload())
    }

    /// Assigns each VM in `vms` to a destination host by PABFD,
    /// consuming round-local capacity. `excluded` hosts are never
    /// chosen; a host is feasible while its post-placement utilization
    /// stays at or below `util_bound`. Beloglazov's algorithm uses the
    /// *overload-detector threshold* here (it packs right up to the
    /// detection boundary — the source of MMT's migration churn); other
    /// policies pass a safer bound. VMs with no feasible host are
    /// omitted (they stay put).
    pub fn place_bounded(
        &mut self,
        view: &DataCenterView,
        vms: &[VmId],
        excluded: &BTreeSet<PmId>,
        util_bound: f64,
    ) -> Vec<(VmId, PmId)> {
        let mut order: Vec<VmId> = vms.to_vec();
        order.sort_by(|&a, &b| {
            total_f64(view.vm_demand_mips(b), view.vm_demand_mips(a)).then(a.0.cmp(&b.0))
        });

        let mut assignments = Vec::new();
        for vm in order {
            let demand = view.vm_demand_mips(vm);
            let source = view.host_of(vm);
            let mut best: Option<(PmId, f64)> = None;
            for host in view.hosts() {
                if host == source || excluded.contains(&host) || view.is_down(host) {
                    continue;
                }
                let cap = view.host_mips(host);
                if cap <= 0.0 {
                    continue;
                }
                let before = (view.host_used_mips(host) + self.pending_mips[host.0]) / cap;
                let after = before + demand / cap;
                if after > util_bound {
                    continue;
                }
                let increase =
                    view.host_power_watts(host, after) - view.host_power_watts(host, before);
                // Waking a sleeping host costs its idle power too.
                let wake_penalty = if view.is_asleep(host) && !self.woken[host.0] {
                    view.host_power_watts(host, 0.0)
                } else {
                    0.0
                };
                let total = increase + wake_penalty;
                if best.is_none_or(|(_, b)| total < b) {
                    best = Some((host, total));
                }
            }
            if let Some((host, _)) = best {
                self.pending_mips[host.0] += demand;
                if view.is_asleep(host) {
                    self.woken[host.0] = true;
                }
                assignments.push((vm, host));
            }
        }
        assignments
    }
}

/// One-shot PABFD: a fresh [`PlacementRound`] used for a single batch.
///
/// Schedulers that place VMs in several passes within one step should
/// hold a single [`PlacementRound`] instead, so commitments accumulate.
pub fn power_aware_best_fit(
    view: &DataCenterView,
    vms: &[VmId],
    excluded: &BTreeSet<PmId>,
) -> Vec<(VmId, PmId)> {
    PlacementRound::new(view).place(view, vms, excluded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{
        DataCenterConfig, InitialPlacement, MigrationRequest, Scheduler, Simulation, VmSpec,
    };
    use megh_trace::WorkloadTrace;

    fn capture_view(config: DataCenterConfig, trace: WorkloadTrace) -> DataCenterView {
        struct Capture(Option<DataCenterView>);
        impl Scheduler for &mut Capture {
            fn name(&self) -> &str {
                "Capture"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
                self.0 = Some(view.clone());
                Vec::new()
            }
        }
        let mut c = Capture(None);
        Simulation::new(config, trace).unwrap().run_steps(&mut c, 1);
        c.0.unwrap()
    }

    /// 3 hosts (G4, G5, G4), all VMs initially on host 0.
    fn setup(utils: Vec<f64>) -> DataCenterView {
        let n = utils.len();
        let mut config = DataCenterConfig::paper_planetlab(3, n);
        config.vms = vec![VmSpec::new(1000.0, 1024.0, 100.0); n];
        config.initial_placement = InitialPlacement::Explicit(vec![0; n]);
        let trace =
            WorkloadTrace::from_rows(300, utils.into_iter().map(|u| vec![u]).collect()).unwrap();
        capture_view(config, trace)
    }

    #[test]
    fn places_on_feasible_host_with_least_power_increase() {
        let view = setup(vec![50.0, 50.0]);
        let placements =
            power_aware_best_fit(&view, &[VmId(0)], &BTreeSet::from([view.host_of(VmId(0))]));
        assert_eq!(placements.len(), 1);
        let (vm, host) = placements[0];
        assert_eq!(vm, VmId(0));
        // Both targets sleep; the G4 (host 2) has the lower wake + slope
        // cost than the G5 (host 1).
        assert_eq!(host, PmId(2));
    }

    #[test]
    fn excluded_hosts_are_skipped() {
        let view = setup(vec![50.0, 50.0]);
        let source = view.host_of(VmId(0));
        let placements =
            power_aware_best_fit(&view, &[VmId(0)], &BTreeSet::from([source, PmId(2)]));
        assert_eq!(placements.len(), 1);
        assert_eq!(placements[0].1, PmId(1));
    }

    #[test]
    fn no_feasible_host_leaves_vm_unplaced() {
        let view = setup(vec![50.0]);
        let source = view.host_of(VmId(0));
        let mut excluded: BTreeSet<PmId> = view.hosts().collect();
        excluded.remove(&source); // only the source remains, which is skipped anyway
        let placements = power_aware_best_fit(&view, &[VmId(0)], &excluded);
        assert!(placements.is_empty());
    }

    #[test]
    fn round_local_commitments_prevent_overload() {
        // Many VMs at once: PABFD must not stack them all on one host
        // past β.
        let view = setup(vec![80.0; 6]);
        let source = view.host_of(VmId(0));
        let to_move: Vec<VmId> = (0..6).map(VmId).collect();
        let placements = power_aware_best_fit(&view, &to_move, &BTreeSet::from([source]));
        let mut committed = vec![0.0; view.n_hosts()];
        for &(vm, host) in &placements {
            committed[host.0] += view.vm_demand_mips(vm);
        }
        for host in view.hosts() {
            if host == source {
                continue;
            }
            let total = view.host_used_mips(host) + committed[host.0];
            assert!(
                total / view.host_mips(host) <= view.beta_overload() + 1e-9,
                "host {host} over-committed"
            );
        }
    }

    #[test]
    fn commitments_persist_across_calls_in_one_round() {
        // Two separate place() calls on ONE round must share capacity
        // accounting; two independent rounds would double-book.
        let view = setup(vec![80.0; 6]);
        let source = view.host_of(VmId(0));
        let excluded = BTreeSet::from([source]);
        let mut round = PlacementRound::new(&view);
        let first = round.place(&view, &[VmId(0), VmId(1), VmId(2)], &excluded);
        let second = round.place(&view, &[VmId(3), VmId(4), VmId(5)], &excluded);
        let mut committed = vec![0.0; view.n_hosts()];
        for &(vm, host) in first.iter().chain(&second) {
            committed[host.0] += view.vm_demand_mips(vm);
        }
        for host in view.hosts() {
            if host == source {
                continue;
            }
            let total = view.host_used_mips(host) + committed[host.0];
            assert!(
                total / view.host_mips(host) <= view.beta_overload() + 1e-9,
                "host {host} over-committed across calls"
            );
        }
    }

    #[test]
    fn utilization_bound_limits_packing() {
        // 20 near-idle VMs (1 % of 1000 MIPS = 10 MIPS demand each): the
        // demand-only check packs them all despite the reservations —
        // the CloudSim-faithful over-packing behaviour.
        let view = setup(vec![1.0; 20]);
        let source = view.host_of(VmId(0));
        let to_move: Vec<VmId> = (0..20).map(VmId).collect();
        let placements = power_aware_best_fit(&view, &to_move, &BTreeSet::from([source]));
        assert_eq!(placements.len(), 20);
        // But a tight utilization bound refuses them.
        let mut round = PlacementRound::new(&view);
        let tight = round.place_bounded(&view, &to_move, &BTreeSet::from([source]), 0.001);
        assert!(tight.is_empty());
    }

    #[test]
    fn sorts_by_demand_decreasing() {
        // The largest VM gets first pick; with equal specs and varying
        // utilization the ordering is by demand.
        let view = setup(vec![10.0, 90.0, 40.0]);
        let source = view.host_of(VmId(0));
        let placements = power_aware_best_fit(
            &view,
            &[VmId(0), VmId(1), VmId(2)],
            &BTreeSet::from([source]),
        );
        assert_eq!(placements.first().map(|&(vm, _)| vm), Some(VmId(1)));
    }
}
