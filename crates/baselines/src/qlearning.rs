//! Tabular Q-learning — the paper's classical offline-trained comparator.
//!
//! §2.2: "Q-learning is an offline algorithm. We have to go through
//! computationally expensive training periods of a few hundred iterations
//! before using it in an online setup." This implementation makes that
//! dependence explicit: the agent learns a tabular Q-function over a
//! coarse global state (buckets of the overloaded-host fraction and the
//! active-host fraction) and three macro-actions, under ε-greedy
//! exploration during [`QLearningScheduler::train`], and is then frozen
//! (ε = 0) for evaluation. Deployed without training, it acts on an
//! uninformed table — exactly the failure mode the paper criticises.

use std::collections::BTreeSet;

use megh_sim::{DataCenterView, MigrationRequest, PmId, Scheduler, Simulation, StepFeedback, VmId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{power_aware_best_fit, select_minimum_migration_time, total_f64};

/// Buckets per state dimension.
const BUCKETS: usize = 5;
/// Macro-actions: do nothing / relieve hottest host / consolidate coldest.
const ACTIONS: usize = 3;

/// Q-learning hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearningConfig {
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Exploration probability during training.
    pub train_epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QLearningConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            gamma: 0.5,
            train_epsilon: 0.2,
            seed: 17,
        }
    }
}

/// A tabular Q-learning migration scheduler.
///
/// # Examples
///
/// ```
/// use megh_baselines::{QLearningConfig, QLearningScheduler};
/// use megh_sim::Scheduler;
///
/// let s = QLearningScheduler::new(QLearningConfig::default());
/// assert_eq!(s.name(), "Q-learning");
/// assert!(!s.is_trained());
/// ```
#[derive(Debug, Clone)]
pub struct QLearningScheduler {
    cfg: QLearningConfig,
    q: Vec<[f64; ACTIONS]>,
    rng: StdRng,
    exploring: bool,
    trained: bool,
    last: Option<(usize, usize)>,
    pending_reward: Option<f64>,
}

impl QLearningScheduler {
    /// Creates an untrained agent.
    pub fn new(cfg: QLearningConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            q: vec![[0.0; ACTIONS]; BUCKETS * BUCKETS],
            rng,
            exploring: false,
            trained: false,
            last: None,
            pending_reward: None,
        }
    }

    /// Whether [`QLearningScheduler::train`] has been run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Offline training: runs `episodes` passes of the training
    /// simulation with ε-greedy exploration, updating the Q-table from
    /// the realised costs. This is the "computationally expensive
    /// training period" Megh does not need.
    pub fn train(&mut self, sim: &Simulation, episodes: usize) {
        self.exploring = true;
        for _ in 0..episodes {
            self.last = None;
            self.pending_reward = None;
            sim.run(&mut *self);
        }
        self.exploring = false;
        self.trained = true;
        self.last = None;
        self.pending_reward = None;
    }

    fn state_of(view: &DataCenterView) -> usize {
        let hosts = view.n_hosts().max(1) as f64;
        let overloaded = view.hosts().filter(|&h| view.is_overloaded(h)).count() as f64;
        let active = view.active_hosts() as f64;
        let b =
            |fraction: f64| ((fraction.clamp(0.0, 1.0) * BUCKETS as f64) as usize).min(BUCKETS - 1);
        b(overloaded / hosts) * BUCKETS + b(active / hosts)
    }

    fn choose_action(&mut self, state: usize) -> usize {
        if self.exploring && self.rng.gen_bool(self.cfg.train_epsilon) {
            return self.rng.gen_range(0..ACTIONS);
        }
        let row = &self.q[state];
        // Maximise reward = minimise cost (reward is −cost).
        (0..ACTIONS)
            .max_by(|&a, &b| total_f64(row[a], row[b]))
            .unwrap_or(0)
    }

    fn apply_update(&mut self, next_state: usize) {
        if let (Some((s, a)), Some(reward)) = (self.last, self.pending_reward.take()) {
            let max_next = self.q[next_state]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let target = reward + self.cfg.gamma * max_next;
            self.q[s][a] += self.cfg.alpha * (target - self.q[s][a]);
        }
    }

    /// Macro-action 1: relieve the most overloaded host MMT-style.
    fn relieve(&self, view: &DataCenterView) -> Vec<MigrationRequest> {
        let hottest = view
            .hosts()
            .filter(|&h| view.is_overloaded(h))
            .max_by(|&a, &b| {
                total_f64(view.host_utilization(a), view.host_utilization(b)).then(a.0.cmp(&b.0))
            });
        let Some(host) = hottest else {
            return Vec::new();
        };
        let Some(vm) = select_minimum_migration_time(view, host) else {
            return Vec::new();
        };
        let placements = power_aware_best_fit(view, &[vm], &BTreeSet::from([host]));
        placements
            .into_iter()
            .map(|(vm, target)| MigrationRequest::new(vm, target))
            .collect()
    }

    /// Macro-action 2: evacuate the least-utilized active host.
    fn consolidate(&self, view: &DataCenterView) -> Vec<MigrationRequest> {
        let coldest = view
            .hosts()
            .filter(|&h| !view.is_asleep(h) && !view.is_overloaded(h))
            .min_by(|&a, &b| {
                total_f64(view.host_utilization(a), view.host_utilization(b)).then(a.0.cmp(&b.0))
            });
        let Some(host) = coldest else {
            return Vec::new();
        };
        let vms: Vec<VmId> = view.vms_on(host);
        let mut excluded: BTreeSet<PmId> = BTreeSet::from([host]);
        for h in view.hosts() {
            if view.is_asleep(h) || view.is_overloaded(h) {
                excluded.insert(h);
            }
        }
        let placements = power_aware_best_fit(view, &vms, &excluded);
        if placements.len() == vms.len() {
            placements
                .into_iter()
                .map(|(vm, target)| MigrationRequest::new(vm, target))
                .collect()
        } else {
            Vec::new()
        }
    }
}

impl Scheduler for QLearningScheduler {
    fn name(&self) -> &str {
        "Q-learning"
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        let state = Self::state_of(view);
        self.apply_update(state);
        let action = self.choose_action(state);
        self.last = Some((state, action));
        match action {
            1 => self.relieve(view),
            2 => self.consolidate(view),
            _ => Vec::new(),
        }
    }

    fn observe(&mut self, feedback: &StepFeedback) {
        self.pending_reward = Some(-feedback.total_cost_usd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::DataCenterConfig;
    use megh_trace::PlanetLabConfig;

    fn mini_sim() -> Simulation {
        let trace = PlanetLabConfig::new(8, 5).generate_steps(40);
        Simulation::new(DataCenterConfig::paper_planetlab(4, 8), trace).unwrap()
    }

    #[test]
    fn untrained_agent_runs() {
        let sim = mini_sim();
        let outcome = sim.run(QLearningScheduler::new(QLearningConfig::default()));
        assert_eq!(outcome.records().len(), 40);
    }

    #[test]
    fn training_fills_the_table_and_freezes() {
        let sim = mini_sim();
        let mut agent = QLearningScheduler::new(QLearningConfig::default());
        agent.train(&sim, 3);
        assert!(agent.is_trained());
        let nonzero = agent
            .q
            .iter()
            .flat_map(|row| row.iter())
            .filter(|&&v| v != 0.0)
            .count();
        assert!(nonzero > 0, "training must write Q-values");
        // Frozen evaluation still runs deterministically.
        let a = sim.run(&mut agent.clone());
        let b = sim.run(&mut agent.clone());
        assert_eq!(a.report().total_migrations, b.report().total_migrations);
    }

    #[test]
    fn trained_is_no_worse_than_untrained_on_training_workload() {
        let sim = mini_sim();
        let untrained_cost = sim
            .run(QLearningScheduler::new(QLearningConfig::default()))
            .report()
            .total_cost_usd;
        let mut agent = QLearningScheduler::new(QLearningConfig::default());
        agent.train(&sim, 5);
        let trained_cost = sim.run(agent).report().total_cost_usd;
        // Q-learning trains on the reward it optimizes: allow slack but
        // catch gross regressions.
        assert!(
            trained_cost <= untrained_cost * 1.25,
            "trained {trained_cost} vs untrained {untrained_cost}"
        );
    }

    #[test]
    fn state_bucketing_is_in_range() {
        let sim = mini_sim();
        struct Probe;
        impl Scheduler for Probe {
            fn name(&self) -> &str {
                "Probe"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
                let s = QLearningScheduler::state_of(view);
                assert!(s < BUCKETS * BUCKETS);
                Vec::new()
            }
        }
        sim.run(Probe);
    }
}
