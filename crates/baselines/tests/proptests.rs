//! Property-based tests for the baseline schedulers: detectors,
//! placement, and the full MMT loop under arbitrary workloads.

use megh_baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler, OverloadDetector};
use megh_sim::{DataCenterConfig, InitialPlacement, Scheduler, Simulation, VmSpec};
use megh_trace::WorkloadTrace;
use proptest::prelude::*;

fn history_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..=1.5f64, 1..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No detector panics on arbitrary (possibly >1) utilization
    /// histories, and THR's verdict depends only on the last sample.
    #[test]
    fn detectors_are_total(history in history_strategy()) {
        for d in [
            OverloadDetector::thr(0.8),
            OverloadDetector::iqr_default(),
            OverloadDetector::mad_default(),
            OverloadDetector::lr_default(),
            OverloadDetector::lrr_default(),
        ] {
            let _ = d.is_overloaded(&history);
        }
        let thr = OverloadDetector::thr(0.8);
        let last = *history.last().unwrap();
        prop_assert_eq!(thr.is_overloaded(&history), last > 0.8);
    }

    /// A saturated current reading must trip every detector (the hard
    /// backstop): a host at ≥ 100 % is overloaded no matter what the
    /// statistics say.
    #[test]
    fn saturation_trips_every_detector(mut history in history_strategy()) {
        *history.last_mut().unwrap() = 1.2;
        for d in [
            OverloadDetector::thr(0.8),
            OverloadDetector::iqr_default(),
            OverloadDetector::mad_default(),
            OverloadDetector::lr_default(),
            OverloadDetector::lrr_default(),
        ] {
            prop_assert!(
                d.is_overloaded(&history),
                "{d:?} ignored a saturated host"
            );
        }
    }

    /// Raising the static threshold never *adds* overload verdicts.
    #[test]
    fn thr_is_monotone_in_threshold(history in history_strategy(), t1 in 0.1..1.0f64, t2 in 0.1..1.0f64) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let fired_hi = OverloadDetector::thr(hi).is_overloaded(&history);
        let fired_lo = OverloadDetector::thr(lo).is_overloaded(&history);
        prop_assert!(!fired_hi || fired_lo, "higher threshold fired when lower did not");
    }

    /// The full MMT loop never emits self-migrations or out-of-range
    /// targets, and every emitted VM id exists.
    #[test]
    fn mmt_requests_are_well_formed(
        rows in prop::collection::vec(prop::collection::vec(0.0..=100.0f64, 10), 6),
        flavor_idx in 0..5usize,
    ) {
        let trace = WorkloadTrace::from_rows(300, rows).unwrap();
        let mut config = DataCenterConfig::paper_planetlab(4, 6);
        config.vms = vec![VmSpec::new(1200.0, 1024.0, 100.0); 6];
        config.initial_placement = InitialPlacement::RoundRobin;
        let sim = Simulation::new(config, trace).unwrap();

        struct Check(MmtScheduler);
        impl Scheduler for Check {
            fn name(&self) -> &str {
                "Check"
            }
            fn decide(&mut self, view: &megh_sim::DataCenterView) -> Vec<megh_sim::MigrationRequest> {
                let requests = self.0.decide(view);
                let mut seen = std::collections::BTreeSet::new();
                for r in &requests {
                    assert!(r.vm.0 < view.n_vms());
                    assert!(r.target.0 < view.n_hosts());
                    assert_ne!(view.host_of(r.vm), r.target, "self-migration");
                    assert!(seen.insert(r.vm), "duplicate decision for {}", r.vm);
                }
                requests
            }
        }
        let flavor = MmtFlavor::ALL[flavor_idx];
        sim.run(Check(MmtScheduler::new(flavor)));
    }

    /// MadVM's decisions are equally well-formed under arbitrary load.
    #[test]
    fn madvm_requests_are_well_formed(
        rows in prop::collection::vec(prop::collection::vec(0.0..=100.0f64, 8), 5),
    ) {
        let trace = WorkloadTrace::from_rows(300, rows).unwrap();
        let mut config = DataCenterConfig::paper_planetlab(3, 5);
        config.vms = vec![VmSpec::new(1200.0, 1024.0, 100.0); 5];
        let sim = Simulation::new(config, trace).unwrap();

        struct Check(MadVmScheduler);
        impl Scheduler for Check {
            fn name(&self) -> &str {
                "Check"
            }
            fn decide(&mut self, view: &megh_sim::DataCenterView) -> Vec<megh_sim::MigrationRequest> {
                let requests = self.0.decide(view);
                for r in &requests {
                    assert!(r.vm.0 < view.n_vms());
                    assert!(r.target.0 < view.n_hosts());
                    assert_ne!(view.host_of(r.vm), r.target, "self-migration");
                }
                requests
            }
        }
        sim.run(Check(MadVmScheduler::new(MadVmConfig {
            n_levels: 8,
            ..MadVmConfig::default()
        })));
    }

    /// Underload consolidation is all-or-nothing per host: after one
    /// MMT step from an idle spread state, every source host it touched
    /// is fully emptied (no half-evacuations that strand a host awake).
    #[test]
    fn consolidation_is_all_or_nothing(util in 0.0..8.0f64) {
        let n = 6;
        let trace = WorkloadTrace::from_rows(300, vec![vec![util; 2]; n]).unwrap();
        let mut config = DataCenterConfig::paper_planetlab(6, n);
        config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); n];
        config.initial_placement = InitialPlacement::RoundRobin;
        let sim = Simulation::new(config, trace).unwrap();

        struct Capture {
            inner: MmtScheduler,
            moved_from: std::collections::BTreeMap<usize, usize>,
            host_counts: Vec<usize>,
            captured: bool,
        }
        impl Scheduler for Capture {
            fn name(&self) -> &str {
                "Capture"
            }
            fn decide(&mut self, view: &megh_sim::DataCenterView) -> Vec<megh_sim::MigrationRequest> {
                let requests = self.inner.decide(view);
                if !self.captured {
                    self.captured = true;
                    for h in view.hosts() {
                        self.host_counts.push(view.vms_on(h).len());
                    }
                    for r in &requests {
                        *self.moved_from.entry(view.host_of(r.vm).0).or_insert(0) += 1;
                    }
                }
                requests
            }
        }
        let mut capture = Capture {
            inner: MmtScheduler::new(MmtFlavor::Thr),
            moved_from: Default::default(),
            host_counts: Vec::new(),
            captured: false,
        };
        sim.run_steps(&mut capture, 1);
        for (&host, &moved) in &capture.moved_from {
            prop_assert_eq!(
                moved,
                capture.host_counts[host],
                "host {} lost {} of {} VMs — a stranded half-evacuation",
                host,
                moved,
                capture.host_counts[host]
            );
        }
    }
}
