//! Characteristic-signal comparison of the five overload detectors.
//!
//! Beloglazov's detectors differ in *when* they fire on the same host
//! history; these tests pin each family's signature behaviour on the
//! canonical signals — step change, slow ramp, isolated spike, high
//! steady state, and volatile noise — which is what separates the MMT
//! columns of Tables 2–3.

use megh_baselines::OverloadDetector;

fn all_detectors() -> Vec<(&'static str, OverloadDetector)> {
    vec![
        ("THR", OverloadDetector::thr(0.8)),
        ("IQR", OverloadDetector::iqr_default()),
        ("MAD", OverloadDetector::mad_default()),
        ("LR", OverloadDetector::lr_default()),
        ("LRR", OverloadDetector::lrr_default()),
    ]
}

/// Signal 1 — step change: jumps from 0.4 to 0.85 and stays there.
/// Every detector must fire once the new level is established.
#[test]
fn step_change_is_eventually_detected_by_all() {
    // Half the window at the new level: even the robust MAD statistic
    // sees it (median deviation 0.225 → threshold 0.44 < 0.85).
    let mut history = vec![0.4; 6];
    history.extend(vec![0.85; 6]);
    for (name, d) in all_detectors() {
        assert!(
            d.is_overloaded(&history),
            "{name} missed an established step"
        );
    }
}

/// Signal 2 — slow ramp toward saturation: only the predictive (LR)
/// detectors fire *before* the static threshold is crossed.
#[test]
fn lr_fires_on_a_ramp_before_thr() {
    // Rising 0.40, 0.45, …, 0.80: at (not past) THR's threshold, but
    // the extrapolated next value is 0.85 and 1.2 × 0.85 ≥ 1.
    let ramp: Vec<f64> = (0..9).map(|i| 0.40 + 0.05 * i as f64).collect();
    assert!(!OverloadDetector::thr(0.8).is_overloaded(&ramp));
    assert!(
        OverloadDetector::lr_default().is_overloaded(&ramp),
        "LR must extrapolate the ramp past 1/1.2"
    );
    assert!(
        OverloadDetector::lrr_default().is_overloaded(&ramp),
        "LRR must extrapolate the (clean) ramp too"
    );
}

/// Signal 3 — high steady state at 0.75: THR (0.8) tolerates it; the
/// adaptive statistics see zero spread and clamp their thresholds to
/// ~1, also tolerating it. Nobody churns on a flat host.
#[test]
fn flat_high_load_below_threshold_fires_nobody() {
    let flat = vec![0.75; 10];
    for (name, d) in all_detectors() {
        assert!(!d.is_overloaded(&flat), "{name} fired on a flat 75 % host");
    }
}

/// Signal 4 — volatile noise around a moderate mean: the IQR detector's
/// adaptive threshold (1 − 1.5·IQR) collapses under high spread, firing
/// where THR would not.
#[test]
fn iqr_fires_under_volatility_where_thr_does_not() {
    let volatile = vec![0.15, 0.72, 0.10, 0.70, 0.12, 0.71, 0.11, 0.70];
    assert!(!OverloadDetector::thr(0.8).is_overloaded(&volatile));
    assert!(
        OverloadDetector::iqr_default().is_overloaded(&volatile),
        "IQR must tighten under high spread"
    );
}

/// Signal 5 — a single spike in otherwise calm history, already past:
/// the robust statistics (MAD, LRR) must NOT fire on the memory of it.
#[test]
fn robust_detectors_forgive_a_past_spike() {
    let spiky = vec![0.3, 0.3, 0.95, 0.3, 0.3, 0.3, 0.3, 0.35];
    assert!(
        !OverloadDetector::mad_default().is_overloaded(&spiky),
        "MAD must be robust to one past spike"
    );
    assert!(
        !OverloadDetector::lrr_default().is_overloaded(&spiky),
        "LRR must be robust to one past spike"
    );
    assert!(!OverloadDetector::thr(0.8).is_overloaded(&spiky));
}

/// Signal 6 — saturation right now: the hard backstop. Everyone fires,
/// regardless of how the statistics feel about history.
#[test]
fn current_saturation_fires_everyone() {
    let saturated = vec![0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 1.1];
    for (name, d) in all_detectors() {
        assert!(
            d.is_overloaded(&saturated),
            "{name} ignored current saturation"
        );
    }
}

/// Cross-check of relative eagerness: over a battery of random-ish
/// mixed signals, LR (predictive) must fire at least as often as LRR
/// (robust predictive) — robustness only ever removes false positives
/// caused by outliers.
#[test]
fn lrr_is_never_more_eager_than_lr_on_clean_signals() {
    // Deterministic pseudo-random histories without outliers: smooth
    // sinusoid fragments at different levels and slopes.
    let mut lr_fires = 0;
    let mut lrr_fires = 0;
    for k in 0..50 {
        let base = 0.2 + 0.05 * (k % 10) as f64;
        let slope = -0.02 + 0.005 * (k % 9) as f64;
        let history: Vec<f64> = (0..10)
            .map(|t| (base + slope * t as f64 + 0.01 * ((t * k) % 3) as f64).clamp(0.0, 1.0))
            .collect();
        if OverloadDetector::lr_default().is_overloaded(&history) {
            lr_fires += 1;
        }
        if OverloadDetector::lrr_default().is_overloaded(&history) {
            lrr_fires += 1;
        }
    }
    assert!(
        lrr_fires <= lr_fires,
        "LRR fired {lrr_fires} > LR {lr_fires} on clean signals"
    );
}
