//! Crash recovery through the real binary: SIGKILL the daemon
//! mid-session and verify the restarted process recovers the last
//! explicit checkpoint and serves byte-identical decisions for it.
//!
//! This is the ungraceful sibling of the in-process restart test in
//! `crates/serve/tests/daemon.rs` — no shutdown message, no final
//! checkpoint, just `kill -9`.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use megh_core::{load_checkpoint, Config, MeghConfig};
use megh_serve::{Client, Listen, Request, Response};

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("megh-cli-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(socket: &Path, checkpoint: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_megh"))
        .args([
            "serve",
            "--listen",
            &format!("unix:{}", socket.display()),
            "--checkpoint",
            &checkpoint.display().to_string(),
            "--vms",
            "8",
            "--hosts",
            "4",
            "--checkpoint-every",
            "0",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn megh serve")
}

fn client_bin(socket: &Path, extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_megh"))
        .args(["client", "--connect", &format!("unix:{}", socket.display())])
        .args(extra)
        .output()
        .expect("run megh client");
    assert!(out.status.success(), "megh client failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf8 response")
}

#[test]
fn sigkill_mid_update_restarts_from_last_checkpoint() {
    let dir = temp_dir();
    let socket = dir.join("megh.sock");
    let checkpoint = dir.join("checkpoint.json");
    let listen = Listen::parse(&format!("unix:{}", socket.display()));

    let mut child = spawn_daemon(&socket, &checkpoint);
    let mut client =
        Client::connect_retry(&listen, 200, Duration::from_millis(20)).expect("daemon up");

    // Learn, persist explicitly, and record the exact decision bytes
    // for the persisted state.
    for i in 0..30 {
        let r = client
            .observe(i % 32, 0.05 + (i % 5) as f64 * 0.02)
            .unwrap();
        assert!(matches!(r, Response::Queued { .. }), "{r:?}");
    }
    assert!(matches!(
        client.sync().unwrap(),
        Response::Synced { steps: 30 }
    ));
    assert!(matches!(
        client.checkpoint().unwrap(),
        Response::Checkpointed { steps: 30 }
    ));
    let before: Vec<String> = (0..8)
        .map(|seed| client.request_raw(&Request::Decide { seed }).unwrap())
        .collect();

    // More learning that is never persisted (--checkpoint-every 0 and
    // no further checkpoint request), then kill -9 mid-session.
    for i in 0..10 {
        client.observe(i, 0.3).unwrap();
    }
    assert!(matches!(
        client.sync().unwrap(),
        Response::Synced { steps: 40 }
    ));
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");

    // The checkpoint on disk is the 30-step one: it parses, its
    // checksum verifies (load_checkpoint re-validates it), and its
    // config fingerprints identically to the daemon's cold-start one.
    let cp = load_checkpoint(&checkpoint).expect("recovered checkpoint");
    assert_eq!(cp.steps, 30, "post-checkpoint learning must not persist");
    assert_eq!(
        Config::checksum(&cp.config),
        Config::checksum(&MeghConfig::paper_defaults(8, 4))
    );

    // Restart from the recovered checkpoint; the stale socket file left
    // by the kill must not prevent the new daemon from binding.
    let mut child = spawn_daemon(&socket, &checkpoint);
    let mut client =
        Client::connect_retry(&listen, 200, Duration::from_millis(20)).expect("daemon back up");
    let Response::Stats { steps, .. } = client.request(&Request::Stats).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(steps, 30);
    for (seed, expected) in before.iter().enumerate() {
        let replayed = client
            .request_raw(&Request::Decide { seed: seed as u64 })
            .unwrap();
        assert_eq!(&replayed, expected, "seed {seed} diverged after crash");
    }

    // Exercise the `megh client` subcommand end-to-end too: its raw
    // stats line must report the recovered step count.
    let stats_line = client_bin(&socket, &["--op", "stats"]);
    assert!(stats_line.contains("\"steps\":30"), "{stats_line}");
    let bye = client_bin(&socket, &["--op", "shutdown"]);
    assert!(bye.contains("\"op\":\"bye\""), "{bye}");

    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "graceful shutdown exit: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
