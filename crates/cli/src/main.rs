//! `megh` — the command-line front end of the Megh reproduction.
//!
//! See `megh help` for usage; the heavy lifting lives in the library
//! crates (`megh-sim`, `megh-core`, `megh-baselines`, `megh-trace`).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = args::Args::parse(std::env::args().skip(1));
    match commands::dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
