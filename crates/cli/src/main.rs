//! `megh` — the command-line front end of the Megh reproduction.
//!
//! See `megh help` for usage; the heavy lifting lives in the library
//! crates (`megh-sim`, `megh-core`, `megh-baselines`, `megh-trace`).

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

/// Counts every heap allocation the process performs. `simulate` reads
/// the per-run deltas to report hot-path allocation behaviour alongside
/// decision latency (see `latency_alloc_report.json`).
#[global_allocator]
static ALLOC: megh_core::diagnostics::CountingAllocator =
    megh_core::diagnostics::CountingAllocator::system();

fn main() -> ExitCode {
    let parsed = args::Args::parse(std::env::args().skip(1));
    match commands::dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
