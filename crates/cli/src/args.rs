//! A small, dependency-free argument parser: `--key value` pairs and
//! positional arguments.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand, flags, and positionals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The first positional token (the subcommand), if any.
    pub command: Option<String>,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
}

/// Errors produced while interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A required option was not supplied.
    Missing(&'static str),
    /// An option's value did not parse.
    Invalid {
        /// Option name.
        key: String,
        /// Supplied value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// The subcommand is unknown.
    UnknownCommand(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Missing(key) => write!(f, "missing required option --{key}"),
            Self::Invalid {
                key,
                value,
                expected,
            } => {
                write!(f, "option --{key}={value:?} is not a valid {expected}")
            }
            Self::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?} (try `megh help`)"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl From<megh_flags::FlagError> for ArgsError {
    fn from(err: megh_flags::FlagError) -> Self {
        match err {
            megh_flags::FlagError::Missing(key) => Self::Missing(key),
            megh_flags::FlagError::Invalid {
                key,
                value,
                expected,
            } => Self::Invalid {
                key,
                value,
                expected,
            },
        }
    }
}

/// The parsed CLI arguments can back a [`megh_flags::FlagTable`], so the
/// subcommands read their options through declared flag tables (which
/// also generate the help text).
impl megh_flags::FlagSource for Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.get(name)
    }

    fn is_set(&self, name: &str) -> bool {
        self.has_flag(name)
    }
}

impl Args {
    /// Parses a token stream (not including the program name).
    ///
    /// `--key value` forms an option unless the next token is itself an
    /// option/flag, in which case `--key` is a bare flag. `--key=value`
    /// is also accepted.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Self {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(stripped) = token.strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    args.options.insert(key.to_string(), value.to_string());
                } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.options
                        .insert(stripped.to_string(), tokens[i + 1].clone());
                    i += 1;
                } else {
                    args.flags.push(stripped.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(token.clone());
            } else {
                args.positionals.push(token.clone());
            }
            i += 1;
        }
        args
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Whether a bare flag was supplied.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let args = parse("simulate extra --hosts 20 --vms 40 --full");
        assert_eq!(args.command.as_deref(), Some("simulate"));
        assert_eq!(args.get("hosts"), Some("20"));
        assert_eq!(args.get("vms"), Some("40"));
        assert!(args.has_flag("full"));
        assert_eq!(args.positionals, vec!["extra"]);
    }

    #[test]
    fn dashed_token_followed_by_value_is_an_option() {
        // Documented greedy semantics: `--full extra` binds as an
        // option; trailing flags must come last or use `=`.
        let args = parse("simulate --full extra");
        assert_eq!(args.get("full"), Some("extra"));
        assert!(!args.has_flag("full"));
    }

    #[test]
    fn equals_form_is_accepted() {
        let args = parse("simulate --hosts=8");
        assert_eq!(args.get("hosts"), Some("8"));
    }

    #[test]
    fn flag_before_option_is_not_swallowed() {
        let args = parse("run --verbose --hosts 4");
        assert!(args.has_flag("verbose"));
        assert_eq!(args.get("hosts"), Some("4"));
    }

    #[test]
    fn args_back_a_flag_table() {
        use megh_flags::{FlagSource as _, FlagSpec, FlagTable};
        const T: FlagTable = FlagTable::new(
            "t",
            &[
                FlagSpec::opt("n", "N", "5", "a number"),
                FlagSpec::switch("v", "verbose"),
            ],
        );
        let args = parse("x --n 12 --v");
        assert_eq!(args.value("n"), Some("12"));
        assert!(args.is_set("v"));
        assert_eq!(T.parsed(&args, "n", 5usize, "integer").unwrap(), 12);
        assert_eq!(T.parsed(&parse("x"), "n", 5usize, "integer").unwrap(), 5);
        let err: ArgsError = T
            .parsed(&parse("x --n abc"), "n", 5usize, "integer")
            .unwrap_err()
            .into();
        assert!(matches!(err, ArgsError::Invalid { .. }));
    }

    #[test]
    fn empty_input_is_empty() {
        let args = parse("");
        assert_eq!(args.command, None);
        assert!(args.options.is_empty());
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            ArgsError::Missing("x"),
            ArgsError::Invalid {
                key: "k".into(),
                value: "v".into(),
                expected: "int",
            },
            ArgsError::UnknownCommand("zz".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
