//! CLI subcommand implementations.

use megh_baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler};
use megh_core::diagnostics::{decision_latency, LatencyStats};
use megh_core::{HierMegh, MeghAgent, MeghConfig, PeriodicMeghAgent};
use megh_flags::{FlagSpec, FlagTable};
use megh_serve::{Client as ServeClient, Listen, Request as ServeRequest, ServeOptions};
use megh_sim::{
    run_streamed, run_sweep, DataCenterConfig, HostOutage, InitialPlacement, NoOpScheduler,
    Scheduler, SimOptions, Simulation, SimulationOutcome, SlavMetrics, SummaryReport, SweepReport,
};
use megh_trace::{
    load_csv, load_planetlab_dir, CsvSource, DiurnalConfig, GoogleConfig, PlanetLabConfig,
    PlanetLabDirSource, TraceSource, TraceStats, WorkloadTrace,
};
use serde::Serialize;

use crate::args::{Args, ArgsError};

/// Workload families the CLI accepts.
pub const WORKLOAD_NAMES: [&str; 3] = ["planetlab", "google", "diurnal"];

/// Scheduler names accepted by `--scheduler` (plus `megh-p<N>` and
/// `hier<N>`).
const SCHEDULER_HELP: &str =
    "megh|megh-p<N>|hier|hier<N>|thr-mmt|iqr-mmt|mad-mmt|lr-mmt|lrr-mmt|madvm|noop";

/// Options shared by every simulation-running subcommand. Each table
/// below is the single declaration of its flags: the typed getters and
/// the `megh help` text are both generated from it.
const COMMON_FLAGS: FlagTable = FlagTable::new(
    "COMMON OPTIONS",
    &[
        FlagSpec::opt(
            "workload",
            "planetlab|google|diurnal",
            "planetlab",
            "workload family",
        ),
        FlagSpec::opt("hosts", "N", "20", "number of hosts"),
        FlagSpec::opt("vms", "N", "40", "number of VMs"),
        FlagSpec::opt("days", "N", "1", "simulated days (288 steps each)"),
        FlagSpec::opt("seed", "N", "42", "RNG seed"),
        FlagSpec::opt(
            "outage",
            "H:FROM:UNTIL[,..]",
            "none",
            "schedule host outages",
        ),
    ],
);

/// Streaming-engine knobs honoured by `simulate` and `sweep`.
const ENGINE_FLAGS: FlagTable = FlagTable::new(
    "ENGINE OPTIONS (simulate, sweep)",
    &[
        FlagSpec::opt(
            "chunk-steps",
            "N",
            "288",
            "trace steps resident in memory per chunk",
        ),
        FlagSpec::opt(
            "sim-threads",
            "N",
            "1",
            "worker threads for per-step accounting",
        ),
        FlagSpec::opt(
            "progress-every",
            "N",
            "0",
            "print progress/ETA to stderr every N steps (0 = off)",
        ),
    ],
);

const SIMULATE_FLAGS: FlagTable = FlagTable::new(
    "simulate",
    &[
        FlagSpec::opt("scheduler", "NAME|all", "megh", SCHEDULER_HELP),
        FlagSpec::switch("slav", "also print SLATAH/PDM/SLAV/ESV"),
        FlagSpec::opt(
            "file",
            "PATH",
            "",
            "simulate a trace CSV (or PlanetLab directory) instead of a generated workload",
        ),
        FlagSpec::switch(
            "stream",
            "pull the trace lazily chunk-by-chunk instead of materializing it",
        ),
        FlagSpec::switch("mem-stats", "print the process peak RSS after the run"),
        FlagSpec::opt(
            "out",
            "FILE",
            "",
            "write the summary as JSON; also writes latency_alloc_report.json next to FILE",
        ),
    ],
);

const SWEEP_FLAGS: FlagTable = FlagTable::new(
    "sweep",
    &[
        FlagSpec::opt("scheduler", "NAME", "megh", SCHEDULER_HELP),
        FlagSpec::opt(
            "schedulers",
            "a,b,c",
            "",
            "sweep several schedulers over the same seeds and rank by mean total cost",
        ),
        FlagSpec::opt("seeds", "N", "8", "seeds --seed..--seed+N-1"),
        FlagSpec::opt("threads", "T", "1", "sweep worker threads (byte-identical --out for any T)"),
        FlagSpec::opt(
            "out",
            "FILE",
            "",
            "write the aggregated sweep report as JSON (object for one scheduler, array for several)",
        ),
    ],
);

const TRACE_GEN_FLAGS: FlagTable = FlagTable::new(
    "trace-gen",
    &[FlagSpec::opt(
        "out",
        "FILE",
        "",
        "destination CSV (required)",
    )],
);

const TRACE_STATS_FLAGS: FlagTable = FlagTable::new(
    "trace-stats",
    &[FlagSpec::opt(
        "file",
        "FILE",
        "",
        "trace CSV to summarize (required)",
    )],
);

const SERVE_FLAGS: FlagTable = FlagTable::new(
    "serve",
    &[
        FlagSpec::opt(
            "checkpoint",
            "FILE",
            "",
            "checkpoint path (required); loaded on start if present, written atomically on shutdown",
        ),
        FlagSpec::opt("listen", "ADDR|unix:PATH", "127.0.0.1:7787", "listen address"),
        FlagSpec::opt(
            "checkpoint-every",
            "N",
            "0",
            "auto-checkpoint every N applied updates (0 = only on explicit request/shutdown)",
        ),
        FlagSpec::opt("writer-seed", "N", "", "writer-thread RNG seed"),
        FlagSpec::opt("vms", "N", "40", "cold-start action space: VMs"),
        FlagSpec::opt("hosts", "N", "20", "cold-start action space: hosts"),
        FlagSpec::opt(
            "shards",
            "N",
            "1",
            "hierarchical decide: serve each decide from the shard its seed hashes to (1 = flat)",
        ),
    ],
);

const CLIENT_FLAGS: FlagTable = FlagTable::new(
    "client",
    &[
        FlagSpec::opt("connect", "ADDR|unix:PATH", "", "daemon address (required)"),
        FlagSpec::opt(
            "op",
            "decide|observe|sync|checkpoint|stats|shutdown",
            "",
            "request (required)",
        ),
        FlagSpec::opt("seed", "N", "0", "decide: decision seed"),
        FlagSpec::opt("action", "N", "", "observe: applied action index"),
        FlagSpec::opt("cost", "C", "", "observe: observed cost"),
        FlagSpec::opt("retries", "N", "50", "connection attempts, 20ms apart"),
        FlagSpec::opt(
            "timeout-ms",
            "N",
            "5000",
            "connect/read/write deadline per attempt (0 = wait forever)",
        ),
    ],
);

/// Common simulation parameters parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Workload family ("planetlab" or "google").
    pub workload: String,
    /// Number of hosts.
    pub hosts: usize,
    /// Number of VMs.
    pub vms: usize,
    /// Simulated days (288 steps each).
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
    /// Scheduled host outages.
    pub outages: Vec<HostOutage>,
}

impl SimSpec {
    /// Extracts the common parameters, with sane small defaults.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for unparsable or unknown values.
    pub fn from_args(args: &Args) -> Result<Self, ArgsError> {
        let workload = COMMON_FLAGS
            .get(args, "workload")
            .unwrap_or("planetlab")
            .to_string();
        if !WORKLOAD_NAMES.contains(&workload.as_str()) {
            return Err(ArgsError::Invalid {
                key: "workload".into(),
                value: workload,
                expected: "one of planetlab|google|diurnal",
            });
        }
        // --outage HOST:FROM:UNTIL (repeatable via comma separation).
        let mut outages = Vec::new();
        if let Some(spec) = COMMON_FLAGS.get(args, "outage") {
            for part in spec.split(',') {
                let fields: Vec<&str> = part.split(':').collect();
                let parse = |s: &str| -> Result<usize, ArgsError> {
                    s.parse().map_err(|_| ArgsError::Invalid {
                        key: "outage".into(),
                        value: part.to_string(),
                        expected: "HOST:FROM:UNTIL with integers",
                    })
                };
                if fields.len() != 3 {
                    return Err(ArgsError::Invalid {
                        key: "outage".into(),
                        value: part.to_string(),
                        expected: "HOST:FROM:UNTIL with integers",
                    });
                }
                outages.push(HostOutage {
                    host: parse(fields[0])?,
                    from_step: parse(fields[1])?,
                    until_step: parse(fields[2])?,
                });
            }
        }
        Ok(Self {
            workload,
            hosts: COMMON_FLAGS.parsed(args, "hosts", 20, "integer")?,
            vms: COMMON_FLAGS.parsed(args, "vms", 40, "integer")?,
            days: COMMON_FLAGS.parsed(args, "days", 1, "integer")?,
            seed: COMMON_FLAGS.parsed(args, "seed", 42, "integer")?,
            outages,
        })
    }

    /// Total steps implied by `--days`.
    pub fn n_steps(&self) -> usize {
        self.days * megh_trace::STEPS_PER_DAY
    }

    /// Builds just the data-center configuration (streaming mode pulls
    /// the trace lazily from a generator source instead).
    pub fn build_config(&self) -> DataCenterConfig {
        let mut config = if self.workload == "google" {
            DataCenterConfig::paper_google(self.hosts, self.vms)
        } else {
            DataCenterConfig::paper_planetlab(self.hosts, self.vms)
        };
        config.initial_placement = InitialPlacement::DemandPacked;
        config.outages = self.outages.clone();
        config
    }

    /// Builds the data-center configuration and a materialized trace.
    pub fn build(&self) -> (DataCenterConfig, WorkloadTrace) {
        let trace = match self.workload.as_str() {
            "google" => GoogleConfig::new(self.vms, self.seed).generate(self.days),
            "diurnal" => DiurnalConfig::new(self.vms, self.seed).generate(self.days),
            _ => PlanetLabConfig::new(self.vms, self.seed).generate(self.days),
        };
        (self.build_config(), trace)
    }
}

/// Instantiates a scheduler by CLI name.
///
/// The boxed return type is what lets the seed sweep fan one `name`
/// across worker threads: each worker calls this factory with its own
/// seed and gets an owned, `Send` scheduler.
///
/// # Errors
///
/// Returns [`ArgsError`] for unknown scheduler names.
pub fn build_named_scheduler(
    name: &str,
    config: &DataCenterConfig,
    seed: u64,
) -> Result<Box<dyn Scheduler + Send>, ArgsError> {
    let megh_cfg = || {
        let mut cfg = MeghConfig::paper_defaults(config.vms.len(), config.pms.len());
        cfg.seed = seed;
        cfg
    };
    let scheduler: Box<dyn Scheduler + Send> = match name {
        "megh" => Box::new(MeghAgent::new(megh_cfg())),
        "thr-mmt" => Box::new(MmtScheduler::new(MmtFlavor::Thr)),
        "iqr-mmt" => Box::new(MmtScheduler::new(MmtFlavor::Iqr)),
        "mad-mmt" => Box::new(MmtScheduler::new(MmtFlavor::Mad)),
        "lr-mmt" => Box::new(MmtScheduler::new(MmtFlavor::Lr)),
        "lrr-mmt" => Box::new(MmtScheduler::new(MmtFlavor::Lrr)),
        "madvm" => Box::new(MadVmScheduler::new(MadVmConfig::default())),
        "noop" => Box::new(NoOpScheduler),
        // hier: the two-level sharded Megh with auto-sized shards
        // (~64 hosts per shard).
        "hier" => {
            let shards = config.pms.len().div_ceil(64).max(1);
            Box::new(HierMegh::sharded(megh_cfg(), shards))
        }
        other => {
            // megh-p<N>: the periodicity-aware variant.
            if let Some(phases) = other
                .strip_prefix("megh-p")
                .and_then(|p| p.parse::<usize>().ok())
                .filter(|&p| p > 0)
            {
                Box::new(PeriodicMeghAgent::new(megh_cfg(), phases))
            } else if let Some(shards) = other
                .strip_prefix("hier")
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&s| s > 0 && s <= config.pms.len().max(1))
            {
                // hier<N>: explicit shard count.
                Box::new(HierMegh::sharded(megh_cfg(), shards))
            } else {
                return Err(ArgsError::Invalid {
                    key: "scheduler".into(),
                    value: other.to_string(),
                    expected:
                        "one of megh|megh-p<N>|hier|hier<N>|thr-mmt|iqr-mmt|mad-mmt|lr-mmt|lrr-mmt|madvm|noop|all",
                });
            }
        }
    };
    Ok(scheduler)
}

/// Instantiates a scheduler by CLI name and runs it.
///
/// # Errors
///
/// Returns [`ArgsError`] for unknown scheduler names.
pub fn run_named_scheduler(
    name: &str,
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
    seed: u64,
) -> Result<SimulationOutcome, ArgsError> {
    run_named_scheduler_with(name, config, trace, seed, &SimOptions::default())
}

/// [`run_named_scheduler`] with explicit engine options
/// (`--chunk-steps`, `--sim-threads`, `--progress-every`).
///
/// # Errors
///
/// Returns [`ArgsError`] for unknown scheduler names.
pub fn run_named_scheduler_with(
    name: &str,
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
    seed: u64,
    options: &SimOptions,
) -> Result<SimulationOutcome, ArgsError> {
    let sim = Simulation::new(config.clone(), trace.clone())
        .map_err(setup_error)?
        .with_options(*options);
    let scheduler = build_named_scheduler(name, config, seed)?;
    Ok(sim.run(scheduler))
}

/// Runs one named scheduler over a *streamed* generator source: the
/// trace is produced chunk-by-chunk inside the engine and never fully
/// materialized, so memory stays flat in `--days`.
///
/// # Errors
///
/// Returns [`ArgsError`] for unknown scheduler names or an
/// inconsistent configuration.
pub fn run_streamed_named(
    name: &str,
    config: &DataCenterConfig,
    spec: &SimSpec,
    options: &SimOptions,
) -> Result<SimulationOutcome, ArgsError> {
    let scheduler = build_named_scheduler(name, config, spec.seed)?;
    let steps = spec.n_steps();
    match spec.workload.as_str() {
        "google" => run_streamed(
            config,
            GoogleConfig::new(spec.vms, spec.seed).source(steps),
            scheduler,
            *options,
        ),
        "diurnal" => run_streamed(
            config,
            DiurnalConfig::new(spec.vms, spec.seed).source(steps),
            scheduler,
            *options,
        ),
        _ => run_streamed(
            config,
            PlanetLabConfig::new(spec.vms, spec.seed).source(steps),
            scheduler,
            *options,
        ),
    }
    .map_err(setup_error)
}

fn setup_error(e: megh_sim::SimError) -> ArgsError {
    ArgsError::Invalid {
        key: "setup".into(),
        value: e.to_string(),
        expected: "consistent configuration",
    }
}

fn trace_file_error(path: &str, e: megh_trace::TraceCsvError) -> ArgsError {
    ArgsError::Invalid {
        key: "file".into(),
        value: format!("{path}: {e}"),
        expected: "a readable trace CSV or PlanetLab directory",
    }
}

/// The data-center configuration for a file trace: `--hosts` and the
/// workload family come from the CLI, the VM count from the file.
fn file_config(spec: &SimSpec, n_vms: usize) -> DataCenterConfig {
    let mut config = if spec.workload == "google" {
        DataCenterConfig::paper_google(spec.hosts, n_vms)
    } else {
        DataCenterConfig::paper_planetlab(spec.hosts, n_vms)
    };
    config.initial_placement = InitialPlacement::DemandPacked;
    config.outages = spec.outages.clone();
    config
}

/// Materializes a trace file: a directory is read as a PlanetLab
/// per-VM file tree, anything else as a trace CSV.
///
/// # Errors
///
/// Returns [`ArgsError`] for unreadable or malformed inputs.
pub fn load_trace_file(path: &str) -> Result<WorkloadTrace, ArgsError> {
    if std::path::Path::new(path).is_dir() {
        load_planetlab_dir(path).map_err(|e| trace_file_error(path, e))
    } else {
        load_csv(path).map_err(|e| trace_file_error(path, e))
    }
}

/// Peeks a trace file's header (VM count) without materializing it.
///
/// # Errors
///
/// Returns [`ArgsError`] for unreadable or malformed inputs.
pub fn peek_trace_file_vms(path: &str) -> Result<usize, ArgsError> {
    let header = if std::path::Path::new(path).is_dir() {
        PlanetLabDirSource::open(path)
            .map_err(|e| trace_file_error(path, e))?
            .header()
    } else {
        CsvSource::open(path)
            .map_err(|e| trace_file_error(path, e))?
            .header()
    };
    Ok(header.n_vms)
}

/// Runs one named scheduler over a *streamed* trace file: the rows are
/// pulled through [`CsvSource`]/[`PlanetLabDirSource`] chunk-by-chunk
/// inside the engine and the full trace is never resident, so memory
/// stays flat in the file length.
///
/// # Errors
///
/// Returns [`ArgsError`] for unknown scheduler names, unreadable trace
/// files, or an inconsistent configuration.
pub fn run_streamed_file(
    name: &str,
    config: &DataCenterConfig,
    path: &str,
    seed: u64,
    options: &SimOptions,
) -> Result<SimulationOutcome, ArgsError> {
    let scheduler = build_named_scheduler(name, config, seed)?;
    if std::path::Path::new(path).is_dir() {
        let source = PlanetLabDirSource::open(path).map_err(|e| trace_file_error(path, e))?;
        run_streamed(config, source, scheduler, *options)
    } else {
        let source = CsvSource::open(path).map_err(|e| trace_file_error(path, e))?;
        run_streamed(config, source, scheduler, *options)
    }
    .map_err(setup_error)
}

/// Parses the shared `--chunk-steps` / `--sim-threads` /
/// `--progress-every` engine knobs.
///
/// # Errors
///
/// Returns [`ArgsError`] for unparsable or zero values.
pub fn engine_options(args: &Args) -> Result<SimOptions, ArgsError> {
    let defaults = SimOptions::default();
    Ok(SimOptions {
        chunk_steps: ENGINE_FLAGS.positive_usize(args, "chunk-steps", defaults.chunk_steps)?,
        sim_threads: ENGINE_FLAGS.positive_usize(args, "sim-threads", defaults.sim_threads)?,
        progress_every: ENGINE_FLAGS.parsed(args, "progress-every", 0, "integer")?,
    })
}

/// Peak resident-set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One scheduler's hot-path observability record written to
/// `latency_alloc_report.json`: the decision-latency summary the
/// simulator recorded plus the process-wide heap-allocation delta
/// across the whole run (simulation bookkeeping included — the point
/// of the number is its *growth rate* across schedulers and sizes).
#[derive(Debug, Clone, Serialize)]
pub struct LatencyAllocReport {
    /// Scheduler display name (matches the summary report).
    pub scheduler: String,
    /// Per-step decision-latency summary, microseconds.
    pub latency: LatencyStats,
    /// Heap acquisitions observed during the run.
    pub allocations: u64,
    /// Total bytes requested during the run.
    pub bytes_allocated: u64,
}

/// `megh simulate`: one scheduler, one workload, summary to stdout.
///
/// With `--out FILE`, also writes `latency_alloc_report.json` next to
/// `FILE` with per-scheduler decision-latency and allocation deltas.
///
/// # Errors
///
/// Returns [`ArgsError`] for bad arguments.
pub fn cmd_simulate(args: &Args) -> Result<String, ArgsError> {
    let spec = SimSpec::from_args(args)?;
    let options = engine_options(args)?;
    let stream = SIMULATE_FLAGS.switch(args, "stream");
    let scheduler = SIMULATE_FLAGS.get(args, "scheduler").unwrap_or("megh");
    let file = SIMULATE_FLAGS.get(args, "file").filter(|p| !p.is_empty());
    // Streaming mode never materializes the trace; the engine pulls it
    // chunk-by-chunk from the generator — or, with --file, from the
    // CSV/PlanetLab-directory source.
    let (config, trace) = match (&file, stream) {
        (Some(path), true) => (file_config(&spec, peek_trace_file_vms(path)?), None),
        (Some(path), false) => {
            let trace = load_trace_file(path)?;
            (file_config(&spec, trace.n_vms()), Some(trace))
        }
        (None, true) => (spec.build_config(), None),
        (None, false) => {
            let (config, trace) = spec.build();
            (config, Some(trace))
        }
    };
    let mut out = String::new();
    let names: Vec<&str> = if scheduler == "all" {
        vec![
            "noop", "thr-mmt", "iqr-mmt", "mad-mmt", "lr-mmt", "lrr-mmt", "madvm", "megh", "hier",
        ]
    } else {
        vec![scheduler]
    };
    let mut reports = Vec::new();
    let mut diagnostics = Vec::new();
    for name in names {
        let allocs_before = crate::ALLOC.allocations();
        let bytes_before = crate::ALLOC.bytes_allocated();
        let outcome = match (&trace, &file) {
            (Some(trace), _) => {
                run_named_scheduler_with(name, &config, trace, spec.seed, &options)?
            }
            (None, Some(path)) => run_streamed_file(name, &config, path, spec.seed, &options)?,
            (None, None) => run_streamed_named(name, &config, &spec, &options)?,
        };
        let report = outcome.report();
        diagnostics.push(LatencyAllocReport {
            scheduler: report.scheduler.clone(),
            latency: decision_latency(outcome.records()),
            allocations: crate::ALLOC.allocations() - allocs_before,
            bytes_allocated: crate::ALLOC.bytes_allocated() - bytes_before,
        });
        out.push_str(&render_summary(&report));
        if SIMULATE_FLAGS.switch(args, "slav") {
            let m = SlavMetrics::from_run(&outcome);
            out.push_str(&format!(
                "  SLATAH {:.4}  PDM {:.6}  SLAV {:.8}  ESV {:.6}\n",
                m.slatah, m.pdm, m.slav, m.esv
            ));
        }
        reports.push(report);
    }
    if SIMULATE_FLAGS.switch(args, "mem-stats") {
        match peak_rss_kb() {
            Some(kb) => out.push_str(&format!("peak RSS {kb} kB\n")),
            None => out.push_str("peak RSS unavailable\n"),
        }
    }
    if let Some(path) = SIMULATE_FLAGS.get(args, "out") {
        let write_json = |target: &std::path::Path, json: String| {
            std::fs::write(target, json).map_err(|_| ArgsError::Invalid {
                key: "out".into(),
                value: target.display().to_string(),
                expected: "writable path",
            })
        };
        // One JSON document covering every scheduler that ran.
        let json = serde_json::to_string_pretty(&reports).map_err(|_| ArgsError::Invalid {
            key: "out".into(),
            value: path.to_string(),
            expected: "writable path",
        })?;
        write_json(std::path::Path::new(path), json)?;
        // The hot-path observability companion, next to the cost report.
        let diag_path = std::path::Path::new(path).with_file_name("latency_alloc_report.json");
        let json = serde_json::to_string_pretty(&diagnostics).map_err(|_| ArgsError::Invalid {
            key: "out".into(),
            value: diag_path.display().to_string(),
            expected: "writable path",
        })?;
        write_json(&diag_path, json)?;
    }
    Ok(out)
}

/// `megh compare`: all schedulers side by side.
///
/// # Errors
///
/// Returns [`ArgsError`] for bad arguments.
pub fn cmd_compare(args: &Args) -> Result<String, ArgsError> {
    let spec = SimSpec::from_args(args)?;
    let (config, trace) = spec.build();
    let mut rows = Vec::new();
    for name in [
        "thr-mmt", "iqr-mmt", "mad-mmt", "lr-mmt", "lrr-mmt", "madvm", "megh",
    ] {
        rows.push(run_named_scheduler(name, &config, &trace, spec.seed)?.report());
    }
    let mut out = format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}\n",
        "scheduler", "total USD", "energy USD", "SLA USD", "#migrations", "active", "exec ms"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>12} {:>12.1} {:>10.3}\n",
            r.scheduler,
            r.total_cost_usd,
            r.energy_cost_usd,
            r.sla_cost_usd,
            r.total_migrations,
            r.mean_active_hosts,
            r.mean_decision_ms
        ));
    }
    Ok(out)
}

/// `megh sweep`: one scheduler over many seeds, fanned across threads.
///
/// Seeds are `--seed, --seed+1, …, --seed+N-1`. The stdout summary
/// includes the wall-clock time; the `--out` file contains only the
/// deterministic [`SweepReport`], so its bytes are identical for any
/// `--threads` value (the determinism contract `megh-sim::sweep`
/// documents and CI enforces).
///
/// # Errors
///
/// Returns [`ArgsError`] for bad arguments or an unwritable output.
pub fn cmd_sweep(args: &Args) -> Result<String, ArgsError> {
    let spec = SimSpec::from_args(args)?;
    let options = engine_options(args)?;
    // `--schedulers a,b,c` sweeps several schedulers over the same seed
    // set; `--scheduler x` remains the single-scheduler spelling.
    let schedulers: Vec<String> = match SWEEP_FLAGS.get(args, "schedulers") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        None => vec![SWEEP_FLAGS
            .get(args, "scheduler")
            .unwrap_or("megh")
            .to_string()],
    };
    if schedulers.is_empty() {
        return Err(ArgsError::Invalid {
            key: "schedulers".into(),
            value: SWEEP_FLAGS
                .get(args, "schedulers")
                .unwrap_or("")
                .to_string(),
            expected: "comma-separated scheduler names",
        });
    }
    let n_seeds: usize = SWEEP_FLAGS.positive_usize(args, "seeds", 8)?;
    let threads: usize = SWEEP_FLAGS.positive_usize(args, "threads", 1)?;
    let (config, trace) = spec.build();
    // Validate every scheduler name once, up front: the factory closure
    // handed to the workers has no error channel.
    for name in &schedulers {
        build_named_scheduler(name, &config, spec.seed)?;
    }
    let sim = Simulation::new(config.clone(), trace)
        .map_err(setup_error)?
        .with_options(options);
    let seeds: Vec<u64> = (0..n_seeds as u64)
        .map(|i| spec.seed.wrapping_add(i))
        .collect();

    let mut out = String::new();
    let mut reports = Vec::new();
    for name in &schedulers {
        let started = std::time::Instant::now();
        let outcomes = run_sweep(&sim, &seeds, threads, |seed| {
            build_named_scheduler(name, &config, seed).expect("scheduler name validated above")
        });
        let wall = started.elapsed().as_secs_f64();
        let report = SweepReport::from_outcomes(&seeds, &outcomes);
        out.push_str(&format!(
            "{}: {} seeds on {} thread(s) in {:.2} s\n",
            report.scheduler, report.seeds, threads, wall
        ));
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}\n",
            "seed", "total USD", "energy USD", "SLA USD", "#migrations", "active"
        ));
        for run in &report.runs {
            out.push_str(&format!(
                "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>12} {:>10.1}\n",
                run.seed,
                run.total_cost_usd,
                run.energy_cost_usd,
                run.sla_cost_usd,
                run.total_migrations,
                run.mean_active_hosts
            ));
        }
        out.push_str(&format!(
            "total cost {:.2} ± {:.2} USD (min {:.2}, max {:.2}), mean migrations {:.1}\n",
            report.mean_total_cost_usd,
            report.std_total_cost_usd,
            report.min_total_cost_usd,
            report.max_total_cost_usd,
            report.mean_total_migrations
        ));
        if schedulers.len() > 1 {
            out.push('\n');
        }
        reports.push(report);
    }

    if reports.len() > 1 {
        // Comparative footer, cheapest mean first. total_cmp: means are
        // finite sums of finite per-stage costs.
        let mut ranked: Vec<&SweepReport> = reports.iter().collect();
        ranked.sort_by(|a, b| {
            a.mean_total_cost_usd
                .total_cmp(&b.mean_total_cost_usd)
                .then(a.scheduler.cmp(&b.scheduler))
        });
        out.push_str("ranking by mean total cost:\n");
        for (place, report) in ranked.iter().enumerate() {
            out.push_str(&format!(
                "  {}. {:<10} {:>12.2} ± {:.2} USD\n",
                place + 1,
                report.scheduler,
                report.mean_total_cost_usd,
                report.std_total_cost_usd
            ));
        }
    }

    if let Some(path) = SWEEP_FLAGS.get(args, "out") {
        // Single scheduler keeps the historical top-level-object shape;
        // multi-scheduler sweeps write an array in --schedulers order.
        let json = if reports.len() == 1 {
            serde_json::to_string_pretty(&reports[0])
        } else {
            serde_json::to_string_pretty(&reports)
        };
        let json = json.map_err(|_| ArgsError::Invalid {
            key: "out".into(),
            value: path.to_string(),
            expected: "writable path",
        })?;
        std::fs::write(path, json).map_err(|_| ArgsError::Invalid {
            key: "out".into(),
            value: path.to_string(),
            expected: "writable path",
        })?;
    }
    Ok(out)
}

/// `megh trace-gen`: write a synthetic trace to CSV.
///
/// # Errors
///
/// Returns [`ArgsError`] for bad arguments or an unwritable output.
pub fn cmd_trace_gen(args: &Args) -> Result<String, ArgsError> {
    let spec = SimSpec::from_args(args)?;
    let out = TRACE_GEN_FLAGS.required(args, "out")?;
    let (_, trace) = spec.build();
    megh_trace::save_csv(&trace, out).map_err(|e| ArgsError::Invalid {
        key: "out".into(),
        value: format!("{out}: {e}"),
        expected: "writable path",
    })?;
    Ok(format!(
        "wrote {} ({} VMs × {} steps, {} workload)\n",
        out,
        trace.n_vms(),
        trace.n_steps(),
        spec.workload
    ))
}

/// `megh trace-stats`: summarize a trace CSV.
///
/// # Errors
///
/// Returns [`ArgsError`] for a missing or unreadable file.
pub fn cmd_trace_stats(args: &Args) -> Result<String, ArgsError> {
    let file = TRACE_STATS_FLAGS.required(args, "file")?;
    let trace = megh_trace::load_csv(file).map_err(|e| ArgsError::Invalid {
        key: "file".into(),
        value: format!("{file}: {e}"),
        expected: "readable trace csv",
    })?;
    let stats = TraceStats::compute(&trace);
    Ok(format!(
        "{}: {} VMs × {} steps @ {}s\n  mean {:.2} %  std {:.2} %  range [{:.2}, {:.2}] %\n",
        file,
        trace.n_vms(),
        trace.n_steps(),
        trace.step_seconds(),
        stats.overall_mean,
        stats.overall_std,
        stats.overall_min,
        stats.overall_max
    ))
}

/// `megh serve`: run the crash-safe decision daemon (blocks until a
/// client sends `shutdown`).
///
/// # Errors
///
/// Returns [`ArgsError`] for bad arguments or daemon failures (bind
/// errors, corrupt checkpoints).
pub fn cmd_serve(args: &Args) -> Result<String, ArgsError> {
    let listen = Listen::parse(SERVE_FLAGS.get(args, "listen").unwrap_or("127.0.0.1:7787"));
    let checkpoint = SERVE_FLAGS.required(args, "checkpoint")?;
    let mut opts = ServeOptions::new(listen, std::path::PathBuf::from(checkpoint));
    opts.checkpoint_every = SERVE_FLAGS.parsed(args, "checkpoint-every", 0, "integer")?;
    opts.writer_seed = SERVE_FLAGS.parsed(args, "writer-seed", opts.writer_seed, "integer")?;
    opts.shards = SERVE_FLAGS.parsed(args, "shards", 1, "integer")?;
    let vms: usize = SERVE_FLAGS.parsed(args, "vms", 40, "integer")?;
    let hosts: usize = SERVE_FLAGS.parsed(args, "hosts", 20, "integer")?;
    let config = MeghConfig::paper_defaults(vms, hosts);
    megh_serve::run(config, &opts).map_err(|e| ArgsError::Invalid {
        key: "serve".into(),
        value: e.to_string(),
        expected: "a runnable daemon (valid listen address and checkpoint)",
    })?;
    Ok(format!(
        "serve: shutdown complete, checkpoint at {checkpoint}\n"
    ))
}

/// `megh client`: send one request to a running daemon and print the
/// raw response line (the crash-recovery smoke test diffs these bytes).
///
/// # Errors
///
/// Returns [`ArgsError`] for bad arguments, unreachable daemons, or
/// failed requests.
pub fn cmd_client(args: &Args) -> Result<String, ArgsError> {
    let connect = CLIENT_FLAGS.required(args, "connect")?;
    let op = CLIENT_FLAGS.required(args, "op")?;
    let request = match op {
        "decide" => ServeRequest::Decide {
            seed: CLIENT_FLAGS.parsed(args, "seed", 0, "integer")?,
        },
        "observe" => ServeRequest::Observe {
            action: CLIENT_FLAGS
                .required(args, "action")?
                .parse()
                .map_err(|_| ArgsError::Invalid {
                    key: "action".into(),
                    value: args.get_or("action", "").to_string(),
                    expected: "action index (integer)",
                })?,
            cost: CLIENT_FLAGS
                .required(args, "cost")?
                .parse()
                .map_err(|_| ArgsError::Invalid {
                    key: "cost".into(),
                    value: args.get_or("cost", "").to_string(),
                    expected: "cost (number)",
                })?,
        },
        "sync" => ServeRequest::Sync,
        "checkpoint" => ServeRequest::Checkpoint,
        "stats" => ServeRequest::Stats,
        "shutdown" => ServeRequest::Shutdown,
        other => {
            return Err(ArgsError::Invalid {
                key: "op".into(),
                value: other.to_string(),
                expected: "one of decide|observe|sync|checkpoint|stats|shutdown",
            })
        }
    };
    let listen = Listen::parse(connect);
    let attempts: u32 = CLIENT_FLAGS.parsed(args, "retries", 50, "integer")?;
    // Deadline on connect and on every read/write: a wedged daemon must
    // fail the invocation (and the ci.sh smoke stage) instead of
    // hanging it. 0 disables the deadline.
    let timeout_ms: u64 = CLIENT_FLAGS.parsed(args, "timeout-ms", 5000, "integer")?;
    let timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let mut client = ServeClient::connect_retry_timeout(
        &listen,
        attempts,
        std::time::Duration::from_millis(20),
        timeout,
    )
    .map_err(|e| ArgsError::Invalid {
        key: "connect".into(),
        value: format!("{connect}: {e}"),
        expected: "a reachable megh serve daemon",
    })?;
    let line = client
        .request_raw(&request)
        .map_err(|e| ArgsError::Invalid {
            key: "op".into(),
            value: e.to_string(),
            expected: "a completed request",
        })?;
    Ok(format!("{line}\n"))
}

fn render_summary(r: &SummaryReport) -> String {
    format!(
        "{}: total {:.2} USD (energy {:.2}, SLA {:.2}), {} migrations, \
         {:.1} active hosts, {:.3} ms/decision over {} steps\n",
        r.scheduler,
        r.total_cost_usd,
        r.energy_cost_usd,
        r.sla_cost_usd,
        r.total_migrations,
        r.mean_active_hosts,
        r.mean_decision_ms,
        r.steps
    )
}

/// The help text, generated from the same flag tables the subcommands
/// parse with — the two cannot drift apart.
pub fn help() -> String {
    let mut out = String::from(
        "megh — live-migration scheduling simulator (Basu et al., ICDCS 2017 reproduction)

USAGE:
  megh <command> [options]

COMMANDS:
  simulate     run one scheduler over a synthetic workload
  compare      run every scheduler over the same workload
  sweep        run scheduler(s) over many seeds in parallel
  trace-gen    write a synthetic workload trace to CSV
  trace-stats  summarize a trace CSV
  serve        run the long-lived decision daemon
  client       send one request to a running daemon
  help         show this message

",
    );
    for table in [
        &COMMON_FLAGS,
        &ENGINE_FLAGS,
        &SIMULATE_FLAGS,
        &SWEEP_FLAGS,
        &TRACE_GEN_FLAGS,
        &TRACE_STATS_FLAGS,
        &SERVE_FLAGS,
        &CLIENT_FLAGS,
    ] {
        out.push_str(&table.render_help());
        out.push('\n');
    }
    out.pop();
    out
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`ArgsError`] for unknown commands or bad arguments.
pub fn dispatch(args: &Args) -> Result<String, ArgsError> {
    match args.command.as_deref() {
        Some("simulate") => cmd_simulate(args),
        Some("compare") => cmd_compare(args),
        Some("sweep") => cmd_sweep(args),
        Some("trace-gen") => cmd_trace_gen(args),
        Some("trace-stats") => cmd_trace_stats(args),
        Some("serve") => cmd_serve(args),
        Some("client") => cmd_client(args),
        Some("help") | None => Ok(help()),
        Some(other) => Err(ArgsError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn simulate_runs_megh_by_default() {
        let out = dispatch(&parse("simulate --hosts 4 --vms 6 --days 1")).unwrap();
        assert!(out.contains("Megh:"), "{out}");
        assert!(out.contains("total"));
    }

    #[test]
    fn simulate_with_slav_prints_metrics() {
        let out = dispatch(&parse(
            "simulate --hosts 3 --vms 4 --days 1 --scheduler noop --slav",
        ))
        .unwrap();
        assert!(out.contains("SLATAH"));
    }

    #[test]
    fn compare_lists_all_schedulers() {
        let out = dispatch(&parse("compare --hosts 4 --vms 6 --days 1")).unwrap();
        for name in [
            "THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT", "MadVM", "Megh",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn trace_gen_and_stats_roundtrip() {
        let path = std::env::temp_dir().join(format!("megh-cli-{}.csv", std::process::id()));
        let line = format!("trace-gen --vms 3 --days 1 --out {}", path.display());
        let out = dispatch(&parse(&line)).unwrap();
        assert!(out.contains("wrote"));
        let line = format!("trace-stats --file {}", path.display());
        let out = dispatch(&parse(&line)).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("3 VMs"));
        assert!(out.contains("mean"));
    }

    #[test]
    fn serve_requires_checkpoint_path() {
        let err = dispatch(&parse("serve --listen 127.0.0.1:0")).unwrap_err();
        assert!(matches!(err, ArgsError::Missing("checkpoint")), "{err:?}");
    }

    #[test]
    fn client_rejects_unknown_op() {
        let err = dispatch(&parse("client --connect 127.0.0.1:1 --op frobnicate")).unwrap_err();
        let ArgsError::Invalid { key, value, .. } = err else {
            panic!("expected invalid op");
        };
        assert_eq!((key.as_str(), value.as_str()), ("op", "frobnicate"));
    }

    #[test]
    fn client_observe_requires_action_and_cost() {
        let err = dispatch(&parse("client --connect 127.0.0.1:1 --op observe")).unwrap_err();
        assert!(matches!(err, ArgsError::Missing("action")), "{err:?}");
    }

    #[test]
    fn unknown_command_and_scheduler_error() {
        assert!(matches!(
            dispatch(&parse("frobnicate")),
            Err(ArgsError::UnknownCommand(_))
        ));
        assert!(dispatch(&parse("simulate --scheduler bogus --hosts 2 --vms 2")).is_err());
        assert!(dispatch(&parse("simulate --workload mars")).is_err());
    }

    #[test]
    fn missing_required_options_error() {
        assert_eq!(
            dispatch(&parse("trace-gen")),
            Err(ArgsError::Missing("out"))
        );
        assert_eq!(
            dispatch(&parse("trace-stats")),
            Err(ArgsError::Missing("file"))
        );
    }

    #[test]
    fn help_is_returned_for_empty_invocation() {
        let out = dispatch(&parse("")).unwrap();
        assert!(out.contains("USAGE"));
        assert!(dispatch(&parse("help")).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn simulate_all_writes_every_report_to_out() {
        let path = std::env::temp_dir().join(format!("megh-cli-all-{}.json", std::process::id()));
        let line = format!(
            "simulate --hosts 3 --vms 4 --days 1 --scheduler all --out {}",
            path.display()
        );
        dispatch(&parse(&line)).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let reports: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = reports.as_array().expect("an array of reports");
        assert_eq!(arr.len(), 9, "all nine schedulers must be in the file");
    }

    #[test]
    fn simulate_out_writes_latency_alloc_companion() {
        let dir = std::env::temp_dir().join(format!("megh-cli-diag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let line = format!(
            "simulate --hosts 3 --vms 4 --days 1 --scheduler noop --out {}",
            path.display()
        );
        dispatch(&parse(&line)).unwrap();
        let companion = dir.join("latency_alloc_report.json");
        let json = std::fs::read_to_string(&companion).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let entries: serde_json::Value = serde_json::from_str(&json).unwrap();
        let entry = &entries.as_array().expect("array of diagnostics")[0];
        assert_eq!(entry["scheduler"], "NoOp");
        assert_eq!(
            entry["latency"]["samples"].as_u64(),
            Some(288),
            "one day = 288 steps"
        );
        assert!(
            entry["allocations"].as_u64().is_some(),
            "allocation delta must be recorded: {entry:?}"
        );
    }

    #[test]
    fn sweep_reports_every_seed_and_aggregates() {
        let out = dispatch(&parse(
            "sweep --hosts 3 --vms 4 --days 1 --seeds 3 --threads 2 --scheduler noop",
        ))
        .unwrap();
        assert!(out.contains("NoOp: 3 seeds"), "{out}");
        for seed in [42, 43, 44] {
            assert!(
                out.contains(&format!("\n{seed}")),
                "missing seed {seed}:\n{out}"
            );
        }
        assert!(out.contains("total cost"), "{out}");
    }

    #[test]
    fn sweep_determinism_thread_count_never_changes_out_file() {
        // CI runs this by name (ci.sh filters on `sweep_determinism`):
        // the --out report must be byte-identical for any --threads.
        let dir = std::env::temp_dir().join(format!("megh-cli-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for threads in [1usize, 8] {
            let path = dir.join(format!("sweep-t{threads}.json"));
            let line = format!(
                "sweep --hosts 3 --vms 4 --days 1 --seeds 4 --scheduler megh \
                 --threads {threads} --out {}",
                path.display()
            );
            dispatch(&parse(&line)).unwrap();
            bytes.push(std::fs::read(&path).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            bytes[0], bytes[1],
            "sweep report bytes must not depend on the thread count"
        );
        let report: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes[0]).unwrap()).unwrap();
        assert_eq!(report["scheduler"], "Megh");
        assert_eq!(report["runs"].as_array().map(Vec::len), Some(4));
    }

    #[test]
    fn sweep_determinism_sharded_hier_out_is_thread_invariant() {
        // CI runs this by name (ci.sh filters on `sweep_determinism`):
        // a sweep of the hierarchical scheduler must produce the same
        // --out bytes for any worker thread count.
        let dir = std::env::temp_dir().join(format!("megh-cli-hsweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for threads in [1usize, 8] {
            let path = dir.join(format!("hsweep-t{threads}.json"));
            let line = format!(
                "sweep --hosts 4 --vms 6 --days 1 --seeds 4 --scheduler hier2 \
                 --threads {threads} --out {}",
                path.display()
            );
            dispatch(&parse(&line)).unwrap();
            bytes.push(std::fs::read(&path).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            bytes[0], bytes[1],
            "sharded sweep report bytes must not depend on the thread count"
        );
        let report: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes[0]).unwrap()).unwrap();
        assert_eq!(report["scheduler"], "Megh-H");
        assert_eq!(report["runs"].as_array().map(Vec::len), Some(4));
    }

    #[test]
    fn hier_scheduler_names_parse_and_simulate() {
        let out = dispatch(&parse(
            "simulate --hosts 4 --vms 6 --days 1 --scheduler hier",
        ))
        .unwrap();
        assert!(out.contains("Megh-H"), "{out}");
        let out = dispatch(&parse(
            "simulate --hosts 4 --vms 6 --days 1 --scheduler hier2",
        ))
        .unwrap();
        assert!(out.contains("Megh-H"), "{out}");
        // More shards than hosts is rejected as an argument error, not
        // a panic inside the agent.
        assert!(dispatch(&parse(
            "simulate --hosts 4 --vms 6 --days 1 --scheduler hier9"
        ))
        .is_err());
        assert!(dispatch(&parse(
            "simulate --hosts 4 --vms 6 --days 1 --scheduler hier0"
        ))
        .is_err());
    }

    #[test]
    fn sweep_determinism_multi_scheduler_out_is_stable_and_ranked() {
        // CI runs this by name (ci.sh filters on `sweep_determinism`):
        // the multi-scheduler --out array must be byte-identical for any
        // --threads, ordered by --schedulers, with a ranking footer.
        let dir = std::env::temp_dir().join(format!("megh-cli-msweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        let mut text = Vec::new();
        for threads in [1usize, 4] {
            let path = dir.join(format!("msweep-t{threads}.json"));
            let line = format!(
                "sweep --hosts 3 --vms 4 --days 1 --seeds 3 --schedulers noop,megh,thr-mmt \
                 --threads {threads} --out {}",
                path.display()
            );
            text.push(dispatch(&parse(&line)).unwrap());
            bytes.push(std::fs::read(&path).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            bytes[0], bytes[1],
            "multi-scheduler sweep report bytes must not depend on the thread count"
        );
        let reports: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&bytes[0]).unwrap()).unwrap();
        let reports = reports.as_array().expect("array of per-scheduler reports");
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0]["scheduler"], "NoOp");
        assert_eq!(reports[1]["scheduler"], "Megh");
        assert_eq!(reports[2]["scheduler"], "THR-MMT");
        for report in reports {
            assert_eq!(report["runs"].as_array().map(Vec::len), Some(3));
        }
        assert!(
            text[0].contains("ranking by mean total cost:"),
            "{}",
            text[0]
        );
        assert!(text[0].contains("1. "), "{}", text[0]);
    }

    #[test]
    fn sweep_rejects_bad_scheduler_and_zero_counts() {
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --scheduler bogus")).is_err());
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --seeds 0")).is_err());
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --threads 0")).is_err());
        // `all` is a simulate-only pseudo-name: a sweep is one scheduler.
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --scheduler all")).is_err());
        // A list with no names, or any bad name in the list, is rejected.
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --schedulers ,,")).is_err());
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --schedulers megh,bogus")).is_err());
    }

    #[test]
    fn stream_matches_materialized_total_cost() {
        // The streamed generator path must reproduce the materialized
        // run exactly (engine tests cover fingerprints; this checks the
        // CLI wiring end to end, per workload).
        for workload in WORKLOAD_NAMES {
            let base = dispatch(&parse(&format!(
                "simulate --workload {workload} --hosts 3 --vms 5 --days 1 --scheduler thr-mmt"
            )))
            .unwrap();
            let streamed = dispatch(&parse(&format!(
                "simulate --workload {workload} --hosts 3 --vms 5 --days 1 --scheduler thr-mmt \
                 --chunk-steps 7 --sim-threads 2 --stream"
            )))
            .unwrap();
            let total = |s: &str| {
                let tail = s.split("total ").nth(1).expect("summary line");
                tail.split(" USD").next().expect("cost figure").to_string()
            };
            assert_eq!(
                total(&base),
                total(&streamed),
                "{workload}:\n{base}{streamed}"
            );
        }
    }

    #[test]
    fn stream_file_csv_matches_materialized_run() {
        // A trace CSV written by trace-gen must simulate identically
        // whether it is materialized up front or streamed through
        // CsvSource chunk-by-chunk — total cost included, for a
        // learning scheduler.
        let dir = std::env::temp_dir().join(format!("megh-cli-fstream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("trace.csv");
        dispatch(&parse(&format!(
            "trace-gen --vms 5 --days 1 --seed 9 --out {}",
            csv.display()
        )))
        .unwrap();
        let base = dispatch(&parse(&format!(
            "simulate --hosts 3 --scheduler megh --file {}",
            csv.display()
        )))
        .unwrap();
        let streamed = dispatch(&parse(&format!(
            "simulate --hosts 3 --scheduler megh --file {} --stream --chunk-steps 7 --sim-threads 2",
            csv.display()
        )))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let total = |s: &str| {
            let tail = s.split("total ").nth(1).expect("summary line");
            tail.split(" USD").next().expect("cost figure").to_string()
        };
        assert_eq!(total(&base), total(&streamed), "{base}{streamed}");
        assert!(base.contains("288 steps"), "{base}");
    }

    #[test]
    fn stream_file_errors_are_reported() {
        let err = dispatch(&parse(
            "simulate --hosts 3 --file /no/such/trace.csv --stream",
        ));
        assert!(err.is_err(), "{err:?}");
        let err = dispatch(&parse("simulate --hosts 3 --file /no/such/trace.csv"));
        assert!(err.is_err(), "{err:?}");
    }

    #[test]
    fn sweep_determinism_chunking_never_changes_out_file() {
        // CI runs this by name (ci.sh filters on `sweep_determinism`):
        // chunk size and per-step worker count must never change the
        // --out bytes.
        let dir = std::env::temp_dir().join(format!("megh-cli-chunk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for (chunk, threads) in [(288usize, 1usize), (7, 2)] {
            let path = dir.join(format!("sweep-c{chunk}-t{threads}.json"));
            let line = format!(
                "sweep --hosts 3 --vms 4 --days 1 --seeds 3 --scheduler megh \
                 --chunk-steps {chunk} --sim-threads {threads} --out {}",
                path.display()
            );
            dispatch(&parse(&line)).unwrap();
            bytes.push(std::fs::read(&path).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            bytes[0], bytes[1],
            "sweep report bytes must not depend on chunking or sim-threads"
        );
    }

    #[test]
    fn engine_flags_reject_zero() {
        assert!(dispatch(&parse("simulate --hosts 2 --vms 2 --chunk-steps 0")).is_err());
        assert!(dispatch(&parse("simulate --hosts 2 --vms 2 --sim-threads 0")).is_err());
        assert!(dispatch(&parse("sweep --hosts 2 --vms 2 --chunk-steps 0")).is_err());
    }

    #[test]
    fn mem_stats_prints_peak_rss() {
        let out = dispatch(&parse(
            "simulate --hosts 2 --vms 2 --days 1 --scheduler noop --mem-stats",
        ))
        .unwrap();
        assert!(out.contains("peak RSS"), "{out}");
    }

    #[test]
    fn help_documents_streaming_flags() {
        let h = help();
        for flag in [
            "--chunk-steps",
            "--sim-threads",
            "--progress-every",
            "--stream",
            "--mem-stats",
        ] {
            assert!(h.contains(flag), "missing {flag} in help:\n{h}");
        }
    }

    #[test]
    fn periodic_scheduler_and_diurnal_workload() {
        let out = dispatch(&parse(
            "simulate --workload diurnal --hosts 4 --vms 6 --days 1 --scheduler megh-p4",
        ))
        .unwrap();
        assert!(out.contains("Megh-P:"), "{out}");
    }

    #[test]
    fn outage_option_parses_and_rejects_garbage() {
        let out = dispatch(&parse(
            "simulate --hosts 4 --vms 6 --days 1 --scheduler noop --outage 0:2:5",
        ))
        .unwrap();
        assert!(out.contains("NoOp"));
        assert!(dispatch(&parse("simulate --outage nonsense")).is_err());
        assert!(dispatch(&parse("simulate --outage 1:2")).is_err());
    }

    #[test]
    fn google_workload_is_selectable() {
        let out = dispatch(&parse(
            "simulate --workload google --hosts 3 --vms 5 --days 1 --scheduler thr-mmt",
        ))
        .unwrap();
        assert!(out.contains("THR-MMT"));
    }
}
