//! Property-based tests of the workload generators and trace utilities.

use megh_trace::{
    load_csv, log10_histogram, save_csv, GoogleConfig, PlanetLabConfig, TraceStats, WorkloadTrace,
    STEP_SECONDS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated PlanetLab trace is valid: right shape, in-range
    /// utilization, deterministic under its seed.
    #[test]
    fn planetlab_generator_is_valid_and_deterministic(
        n_vms in 0..20usize,
        steps in 0..120usize,
        seed in 0..500u64,
    ) {
        let cfg = PlanetLabConfig::new(n_vms, seed);
        let a = cfg.generate_steps(steps);
        let b = cfg.generate_steps(steps);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.n_vms(), n_vms);
        if n_vms > 0 {
            prop_assert_eq!(a.n_steps(), steps);
        }
        prop_assert_eq!(a.step_seconds(), STEP_SECONDS);
        for vm in 0..a.n_vms() {
            for &u in a.vm_row(vm) {
                prop_assert!((0.0..=100.0).contains(&u));
            }
        }
    }

    /// Same for the Google generator, which additionally must include
    /// idle (zero) samples in any reasonably long trace.
    #[test]
    fn google_generator_is_valid_and_deterministic(
        n_vms in 1..15usize,
        seed in 0..500u64,
    ) {
        let cfg = GoogleConfig::new(n_vms, seed);
        let a = cfg.generate_steps(200);
        prop_assert_eq!(&a, &cfg.generate_steps(200));
        for vm in 0..a.n_vms() {
            for &u in a.vm_row(vm) {
                prop_assert!((0.0..=100.0).contains(&u));
            }
        }
    }

    /// Task durations always live inside the configured support.
    #[test]
    fn google_durations_in_support(seed in 0..200u64) {
        let cfg = GoogleConfig::new(1, seed);
        for d in cfg.sample_task_durations(200) {
            prop_assert!(d >= cfg.min_task_seconds * 0.999);
            prop_assert!(d <= cfg.max_task_seconds * 1.001);
        }
    }

    /// Sub-sampling VMs preserves rows verbatim and never duplicates.
    #[test]
    fn vm_sampling_preserves_rows(k in 0..10usize, seed in 0..100u64) {
        let trace = PlanetLabConfig::new(8, 3).generate_steps(30);
        let mut rng = StdRng::seed_from_u64(seed);
        let sub = trace.sample_vms(k, &mut rng);
        prop_assert_eq!(sub.n_vms(), k.min(8));
        // Every sampled row must exist in the original.
        for vm in 0..sub.n_vms() {
            let row = sub.vm_row(vm);
            let found = (0..trace.n_vms()).any(|orig| trace.vm_row(orig) == row);
            prop_assert!(found, "sampled row not found in source");
        }
    }

    /// CSV roundtrip preserves every sample to the serialised precision.
    #[test]
    fn csv_roundtrip(n_vms in 1..6usize, steps in 1..20usize, seed in 0..50u64) {
        let trace = PlanetLabConfig::new(n_vms, seed).generate_steps(steps);
        let path = std::env::temp_dir().join(format!(
            "megh-prop-{}-{}-{}-{}.csv",
            std::process::id(),
            n_vms,
            steps,
            seed
        ));
        save_csv(&trace, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.n_vms(), trace.n_vms());
        prop_assert_eq!(loaded.n_steps(), trace.n_steps());
        for vm in 0..trace.n_vms() {
            for step in 0..trace.n_steps() {
                prop_assert!(
                    (loaded.utilization(vm, step) - trace.utilization(vm, step)).abs() < 1e-3
                );
            }
        }
    }

    /// Trace statistics are internally consistent: per-step means lie
    /// within [min, max], and the overall mean equals the mean of
    /// per-step means (equal column sizes).
    #[test]
    fn stats_are_consistent(n_vms in 1..8usize, steps in 1..40usize, seed in 0..50u64) {
        let trace = PlanetLabConfig::new(n_vms, seed).generate_steps(steps);
        let stats = TraceStats::compute(&trace);
        prop_assert_eq!(stats.per_step_mean.len(), steps);
        for &m in &stats.per_step_mean {
            prop_assert!(m >= stats.overall_min - 1e-9);
            prop_assert!(m <= stats.overall_max + 1e-9);
        }
        let mean_of_means: f64 =
            stats.per_step_mean.iter().sum::<f64>() / steps as f64;
        prop_assert!((mean_of_means - stats.overall_mean).abs() < 1e-9);
    }

    /// The log histogram partitions all positive samples.
    #[test]
    fn log_histogram_partitions(values in prop::collection::vec(0.0..1e6f64, 0..100)) {
        let (edges, counts) = log10_histogram(&values, 3);
        let positives = values.iter().filter(|&&v| v > 0.0).count();
        prop_assert_eq!(counts.iter().sum::<usize>(), positives);
        prop_assert_eq!(edges.len(), counts.len());
        for w in edges.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Truncation then statistics equals statistics of the prefix.
    #[test]
    fn truncation_is_a_prefix(steps in 1..30usize, keep in 0..30usize) {
        let trace = PlanetLabConfig::new(4, 9).generate_steps(steps);
        let truncated = trace.truncated(keep);
        prop_assert_eq!(truncated.n_steps(), keep.min(steps));
        for vm in 0..trace.n_vms() {
            prop_assert_eq!(
                truncated.vm_row(vm),
                &trace.vm_row(vm)[..keep.min(steps)]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scaling by a factor then by its inverse is identity wherever no
    /// clamping occurred; all outputs stay in range regardless.
    #[test]
    fn scaling_properties(factor in 0.1..3.0f64, seed in 0..50u64) {
        let trace = PlanetLabConfig::new(4, seed).generate_steps(30);
        let scaled = megh_trace::scale_utilization(&trace, factor);
        for vm in 0..scaled.n_vms() {
            for (step, &u) in scaled.vm_row(vm).iter().enumerate() {
                prop_assert!((0.0..=100.0).contains(&u));
                let raw = trace.utilization(vm, step) * factor;
                if raw <= 100.0 {
                    prop_assert!((u - raw).abs() < 1e-9);
                }
            }
        }
    }

    /// Coarsening preserves the overall mean over whole buckets.
    #[test]
    fn coarsening_preserves_mean(factor in 1..6usize, seed in 0..50u64) {
        let steps = 30 - (30 % factor); // whole buckets only
        let trace = PlanetLabConfig::new(4, seed).generate_steps(steps);
        let coarse = megh_trace::coarsen(&trace, factor);
        prop_assert_eq!(coarse.n_steps(), steps / factor);
        if coarse.n_steps() > 0 {
            prop_assert!((coarse.overall_mean() - trace.overall_mean()).abs() < 1e-9);
        }
    }

    /// Merging keeps every original row findable and the step count is
    /// the max of the two inputs.
    #[test]
    fn merge_properties(n_a in 1..5usize, n_b in 1..5usize, seed in 0..30u64) {
        let a = PlanetLabConfig::new(n_a, seed).generate_steps(20);
        let b = PlanetLabConfig::new(n_b, seed + 1).generate_steps(10);
        let merged = megh_trace::merge_populations(&a, &b);
        prop_assert_eq!(merged.n_vms(), n_a + n_b);
        prop_assert_eq!(merged.n_steps(), 20);
        for vm in 0..n_a {
            prop_assert_eq!(merged.vm_row(vm), a.vm_row(vm));
        }
        // b's rows are zero-padded to a's length.
        for vm in 0..n_b {
            prop_assert_eq!(&merged.vm_row(n_a + vm)[..10], b.vm_row(vm));
            prop_assert!(merged.vm_row(n_a + vm)[10..].iter().all(|&u| u == 0.0));
        }
    }

    /// The diurnal generator stays in range and keeps its period.
    #[test]
    fn diurnal_generator_is_valid(n_vms in 1..10usize, seed in 0..50u64) {
        let trace = megh_trace::DiurnalConfig::new(n_vms, seed).generate_steps(400);
        prop_assert_eq!(trace.n_vms(), n_vms);
        for vm in 0..n_vms {
            for &u in trace.vm_row(vm) {
                prop_assert!((0.0..=100.0).contains(&u));
            }
        }
        prop_assert_eq!(
            &megh_trace::DiurnalConfig::new(n_vms, seed).generate_steps(400),
            &trace
        );
    }
}

/// `WorkloadTrace::from_rows` is the single validation gate: fuzz it.
#[test]
fn from_rows_validation_gate() {
    assert!(WorkloadTrace::from_rows(300, vec![vec![0.0], vec![100.0]]).is_some());
    assert!(WorkloadTrace::from_rows(300, vec![vec![100.0 + f64::EPSILON * 100.0]]).is_none());
    assert!(WorkloadTrace::from_rows(300, vec![vec![f64::INFINITY]]).is_none());
    assert!(WorkloadTrace::from_rows(0, vec![vec![1.0]]).is_none());
}
