//! The in-memory workload trace representation.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-VM CPU-utilization time series sampled at a fixed interval.
///
/// Utilization is a percentage of the VM's requested CPU capacity, in
/// `[0, 100]`. All VMs share the same number of steps; this mirrors the
/// CloudSim `UtilizationModel` driven by PlanetLab/Google trace files.
///
/// # Examples
///
/// ```
/// use megh_trace::WorkloadTrace;
///
/// let trace = WorkloadTrace::from_rows(300, vec![vec![10.0, 20.0], vec![0.0, 50.0]]).unwrap();
/// assert_eq!(trace.n_vms(), 2);
/// assert_eq!(trace.n_steps(), 2);
/// assert_eq!(trace.utilization(1, 1), 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    step_seconds: u64,
    /// `rows[vm][step]` = utilization percent of VM `vm` at step `step`.
    rows: Vec<Vec<f64>>,
}

impl WorkloadTrace {
    /// Builds a trace from per-VM rows.
    ///
    /// # Errors
    ///
    /// Returns `None` when rows have unequal lengths, any utilization is
    /// outside `[0, 100]` or non-finite, or `step_seconds == 0`.
    pub fn from_rows(step_seconds: u64, rows: Vec<Vec<f64>>) -> Option<Self> {
        if step_seconds == 0 {
            return None;
        }
        if let Some(first) = rows.first() {
            let len = first.len();
            for row in &rows {
                if row.len() != len {
                    return None;
                }
                if row
                    .iter()
                    .any(|&u| !u.is_finite() || !(0.0..=100.0).contains(&u))
                {
                    return None;
                }
            }
        }
        Some(Self { step_seconds, rows })
    }

    /// Number of VMs in the trace.
    pub fn n_vms(&self) -> usize {
        self.rows.len()
    }

    /// Number of observation steps (0 when the trace has no VMs).
    pub fn n_steps(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Sampling interval in seconds.
    pub fn step_seconds(&self) -> u64 {
        self.step_seconds
    }

    /// Utilization percent of `vm` at `step`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` or `step` is out of range.
    pub fn utilization(&self, vm: usize, step: usize) -> f64 {
        self.rows[vm][step]
    }

    /// The full utilization row for one VM.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn vm_row(&self, vm: usize) -> &[f64] {
        &self.rows[vm]
    }

    /// Utilizations of every VM at one step.
    ///
    /// # Panics
    ///
    /// Panics if `step >= n_steps()`.
    pub fn step_column(&self, step: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n_vms()];
        self.step_column_into(step, &mut out);
        out
    }

    /// Writes the utilizations of every VM at one step into `out`,
    /// without allocating. The streaming counterpart of
    /// [`step_column`](Self::step_column) used on the simulation hot
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `step >= n_steps()` or `out.len() != n_vms()`.
    pub fn step_column_into(&self, step: usize, out: &mut [f64]) {
        assert!(step < self.n_steps(), "step {step} out of range");
        assert_eq!(
            out.len(),
            self.n_vms(),
            "output buffer must hold one value per VM"
        );
        for (slot, row) in out.iter_mut().zip(&self.rows) {
            *slot = row[step];
        }
    }

    /// Returns a trace containing only the first `steps` steps.
    ///
    /// Truncating to more steps than available returns a clone.
    pub fn truncated(&self, steps: usize) -> Self {
        Self {
            step_seconds: self.step_seconds,
            rows: self
                .rows
                .iter()
                .map(|row| row[..steps.min(row.len())].to_vec())
                .collect(),
        }
    }

    /// Returns a trace with `k` VMs sampled uniformly without replacement.
    ///
    /// This is the paper's §6.3/§6.4 protocol: random subsets of the full
    /// trace for MadVM comparisons and the scalability sweep. When
    /// `k >= n_vms()` the whole trace is cloned.
    pub fn sample_vms<R: Rng>(&self, k: usize, rng: &mut R) -> Self {
        if k >= self.n_vms() {
            return self.clone();
        }
        let mut indices: Vec<usize> = (0..self.n_vms()).collect();
        indices.shuffle(rng);
        indices.truncate(k);
        indices.sort_unstable();
        Self {
            step_seconds: self.step_seconds,
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
        }
    }

    /// Mean utilization over all VMs and steps.
    pub fn overall_mean(&self) -> f64 {
        let n = self.n_vms() * self.n_steps();
        if n == 0 {
            return 0.0;
        }
        self.rows.iter().flatten().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> WorkloadTrace {
        WorkloadTrace::from_rows(
            300,
            vec![
                vec![10.0, 20.0, 30.0],
                vec![0.0, 50.0, 100.0],
                vec![5.0, 5.0, 5.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_access() {
        let t = toy();
        assert_eq!(t.n_vms(), 3);
        assert_eq!(t.n_steps(), 3);
        assert_eq!(t.step_seconds(), 300);
        assert_eq!(t.utilization(1, 2), 100.0);
        assert_eq!(t.vm_row(2), &[5.0, 5.0, 5.0]);
        assert_eq!(t.step_column(1), vec![20.0, 50.0, 5.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(WorkloadTrace::from_rows(300, vec![vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn rejects_out_of_range_utilization() {
        assert!(WorkloadTrace::from_rows(300, vec![vec![101.0]]).is_none());
        assert!(WorkloadTrace::from_rows(300, vec![vec![-0.1]]).is_none());
        assert!(WorkloadTrace::from_rows(300, vec![vec![f64::NAN]]).is_none());
    }

    #[test]
    fn rejects_zero_interval() {
        assert!(WorkloadTrace::from_rows(0, vec![vec![1.0]]).is_none());
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = WorkloadTrace::from_rows(300, vec![]).unwrap();
        assert_eq!(t.n_vms(), 0);
        assert_eq!(t.n_steps(), 0);
        assert_eq!(t.overall_mean(), 0.0);
    }

    #[test]
    fn truncation() {
        let t = toy().truncated(2);
        assert_eq!(t.n_steps(), 2);
        assert_eq!(t.n_vms(), 3);
        // Truncating beyond length is a no-op.
        assert_eq!(toy().truncated(10).n_steps(), 3);
    }

    #[test]
    fn sampling_is_without_replacement() {
        let t = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let s = t.sample_vms(2, &mut rng);
        assert_eq!(s.n_vms(), 2);
        assert_eq!(s.n_steps(), 3);
        // Sampling at least n_vms returns everything.
        assert_eq!(t.sample_vms(5, &mut rng).n_vms(), 3);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let t = toy();
        let a = t.sample_vms(2, &mut StdRng::seed_from_u64(42));
        let b = t.sample_vms(2, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn overall_mean_matches_hand_computation() {
        let t = toy();
        let want = (10.0 + 20.0 + 30.0 + 0.0 + 50.0 + 100.0 + 5.0 + 5.0 + 5.0) / 9.0;
        assert!((t.overall_mean() - want).abs() < 1e-12);
    }
}
