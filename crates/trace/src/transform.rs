//! Trace transformations for sensitivity studies: scaling, noising,
//! merging, and resampling workloads without re-generating them.
//!
//! The per-sample transforms are thin materializing wrappers over the
//! streaming adapters in [`crate::source`] ([`TraceSource::scaled`],
//! [`TraceSource::with_noise`], [`TraceSource::coarsened`]) — prefer
//! composing those directly when the trace should stay out of RAM.

use crate::source::TraceSource;
use crate::WorkloadTrace;

/// Scales every utilization sample by `factor`, clamping to `[0, 100]`.
///
/// Used by load-intensity sweeps: the same trace at 0.5× or 2× load.
///
/// # Examples
///
/// ```
/// use megh_trace::{scale_utilization, WorkloadTrace};
///
/// let t = WorkloadTrace::from_rows(300, vec![vec![40.0, 80.0]]).unwrap();
/// let doubled = scale_utilization(&t, 2.0);
/// assert_eq!(doubled.utilization(0, 0), 80.0);
/// assert_eq!(doubled.utilization(0, 1), 100.0); // clamped
/// ```
pub fn scale_utilization(trace: &WorkloadTrace, factor: f64) -> WorkloadTrace {
    trace.cursor().scaled(factor).take_steps(trace.n_steps())
}

/// Adds zero-mean Gaussian noise (σ in utilization points) to every
/// sample, clamped to `[0, 100]`. Deterministic under `seed`.
pub fn add_noise(trace: &WorkloadTrace, sigma: f64, seed: u64) -> WorkloadTrace {
    trace
        .cursor()
        .with_noise(sigma, seed)
        .take_steps(trace.n_steps())
}

/// Concatenates the VM populations of two traces (same interval; the
/// shorter trace is zero-padded to the longer horizon).
///
/// Models a mixed tenancy: e.g. PlanetLab-style services plus
/// Google-style batch tasks in one data center.
///
/// # Panics
///
/// Panics if the traces have different sampling intervals.
pub fn merge_populations(a: &WorkloadTrace, b: &WorkloadTrace) -> WorkloadTrace {
    assert_eq!(
        a.step_seconds(),
        b.step_seconds(),
        "cannot merge traces with different intervals"
    );
    let steps = a.n_steps().max(b.n_steps());
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(a.n_vms() + b.n_vms());
    for source in [a, b] {
        for vm in 0..source.n_vms() {
            let mut row = source.vm_row(vm).to_vec();
            row.resize(steps, 0.0);
            rows.push(row);
        }
    }
    WorkloadTrace::from_rows(a.step_seconds(), rows).expect("padded rows are valid")
}

/// Resamples a trace to a coarser interval by averaging whole buckets
/// of `factor` consecutive samples (trailing partial buckets dropped).
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn coarsen(trace: &WorkloadTrace, factor: usize) -> WorkloadTrace {
    trace
        .cursor()
        .coarsened(factor)
        .take_steps(trace.n_steps() / factor.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanetLabConfig;

    fn toy() -> WorkloadTrace {
        WorkloadTrace::from_rows(300, vec![vec![10.0, 20.0, 30.0, 40.0], vec![0.0; 4]]).unwrap()
    }

    #[test]
    fn scaling_clamps_and_scales() {
        let t = scale_utilization(&toy(), 3.0);
        assert_eq!(t.utilization(0, 0), 30.0);
        assert_eq!(t.utilization(0, 3), 100.0);
        assert_eq!(t.utilization(1, 0), 0.0);
    }

    #[test]
    fn zero_scale_idles_everything() {
        let t = scale_utilization(&toy(), 0.0);
        assert_eq!(t.overall_mean(), 0.0);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let base = PlanetLabConfig::new(4, 1).generate_steps(50);
        let a = add_noise(&base, 5.0, 9);
        let b = add_noise(&base, 5.0, 9);
        assert_eq!(a, b);
        assert_ne!(a, base);
        for vm in 0..a.n_vms() {
            for &u in a.vm_row(vm) {
                assert!((0.0..=100.0).contains(&u));
            }
        }
    }

    #[test]
    fn merge_concatenates_and_pads() {
        let a = toy();
        let b = WorkloadTrace::from_rows(300, vec![vec![50.0, 60.0]]).unwrap();
        let merged = merge_populations(&a, &b);
        assert_eq!(merged.n_vms(), 3);
        assert_eq!(merged.n_steps(), 4);
        assert_eq!(merged.utilization(2, 1), 60.0);
        assert_eq!(merged.utilization(2, 3), 0.0, "short trace padded");
    }

    #[test]
    #[should_panic(expected = "different intervals")]
    fn merge_rejects_interval_mismatch() {
        let a = toy();
        let b = WorkloadTrace::from_rows(600, vec![vec![1.0]]).unwrap();
        let _ = merge_populations(&a, &b);
    }

    #[test]
    fn coarsen_averages_buckets() {
        let t = coarsen(&toy(), 2);
        assert_eq!(t.n_steps(), 2);
        assert_eq!(t.step_seconds(), 600);
        assert_eq!(t.utilization(0, 0), 15.0);
        assert_eq!(t.utilization(0, 1), 35.0);
    }

    #[test]
    fn coarsen_drops_partial_tail() {
        let t = coarsen(&toy(), 3);
        assert_eq!(t.n_steps(), 1);
        assert_eq!(t.utilization(0, 0), 20.0);
    }
}
