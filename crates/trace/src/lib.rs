//! Workload traces for the Megh reproduction.
//!
//! The paper (§6.2) drives its CloudSim experiments with two real traces:
//!
//! * **PlanetLab** (CoMoN): per-VM CPU utilization sampled every 5 minutes
//!   for 7 days; workloads run continuously, average ≈ 12 %, standard
//!   deviation ≈ 34 %, instantaneous range ≈ 5–90 %.
//! * **Google Cluster**: tasks on Hadoop/MapReduce machines with durations
//!   spanning 10¹–10⁶ seconds that fit no standard parametric
//!   distribution; VMs run one task to completion, then switch.
//!
//! Those datasets are not redistributable here, so this crate provides
//! *synthetic generators calibrated to the same published summary
//! statistics* (see DESIGN.md §2 for the substitution argument), plus the
//! statistics and CSV machinery used by the experiment harness to
//! regenerate Figure 1.
//!
//! # Examples
//!
//! ```
//! use megh_trace::{PlanetLabConfig, TraceStats};
//!
//! let trace = PlanetLabConfig::new(50, 288).generate(7);
//! assert_eq!(trace.n_vms(), 50);
//! let stats = TraceStats::compute(&trace);
//! assert!(stats.overall_mean > 0.0);
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

mod csv;
mod diurnal;
mod files;
mod google;
mod planetlab;
mod source;
mod stats;
mod trace;
mod transform;

pub use csv::{load_csv, save_csv, CsvSource, TraceCsvError};
pub use diurnal::DiurnalConfig;
pub use files::{load_google_usage_csv, load_planetlab_dir, PlanetLabDirSource};
pub use google::GoogleConfig;
pub use planetlab::PlanetLabConfig;
pub use source::{
    Coarsened, DiurnalSource, GoogleSource, MaterializedSource, Noisy, PlanetLabSource, Scaled,
    TraceCursor, TraceHeader, TraceSource,
};
pub use stats::{log10_histogram, CullenFrey, DurationStats, TraceStats};
pub use trace::WorkloadTrace;
pub use transform::{add_noise, coarsen, merge_populations, scale_utilization};

/// The observation interval used throughout the paper: 5 minutes.
pub const STEP_SECONDS: u64 = 300;

/// Steps per simulated day at the 5-minute interval.
pub const STEPS_PER_DAY: usize = 288;
