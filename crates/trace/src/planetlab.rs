//! Synthetic PlanetLab-like workload generator.
//!
//! The real PlanetLab/CoMoN trace shipped with CloudSim contains per-VM
//! CPU utilization sampled every 5 minutes over 7 days. The paper's
//! Figure 1(a) and §6.2 report its salient features: workloads run
//! continuously for the whole week, the average utilization is ≈ 12 %,
//! the standard deviation is large (reported ≈ 34 %), and instantaneous
//! levels range from ≈ 5 % up to ≈ 90 %. No standard parametric
//! distribution fits it (Cullen–Frey analysis in §6.2).
//!
//! We reproduce those properties with a *Markov-modulated* process: each
//! VM alternates between a quiet regime (low base load with AR(1) noise)
//! and a bursty regime (load near 85–90 %), with regime-switching
//! probabilities calibrated so the long-run mean is ≈ 12 % and bursts are
//! sustained for tens of minutes — matching "long duration but high
//! variance" workloads. A mild diurnal modulation makes burst onset more
//! likely during the simulated day than at night.

use serde::{Deserialize, Serialize};

use crate::source::{PlanetLabSource, TraceSource};
use crate::{WorkloadTrace, STEPS_PER_DAY};

/// Configuration for the PlanetLab-like generator.
///
/// # Examples
///
/// ```
/// use megh_trace::PlanetLabConfig;
///
/// let trace = PlanetLabConfig::new(100, 42).generate(1);
/// assert_eq!(trace.n_vms(), 100);
/// assert_eq!(trace.n_steps(), 288);
/// let mean = trace.overall_mean();
/// assert!(mean > 6.0 && mean < 20.0, "mean {mean} out of PlanetLab band");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanetLabConfig {
    /// Number of VM workload rows to generate.
    pub n_vms: usize,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Long-run probability mass in the bursty regime.
    pub burst_fraction: f64,
    /// Expected burst length in steps (5-minute units).
    pub mean_burst_steps: f64,
    /// Mean of the quiet-regime base load (percent).
    pub quiet_mean: f64,
    /// Mean of the bursty-regime load (percent).
    pub burst_mean: f64,
}

impl PlanetLabConfig {
    /// Creates a configuration with the paper-calibrated defaults.
    pub fn new(n_vms: usize, seed: u64) -> Self {
        Self {
            n_vms,
            seed,
            // Calibration: mean ≈ (1-f)·quiet + f·burst ≈ 12 %.
            burst_fraction: 0.075,
            mean_burst_steps: 8.0, // ≈ 40 minutes of sustained load
            quiet_mean: 6.5,
            burst_mean: 82.0,
        }
    }

    /// A lazy streaming source of `n_steps` columns; the preferred entry
    /// point. Memory is `O(n_vms)` regardless of `n_steps`.
    pub fn source(&self, n_steps: usize) -> PlanetLabSource {
        PlanetLabSource::new(self.clone(), n_steps)
    }

    /// Generates a trace spanning `days` simulated days.
    ///
    /// Thin materializing wrapper over [`source`](Self::source) +
    /// [`TraceSource::take_steps`]; prefer the streaming API for long
    /// traces.
    pub fn generate(&self, days: usize) -> WorkloadTrace {
        self.generate_steps(days * STEPS_PER_DAY)
    }

    /// Generates a trace with an explicit number of 5-minute steps.
    ///
    /// Thin materializing wrapper over [`source`](Self::source) +
    /// [`TraceSource::take_steps`]; prefer the streaming API for long
    /// traces.
    pub fn generate_steps(&self, n_steps: usize) -> WorkloadTrace {
        self.source(n_steps).take_steps(n_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::STEP_SECONDS;
    use megh_linalg_test_shim::std_dev_of;

    /// Tiny local shim so these tests do not depend on megh-linalg.
    mod megh_linalg_test_shim {
        pub fn std_dev_of(values: &[f64]) -> f64 {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
        }
    }

    #[test]
    fn determinism_under_seed() {
        let a = PlanetLabConfig::new(10, 1).generate_steps(100);
        let b = PlanetLabConfig::new(10, 1).generate_steps(100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PlanetLabConfig::new(10, 1).generate_steps(100);
        let b = PlanetLabConfig::new(10, 2).generate_steps(100);
        assert_ne!(a, b);
    }

    #[test]
    fn shape_matches_request() {
        let t = PlanetLabConfig::new(7, 3).generate(2);
        assert_eq!(t.n_vms(), 7);
        assert_eq!(t.n_steps(), 2 * STEPS_PER_DAY);
        assert_eq!(t.step_seconds(), STEP_SECONDS);
    }

    #[test]
    fn mean_is_in_planetlab_band() {
        // Paper: average workload ≈ 12 %. Accept a generous band.
        let t = PlanetLabConfig::new(200, 11).generate(2);
        let mean = t.overall_mean();
        assert!(mean > 8.0 && mean < 18.0, "mean = {mean}");
    }

    #[test]
    fn workload_is_bursty_and_heavy_tailed() {
        let t = PlanetLabConfig::new(200, 13).generate(2);
        let all: Vec<f64> = (0..t.n_vms()).flat_map(|v| t.vm_row(v).to_vec()).collect();
        let sd = std_dev_of(&all);
        // Paper reports a very large std dev; with mean ~12 the feasible
        // max is ~33, we require clearly heavy-tailed behaviour.
        assert!(sd > 12.0, "std dev = {sd}");
        let max = all.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 70.0, "max = {max} — bursts should approach 90 %");
    }

    #[test]
    fn utilization_always_in_range() {
        let t = PlanetLabConfig::new(50, 17).generate_steps(500);
        for vm in 0..t.n_vms() {
            for &u in t.vm_row(vm) {
                assert!((0.0..=100.0).contains(&u));
            }
        }
    }

    #[test]
    fn workloads_run_continuously() {
        // PlanetLab VMs are always active: no long all-zero stretches.
        let t = PlanetLabConfig::new(20, 19).generate(1);
        for vm in 0..t.n_vms() {
            let mean: f64 = t.vm_row(vm).iter().sum::<f64>() / t.n_steps() as f64;
            assert!(mean > 1.0, "vm {vm} looks idle (mean {mean})");
        }
    }

    #[test]
    fn zero_vms_is_fine() {
        let t = PlanetLabConfig::new(0, 5).generate(1);
        assert_eq!(t.n_vms(), 0);
    }
}
