//! CSV persistence for workload traces.
//!
//! Format: one row per observation step, one column per VM, values are
//! utilization percentages. A single header line records the sampling
//! interval, so traces can be exchanged with external tooling (plotting,
//! or real PlanetLab/Google dumps converted offline).

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::source::{TraceHeader, TraceSource};
use crate::WorkloadTrace;

/// Error raised while reading or writing a trace CSV.
#[derive(Debug)]
pub enum TraceCsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell could not be parsed as a float.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending cell content.
        cell: String,
    },
    /// Structural problem (missing header, ragged rows, bad range).
    Format(String),
}

impl fmt::Display for TraceCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, cell } => {
                write!(f, "cannot parse {cell:?} as a number on line {line}")
            }
            Self::Format(msg) => write!(f, "malformed trace csv: {msg}"),
        }
    }
}

impl std::error::Error for TraceCsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceCsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes a trace to a CSV file.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```no_run
/// use megh_trace::{save_csv, WorkloadTrace};
///
/// let t = WorkloadTrace::from_rows(300, vec![vec![10.0, 20.0]]).unwrap();
/// save_csv(&t, "trace.csv")?;
/// # Ok::<(), megh_trace::TraceCsvError>(())
/// ```
pub fn save_csv(trace: &WorkloadTrace, path: impl AsRef<Path>) -> Result<(), TraceCsvError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# step_seconds={}", trace.step_seconds())?;
    for step in 0..trace.n_steps() {
        let row: Vec<String> = (0..trace.n_vms())
            .map(|vm| format!("{:.4}", trace.utilization(vm, step)))
            .collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a trace from a CSV file previously written by [`save_csv`].
///
/// Materializing wrapper over the streaming [`CsvSource`]; prefer the
/// source for traces that should stay out of RAM.
///
/// # Errors
///
/// Returns [`TraceCsvError`] for I/O failures, unparsable cells, ragged
/// rows, out-of-range utilizations, or a missing header.
pub fn load_csv(path: impl AsRef<Path>) -> Result<WorkloadTrace, TraceCsvError> {
    let mut source = CsvSource::open(path)?;
    let n_steps = source.header().n_steps;
    let trace = (&mut source).take_steps(n_steps);
    match source.take_error() {
        Some(err) => Err(err),
        None => Ok(trace),
    }
}

/// A buffered streaming [`TraceSource`] over a [`save_csv`]-format file.
///
/// The file is written one *step* per line, so columns stream naturally:
/// [`open`](Self::open) pre-scans once to learn the shape (step count,
/// VM count, `step_seconds` header) without retaining any samples, then
/// `fill_chunk` parses one line per step from a reused buffer. Peak
/// memory is `O(n_vms)` regardless of file length.
///
/// A malformed line stops the stream: `fill_chunk` returns the steps
/// completed before it and `0` afterwards, with the cause available via
/// [`error`](Self::error) / [`take_error`](Self::take_error).
pub struct CsvSource {
    path: PathBuf,
    header: TraceHeader,
    reader: Option<BufReader<File>>,
    line_no: usize,
    emitted: usize,
    buf: String,
    error: Option<TraceCsvError>,
}

impl CsvSource {
    /// Opens a trace CSV for streaming, pre-scanning it for its shape.
    ///
    /// # Errors
    ///
    /// Returns [`TraceCsvError`] on I/O failure, a missing
    /// `# step_seconds=` header, or an invalid header value.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceCsvError> {
        let path = path.as_ref().to_path_buf();
        let mut step_seconds: Option<u64> = None;
        let mut n_steps = 0usize;
        let mut n_vms = 0usize;
        for line in BufReader::new(File::open(&path)?).lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(value) = rest.trim().strip_prefix("step_seconds=") {
                    step_seconds = Some(value.trim().parse().map_err(|_| {
                        TraceCsvError::Format(format!("invalid step_seconds value {value:?}"))
                    })?);
                }
                continue;
            }
            if n_steps == 0 {
                n_vms = line.split(',').count();
            }
            n_steps += 1;
        }
        let step_seconds = step_seconds
            .ok_or_else(|| TraceCsvError::Format("missing '# step_seconds=' header".into()))?;
        let mut source = Self {
            path,
            header: TraceHeader {
                n_vms,
                n_steps,
                step_seconds,
            },
            reader: None,
            line_no: 0,
            emitted: 0,
            buf: String::new(),
            error: None,
        };
        source.reopen()?;
        Ok(source)
    }

    /// The error that stopped the stream, if any.
    pub fn error(&self) -> Option<&TraceCsvError> {
        self.error.as_ref()
    }

    /// Takes the error that stopped the stream, if any.
    pub fn take_error(&mut self) -> Option<TraceCsvError> {
        self.error.take()
    }

    fn reopen(&mut self) -> Result<(), TraceCsvError> {
        let file = File::open(&self.path)?;
        self.reader = Some(BufReader::new(file));
        self.line_no = 0;
        self.emitted = 0;
        self.error = None;
        Ok(())
    }

    /// Parses the next data line into `out` (`n_vms` slots). `Ok(false)`
    /// means end of file.
    fn next_column(&mut self, out: &mut [f64]) -> Result<bool, TraceCsvError> {
        let n_vms = self.header.n_vms;
        let Self {
            reader,
            line_no,
            buf,
            ..
        } = self;
        let Some(reader) = reader.as_mut() else {
            return Ok(false);
        };
        loop {
            buf.clear();
            if reader.read_line(buf)? == 0 {
                break;
            }
            *line_no += 1;
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut count = 0usize;
            for cell in line.split(',') {
                let v: f64 = cell.trim().parse().map_err(|_| TraceCsvError::Parse {
                    line: *line_no,
                    cell: cell.to_string(),
                })?;
                if count < out.len() {
                    out[count] = v;
                }
                count += 1;
            }
            if count != n_vms {
                return Err(TraceCsvError::Format(format!(
                    "row on line {} has {count} cells, expected {n_vms}",
                    *line_no
                )));
            }
            for &v in out.iter().take(n_vms) {
                if !v.is_finite() || !(0.0..=100.0).contains(&v) {
                    return Err(TraceCsvError::Format(format!(
                        "utilization {v} outside [0, 100] on line {}",
                        *line_no
                    )));
                }
            }
            return Ok(true);
        }
        self.reader = None;
        Ok(false)
    }
}

impl TraceSource for CsvSource {
    fn header(&self) -> TraceHeader {
        self.header
    }

    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let n = self.header.n_vms;
        if n == 0 || self.error.is_some() {
            return 0;
        }
        let want = (buf.len() / n).min(self.header.n_steps - self.emitted);
        let mut got = 0usize;
        while got < want {
            match self.next_column(&mut buf[got * n..(got + 1) * n]) {
                Ok(true) => got += 1,
                Ok(false) => break,
                Err(e) => {
                    self.error = Some(e);
                    self.reader = None;
                    break;
                }
            }
        }
        self.emitted += got;
        got
    }

    fn reset(&mut self) {
        if let Err(e) = self.reopen() {
            self.reader = None;
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanetLabConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("megh-trace-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = PlanetLabConfig::new(5, 3).generate_steps(20);
        let path = tmp("roundtrip.csv");
        save_csv(&t, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.n_vms(), t.n_vms());
        assert_eq!(loaded.n_steps(), t.n_steps());
        assert_eq!(loaded.step_seconds(), t.step_seconds());
        for vm in 0..t.n_vms() {
            for step in 0..t.n_steps() {
                assert!((loaded.utilization(vm, step) - t.utilization(vm, step)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        let path = tmp("noheader.csv");
        std::fs::write(&path, "1.0,2.0\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "# step_seconds=300\n1.0,2.0\n3.0\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn unparsable_cell_reports_location() {
        let path = tmp("badcell.csv");
        std::fs::write(&path, "# step_seconds=300\n1.0,abc\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            TraceCsvError::Parse { line, cell } => {
                assert_eq!(line, 2);
                assert_eq!(cell, "abc");
            }
            other => panic!("expected Parse error, got {other}"),
        }
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        let path = tmp("range.csv");
        std::fs::write(&path, "# step_seconds=300\n150.0\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn csv_source_streams_identically_to_load() {
        let t = PlanetLabConfig::new(3, 9).generate_steps(15);
        let path = tmp("stream.csv");
        save_csv(&t, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        let mut source = CsvSource::open(&path).unwrap();
        assert_eq!(source.header().n_vms, 3);
        assert_eq!(source.header().n_steps, 15);
        let streamed = (&mut source).take_steps(15);
        assert!(source.error().is_none());
        assert_eq!(streamed, loaded);
        // Chunked reads equal whole reads, and reset replays the file.
        source.reset();
        let mut col = vec![0.0; 3];
        let mut steps = 0usize;
        while source.fill_chunk(&mut col) == 1 {
            for (vm, &v) in col.iter().enumerate() {
                assert_eq!(v, streamed.utilization(vm, steps));
            }
            steps += 1;
        }
        std::fs::remove_file(&path).ok();
        assert_eq!(steps, 15);
    }

    #[test]
    fn csv_source_surfaces_mid_stream_errors() {
        let path = tmp("stream-bad.csv");
        std::fs::write(&path, "# step_seconds=300\n1.0,2.0\n3.0,abc\n").unwrap();
        let mut source = CsvSource::open(&path).unwrap();
        let mut buf = vec![0.0; 2 * 4];
        assert_eq!(source.fill_chunk(&mut buf), 1, "first step is clean");
        assert_eq!(source.fill_chunk(&mut buf), 0, "stream stops at error");
        std::fs::remove_file(&path).ok();
        match source.take_error() {
            Some(TraceCsvError::Parse { line, cell }) => {
                assert_eq!(line, 3);
                assert_eq!(cell, "abc");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = TraceCsvError::Format("x".into());
        assert!(!e.to_string().is_empty());
        let e = TraceCsvError::Parse {
            line: 1,
            cell: "q".into(),
        };
        assert!(e.to_string().contains("line 1"));
    }
}
