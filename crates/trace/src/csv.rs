//! CSV persistence for workload traces.
//!
//! Format: one row per observation step, one column per VM, values are
//! utilization percentages. A single header line records the sampling
//! interval, so traces can be exchanged with external tooling (plotting,
//! or real PlanetLab/Google dumps converted offline).

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::WorkloadTrace;

/// Error raised while reading or writing a trace CSV.
#[derive(Debug)]
pub enum TraceCsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell could not be parsed as a float.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending cell content.
        cell: String,
    },
    /// Structural problem (missing header, ragged rows, bad range).
    Format(String),
}

impl fmt::Display for TraceCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, cell } => {
                write!(f, "cannot parse {cell:?} as a number on line {line}")
            }
            Self::Format(msg) => write!(f, "malformed trace csv: {msg}"),
        }
    }
}

impl std::error::Error for TraceCsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceCsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes a trace to a CSV file.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```no_run
/// use megh_trace::{save_csv, WorkloadTrace};
///
/// let t = WorkloadTrace::from_rows(300, vec![vec![10.0, 20.0]]).unwrap();
/// save_csv(&t, "trace.csv")?;
/// # Ok::<(), megh_trace::TraceCsvError>(())
/// ```
pub fn save_csv(trace: &WorkloadTrace, path: impl AsRef<Path>) -> Result<(), TraceCsvError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# step_seconds={}", trace.step_seconds())?;
    for step in 0..trace.n_steps() {
        let row: Vec<String> = (0..trace.n_vms())
            .map(|vm| format!("{:.4}", trace.utilization(vm, step)))
            .collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a trace from a CSV file previously written by [`save_csv`].
///
/// # Errors
///
/// Returns [`TraceCsvError`] for I/O failures, unparsable cells, ragged
/// rows, out-of-range utilizations, or a missing header.
pub fn load_csv(path: impl AsRef<Path>) -> Result<WorkloadTrace, TraceCsvError> {
    let reader = BufReader::new(File::open(path)?);
    let mut step_seconds: Option<u64> = None;
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(value) = rest.trim().strip_prefix("step_seconds=") {
                step_seconds = Some(value.trim().parse().map_err(|_| {
                    TraceCsvError::Format(format!("invalid step_seconds value {value:?}"))
                })?);
            }
            continue;
        }
        let cells: Vec<f64> = line
            .split(',')
            .map(|c| {
                c.trim().parse::<f64>().map_err(|_| TraceCsvError::Parse {
                    line: idx + 1,
                    cell: c.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        if columns.is_empty() {
            columns = vec![Vec::new(); cells.len()];
        }
        if cells.len() != columns.len() {
            return Err(TraceCsvError::Format(format!(
                "row on line {} has {} cells, expected {}",
                idx + 1,
                cells.len(),
                columns.len()
            )));
        }
        for (col, v) in columns.iter_mut().zip(cells) {
            col.push(v);
        }
    }
    let step_seconds = step_seconds
        .ok_or_else(|| TraceCsvError::Format("missing '# step_seconds=' header".into()))?;
    WorkloadTrace::from_rows(step_seconds, columns)
        .ok_or_else(|| TraceCsvError::Format("utilization outside [0, 100] or ragged".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanetLabConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("megh-trace-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = PlanetLabConfig::new(5, 3).generate_steps(20);
        let path = tmp("roundtrip.csv");
        save_csv(&t, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.n_vms(), t.n_vms());
        assert_eq!(loaded.n_steps(), t.n_steps());
        assert_eq!(loaded.step_seconds(), t.step_seconds());
        for vm in 0..t.n_vms() {
            for step in 0..t.n_steps() {
                assert!((loaded.utilization(vm, step) - t.utilization(vm, step)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        let path = tmp("noheader.csv");
        std::fs::write(&path, "1.0,2.0\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "# step_seconds=300\n1.0,2.0\n3.0\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn unparsable_cell_reports_location() {
        let path = tmp("badcell.csv");
        std::fs::write(&path, "# step_seconds=300\n1.0,abc\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            TraceCsvError::Parse { line, cell } => {
                assert_eq!(line, 2);
                assert_eq!(cell, "abc");
            }
            other => panic!("expected Parse error, got {other}"),
        }
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        let path = tmp("range.csv");
        std::fs::write(&path, "# step_seconds=300\n150.0\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = TraceCsvError::Format("x".into());
        assert!(!e.to_string().is_empty());
        let e = TraceCsvError::Parse {
            line: 1,
            cell: "q".into(),
        };
        assert!(e.to_string().contains("line 1"));
    }
}
