//! Trace statistics backing Figure 1 of the paper.

use serde::{Deserialize, Serialize};

use crate::WorkloadTrace;

/// Aggregate statistics of a workload trace.
///
/// `per_step_mean`/`per_step_std` are the across-VM mean and standard
/// deviation at each observation step — the series plotted in
/// Figure 1(a) for PlanetLab.
///
/// # Examples
///
/// ```
/// use megh_trace::{TraceStats, WorkloadTrace};
///
/// let t = WorkloadTrace::from_rows(300, vec![vec![10.0, 30.0], vec![20.0, 50.0]]).unwrap();
/// let s = TraceStats::compute(&t);
/// assert_eq!(s.per_step_mean, vec![15.0, 40.0]);
/// assert_eq!(s.overall_max, 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Across-VM mean utilization at each step.
    pub per_step_mean: Vec<f64>,
    /// Across-VM standard deviation at each step.
    pub per_step_std: Vec<f64>,
    /// Mean over all VMs and steps.
    pub overall_mean: f64,
    /// Standard deviation over all VMs and steps.
    pub overall_std: f64,
    /// Minimum utilization observed.
    pub overall_min: f64,
    /// Maximum utilization observed.
    pub overall_max: f64,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn compute(trace: &WorkloadTrace) -> Self {
        let steps = trace.n_steps();
        let mut per_step_mean = Vec::with_capacity(steps);
        let mut per_step_std = Vec::with_capacity(steps);
        for step in 0..steps {
            let col = trace.step_column(step);
            let m = mean(&col);
            per_step_mean.push(m);
            per_step_std.push(std_with_mean(&col, m));
        }
        let all: Vec<f64> = (0..trace.n_vms())
            .flat_map(|v| trace.vm_row(v).to_vec())
            .collect();
        let overall_mean = mean(&all);
        let overall_std = std_with_mean(&all, overall_mean);
        let overall_min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let overall_max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            per_step_mean,
            per_step_std,
            overall_mean,
            overall_std,
            overall_min: if all.is_empty() { 0.0 } else { overall_min },
            overall_max: if all.is_empty() { 0.0 } else { overall_max },
        }
    }
}

/// Task-duration statistics backing Figure 1(b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationStats {
    /// Histogram bucket edges in log10 seconds.
    pub bucket_edges_log10: Vec<f64>,
    /// Count of durations per bucket.
    pub counts: Vec<usize>,
    /// Minimum duration in seconds.
    pub min_seconds: f64,
    /// Maximum duration in seconds.
    pub max_seconds: f64,
}

impl DurationStats {
    /// Builds log10-bucketed duration statistics from raw durations.
    ///
    /// `buckets_per_decade` controls resolution (Figure 1(b) uses a
    /// log-scale horizontal axis over 10¹–10⁶ s).
    ///
    /// # Panics
    ///
    /// Panics if `buckets_per_decade == 0`.
    pub fn from_durations(durations: &[f64], buckets_per_decade: usize) -> Self {
        assert!(
            buckets_per_decade > 0,
            "need at least one bucket per decade"
        );
        if durations.is_empty() {
            return Self {
                bucket_edges_log10: Vec::new(),
                counts: Vec::new(),
                min_seconds: 0.0,
                max_seconds: 0.0,
            };
        }
        let (edges, counts) = log10_histogram(durations, buckets_per_decade);
        let min_seconds = durations.iter().cloned().fold(f64::MAX, f64::min);
        let max_seconds = durations.iter().cloned().fold(f64::MIN, f64::max);
        Self {
            bucket_edges_log10: edges,
            counts,
            min_seconds,
            max_seconds,
        }
    }

    /// Number of decades spanned by the observed durations.
    pub fn decades_spanned(&self) -> f64 {
        if self.min_seconds <= 0.0 || self.max_seconds <= 0.0 {
            return 0.0;
        }
        (self.max_seconds / self.min_seconds).log10()
    }
}

/// A point on the Cullen–Frey plane: squared skewness vs. kurtosis.
///
/// §6.2: "we plotted Cullen and Frey graph for the workloads of both
/// the datasets. They did not match with any of the standard parametric
/// distributions." The Cullen–Frey graph locates a sample by its
/// `(skewness², kurtosis)` moments; classical distributions occupy
/// known points/lines of that plane:
///
/// * normal: (0, 3) — uniform: (0, 1.8) — exponential: (4, 9);
/// * gamma family: the line `kurtosis = 1.5·skewness² + 3`;
/// * lognormal: a curve slightly above the gamma line.
///
/// [`CullenFrey::distance_to_normal`] etc. quantify the mismatch the
/// paper eyeballs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CullenFrey {
    /// Sample skewness squared.
    pub skewness_squared: f64,
    /// Sample kurtosis (non-excess; normal = 3).
    pub kurtosis: f64,
}

impl CullenFrey {
    /// Computes the Cullen–Frey coordinates of a sample.
    ///
    /// Returns `None` for fewer than 4 samples or zero variance.
    pub fn of_sample(values: &[f64]) -> Option<Self> {
        if values.len() < 4 {
            return None;
        }
        let n = values.len() as f64;
        let m = values.iter().sum::<f64>() / n;
        let m2 = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / n;
        if m2 <= 1e-12 {
            return None;
        }
        let m3 = values.iter().map(|v| (v - m).powi(3)).sum::<f64>() / n;
        let m4 = values.iter().map(|v| (v - m).powi(4)).sum::<f64>() / n;
        let skewness = m3 / m2.powf(1.5);
        Some(Self {
            skewness_squared: skewness * skewness,
            kurtosis: m4 / (m2 * m2),
        })
    }

    /// Computes the coordinates over every sample of a trace.
    pub fn of_trace(trace: &WorkloadTrace) -> Option<Self> {
        let all: Vec<f64> = (0..trace.n_vms())
            .flat_map(|v| trace.vm_row(v).to_vec())
            .collect();
        Self::of_sample(&all)
    }

    /// Euclidean distance to the normal point (0, 3).
    pub fn distance_to_normal(&self) -> f64 {
        (self.skewness_squared.powi(2) + (self.kurtosis - 3.0).powi(2)).sqrt()
    }

    /// Euclidean distance to the uniform point (0, 1.8).
    pub fn distance_to_uniform(&self) -> f64 {
        (self.skewness_squared.powi(2) + (self.kurtosis - 1.8).powi(2)).sqrt()
    }

    /// Euclidean distance to the exponential point (4, 9).
    pub fn distance_to_exponential(&self) -> f64 {
        ((self.skewness_squared - 4.0).powi(2) + (self.kurtosis - 9.0).powi(2)).sqrt()
    }

    /// Vertical distance to the gamma line `kurtosis = 1.5·s² + 3`.
    pub fn distance_to_gamma_line(&self) -> f64 {
        (self.kurtosis - (1.5 * self.skewness_squared + 3.0)).abs()
    }

    /// Whether the sample sits within `tolerance` of any of the
    /// classical references above — the paper's test, inverted.
    pub fn matches_a_standard_distribution(&self, tolerance: f64) -> bool {
        self.distance_to_normal() <= tolerance
            || self.distance_to_uniform() <= tolerance
            || self.distance_to_exponential() <= tolerance
            || self.distance_to_gamma_line() <= tolerance
    }
}

/// Histogram over log10(value) with `buckets_per_decade` resolution.
///
/// Returns `(bucket_left_edges_log10, counts)`. Values must be positive;
/// non-positive values are skipped.
pub fn log10_histogram(values: &[f64], buckets_per_decade: usize) -> (Vec<f64>, Vec<usize>) {
    let positives: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positives.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let min_log = positives
        .iter()
        .map(|v| v.log10())
        .fold(f64::MAX, f64::min)
        .floor();
    let max_log = positives.iter().map(|v| v.log10()).fold(f64::MIN, f64::max);
    let width = 1.0 / buckets_per_decade as f64;
    let n_buckets = (((max_log - min_log) / width).floor() as usize) + 1;
    let mut counts = vec![0usize; n_buckets];
    for v in &positives {
        let idx = (((v.log10() - min_log) / width).floor() as usize).min(n_buckets - 1);
        counts[idx] += 1;
    }
    let edges = (0..n_buckets).map(|i| min_log + i as f64 * width).collect();
    (edges, counts)
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn std_with_mean(values: &[f64], m: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadTrace;

    #[test]
    fn per_step_stats() {
        let t = WorkloadTrace::from_rows(300, vec![vec![0.0, 10.0], vec![20.0, 30.0]]).unwrap();
        let s = TraceStats::compute(&t);
        assert_eq!(s.per_step_mean, vec![10.0, 20.0]);
        assert_eq!(s.per_step_std, vec![10.0, 10.0]);
        assert_eq!(s.overall_min, 0.0);
        assert_eq!(s.overall_max, 30.0);
        assert_eq!(s.overall_mean, 15.0);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let t = WorkloadTrace::from_rows(300, vec![]).unwrap();
        let s = TraceStats::compute(&t);
        assert!(s.per_step_mean.is_empty());
        assert_eq!(s.overall_mean, 0.0);
        assert_eq!(s.overall_min, 0.0);
    }

    #[test]
    fn log_histogram_buckets_by_decade() {
        let values = [10.0, 15.0, 100.0, 1000.0, 1000.0];
        let (edges, counts) = log10_histogram(&values, 1);
        assert_eq!(edges, vec![1.0, 2.0, 3.0]);
        assert_eq!(counts, vec![2, 1, 2]);
    }

    #[test]
    fn log_histogram_skips_nonpositive() {
        let values = [0.0, -5.0, 10.0];
        let (_, counts) = log10_histogram(&values, 1);
        assert_eq!(counts.iter().sum::<usize>(), 1);
    }

    #[test]
    fn duration_stats_span() {
        let durations = [10.0, 100.0, 1e6];
        let d = DurationStats::from_durations(&durations, 2);
        assert_eq!(d.min_seconds, 10.0);
        assert_eq!(d.max_seconds, 1e6);
        assert!((d.decades_spanned() - 5.0).abs() < 1e-9);
        assert_eq!(d.counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn duration_stats_empty() {
        let d = DurationStats::from_durations(&[], 2);
        assert!(d.counts.is_empty());
        assert_eq!(d.decades_spanned(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn duration_stats_rejects_zero_buckets() {
        let _ = DurationStats::from_durations(&[1.0], 0);
    }

    #[test]
    fn cullen_frey_locates_known_distributions() {
        // A near-uniform discrete sample: kurtosis ≈ 1.8, skew ≈ 0.
        let uniform: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let cf = CullenFrey::of_sample(&uniform).unwrap();
        assert!(
            cf.skewness_squared < 0.01,
            "skew² = {}",
            cf.skewness_squared
        );
        assert!(
            (cf.kurtosis - 1.8).abs() < 0.05,
            "kurtosis = {}",
            cf.kurtosis
        );
        assert!(cf.distance_to_uniform() < 0.1);
        assert!(cf.distance_to_normal() > 1.0);
    }

    #[test]
    fn cullen_frey_rejects_degenerate_samples() {
        assert!(CullenFrey::of_sample(&[1.0, 2.0]).is_none());
        assert!(CullenFrey::of_sample(&[5.0; 100]).is_none());
    }

    #[test]
    fn synthetic_planetlab_matches_no_standard_distribution() {
        // §6.2's claim, applied to our calibrated generator.
        let trace = crate::PlanetLabConfig::new(100, 3).generate_steps(500);
        let cf = CullenFrey::of_trace(&trace).unwrap();
        assert!(
            !cf.matches_a_standard_distribution(0.5),
            "trace unexpectedly parametric: {cf:?}"
        );
        // The burstiness puts it far from normal in particular.
        assert!(cf.distance_to_normal() > 1.0, "{cf:?}");
    }

    #[test]
    fn synthetic_google_matches_no_standard_distribution() {
        let trace = crate::GoogleConfig::new(100, 3).generate_steps(500);
        let cf = CullenFrey::of_trace(&trace).unwrap();
        assert!(
            !cf.matches_a_standard_distribution(0.5),
            "trace unexpectedly parametric: {cf:?}"
        );
    }
}
