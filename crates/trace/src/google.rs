//! Synthetic Google-Cluster-like workload generator.
//!
//! The Google Cluster trace (§6.2, Figure 1(b)) differs sharply from
//! PlanetLab: VMs execute *tasks* with widely varying start times and
//! durations — spanning roughly 10¹ to 10⁶ seconds with no standard
//! parametric fit — and obfuscated, generally low resource usage. Each of
//! the paper's 2000 VMs runs an individual task to completion and then
//! switches to another.
//!
//! The generator mirrors that structure: per VM, a renewal process of
//! tasks whose durations are drawn log-uniformly over `[10¹, 10⁶]`
//! seconds (matching the figure's support and its non-parametric spread),
//! separated by short idle gaps, with per-task utilization drawn from a
//! low-mean log-normal. Task start times are staggered by a random
//! initial offset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::source::{GoogleSource, TraceSource};
use crate::{WorkloadTrace, STEPS_PER_DAY};

/// Configuration for the Google-Cluster-like generator.
///
/// # Examples
///
/// ```
/// use megh_trace::GoogleConfig;
///
/// let trace = GoogleConfig::new(100, 7).generate(1);
/// assert_eq!(trace.n_vms(), 100);
/// assert!(trace.overall_mean() < 15.0); // low, obfuscated usage
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoogleConfig {
    /// Number of VM workload rows to generate.
    pub n_vms: usize,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Minimum task duration in seconds (paper: ~10¹).
    pub min_task_seconds: f64,
    /// Maximum task duration in seconds (paper: ~10⁶).
    pub max_task_seconds: f64,
    /// Mean of the per-task utilization log-normal (percent).
    pub task_util_mean: f64,
    /// Expected idle gap between tasks, in steps.
    pub mean_idle_steps: f64,
}

impl GoogleConfig {
    /// Creates a configuration with the paper-calibrated defaults.
    pub fn new(n_vms: usize, seed: u64) -> Self {
        Self {
            n_vms,
            seed,
            min_task_seconds: 10.0,
            max_task_seconds: 1e6,
            task_util_mean: 9.0,
            mean_idle_steps: 2.0,
        }
    }

    /// A lazy streaming source of `n_steps` columns; the preferred entry
    /// point. Memory is `O(n_vms)` regardless of `n_steps`.
    pub fn source(&self, n_steps: usize) -> GoogleSource {
        GoogleSource::new(self.clone(), n_steps)
    }

    /// Generates a trace spanning `days` simulated days.
    ///
    /// Thin materializing wrapper over [`source`](Self::source) +
    /// [`TraceSource::take_steps`]; prefer the streaming API for long
    /// traces.
    pub fn generate(&self, days: usize) -> WorkloadTrace {
        self.generate_steps(days * STEPS_PER_DAY)
    }

    /// Generates a trace with an explicit number of 5-minute steps.
    ///
    /// Thin materializing wrapper over [`source`](Self::source) +
    /// [`TraceSource::take_steps`]; task durations can be recovered with
    /// [`GoogleConfig::sample_task_durations`] for Figure 1(b).
    pub fn generate_steps(&self, n_steps: usize) -> WorkloadTrace {
        self.source(n_steps).take_steps(n_steps)
    }

    /// Draws one task duration in seconds (log-uniform over the support).
    pub(crate) fn sample_duration<R: Rng>(&self, rng: &mut R) -> f64 {
        let lo = self.min_task_seconds.max(1.0).ln();
        let hi = self.max_task_seconds.max(self.min_task_seconds + 1.0).ln();
        rng.gen_range(lo..hi).exp()
    }

    /// Samples `n` task durations (seconds) from the duration law.
    ///
    /// Used by the Figure 1(b) experiment to draw the duration histogram
    /// without reverse-engineering it from the utilization rows.
    pub fn sample_task_durations(&self, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x9e37_79b9));
        (0..n).map(|_| self.sample_duration(&mut rng)).collect()
    }
}

/// Geometric sample: number of failures before the first success.
pub(crate) fn sample_geometric<R: Rng>(rng: &mut R, p: f64) -> usize {
    let p = p.clamp(1e-9, 1.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    (u.ln() / (1.0 - p).max(1e-12).ln()).floor().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_under_seed() {
        let a = GoogleConfig::new(10, 5).generate_steps(200);
        let b = GoogleConfig::new(10, 5).generate_steps(200);
        assert_eq!(a, b);
    }

    #[test]
    fn shape_matches_request() {
        let t = GoogleConfig::new(9, 1).generate(1);
        assert_eq!(t.n_vms(), 9);
        assert_eq!(t.n_steps(), STEPS_PER_DAY);
    }

    #[test]
    fn usage_is_low_on_average() {
        // Google tasks are low-utilization: Figures 3(c)/5(c) hinge on it.
        let t = GoogleConfig::new(300, 3).generate(2);
        let mean = t.overall_mean();
        assert!(mean < 15.0, "mean = {mean}");
        assert!(mean > 1.0, "mean = {mean} — VMs should not be fully idle");
    }

    #[test]
    fn durations_span_many_decades() {
        let durations = GoogleConfig::new(1, 9).sample_task_durations(5000);
        let min = durations.iter().cloned().fold(f64::MAX, f64::min);
        let max = durations.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 100.0, "min duration = {min}");
        assert!(max > 1e5, "max duration = {max}");
    }

    #[test]
    fn durations_are_log_uniform_not_clustered() {
        // Roughly equal mass per decade over [10¹, 10⁶): 5 decades.
        let durations = GoogleConfig::new(1, 10).sample_task_durations(50_000);
        let mut per_decade = [0usize; 5];
        for d in &durations {
            let idx = (d.log10().floor() as usize).clamp(1, 5) - 1;
            per_decade[idx] += 1;
        }
        for (i, &count) in per_decade.iter().enumerate() {
            let frac = count as f64 / durations.len() as f64;
            assert!(
                (frac - 0.2).abs() < 0.05,
                "decade {i} holds fraction {frac}"
            );
        }
    }

    #[test]
    fn rows_contain_idle_periods() {
        // Unlike PlanetLab, Google VMs have genuine idle stretches.
        let t = GoogleConfig::new(100, 21).generate(1);
        let zeros: usize = (0..t.n_vms())
            .flat_map(|v| t.vm_row(v).to_vec())
            .filter(|&u| u == 0.0)
            .count();
        assert!(zeros > 0, "expected some idle (zero-utilization) samples");
    }

    #[test]
    fn utilization_always_in_range() {
        let t = GoogleConfig::new(40, 23).generate_steps(400);
        for vm in 0..t.n_vms() {
            for &u in t.vm_row(vm) {
                assert!((0.0..=100.0).contains(&u));
            }
        }
    }

    #[test]
    fn geometric_sampler_is_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let g = sample_geometric(&mut rng, 0.3);
            assert!(g < 10_000);
        }
    }
}
