//! Streaming trace sources: chunked, resumable producers of per-step
//! utilization columns.
//!
//! [`TraceSource`] is the streaming counterpart of [`WorkloadTrace`]. A
//! source declares its shape up front ([`TraceHeader`]) and then fills
//! caller-provided buffers with consecutive *columns* — all VMs at one
//! step — so a consumer (the simulation engine) can hold a bounded chunk
//! of the trace instead of the whole `n_vms × n_steps` matrix:
//!
//! * the synthetic generators ([`PlanetLabSource`], [`GoogleSource`],
//!   [`DiurnalSource`]) synthesize columns on demand from per-VM RNG
//!   state, so a year-long trace costs per-VM state, not per-sample RAM;
//! * [`TraceCursor`] / [`MaterializedSource`] replay an in-memory
//!   [`WorkloadTrace`] (the materialized case);
//! * [`Scaled`], [`Noisy`], and [`Coarsened`] are composable adapters
//!   (`source.scaled(f).with_noise(sigma, seed)`) replacing whole-trace
//!   transform copies.
//!
//! # Contract
//!
//! * `fill_chunk(buf)` expects `buf.len()` to be a (non-zero) multiple of
//!   `header().n_vms`; it writes column-major (`buf[s * n_vms + vm]`),
//!   returns the number of whole steps written, and returns `0` once the
//!   source is exhausted (or when `n_vms == 0`). It never allocates.
//! * Sources are *resumable*: consecutive `fill_chunk` calls continue
//!   where the last one stopped, and the concatenation of the returned
//!   chunks is independent of the chunk size used to read them.
//! * `reset()` rewinds to step 0 and reproduces the identical stream.
//! * Emitted values are finite and within `[0, 100]`;
//!   `header().step_seconds` is non-zero.

// This module is on the simulation hot path: steady-state `fill_chunk`
// calls must not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

use crate::{
    DiurnalConfig, GoogleConfig, PlanetLabConfig, WorkloadTrace, STEPS_PER_DAY, STEP_SECONDS,
};

/// The declared shape of a [`TraceSource`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Number of VM rows per column.
    pub n_vms: usize,
    /// Total number of steps the source will emit.
    pub n_steps: usize,
    /// Sampling interval in seconds (non-zero).
    pub step_seconds: u64,
}

/// A chunked, resumable stream of per-step utilization columns.
///
/// See the [module documentation](self) for the full contract.
///
/// # Examples
///
/// ```
/// use megh_trace::{PlanetLabConfig, TraceSource};
///
/// let mut source = PlanetLabConfig::new(4, 7).source(100);
/// assert_eq!(source.header().n_vms, 4);
/// let mut chunk = vec![0.0; 3 * 4]; // three steps of four VMs
/// assert_eq!(source.fill_chunk(&mut chunk), 3);
/// assert!(chunk.iter().all(|u| (0.0..=100.0).contains(u)));
/// ```
pub trait TraceSource {
    /// The stream's shape: `(n_vms, n_steps, step_seconds)`.
    fn header(&self) -> TraceHeader;

    /// Fills `buf` (length a multiple of `n_vms`) with the next columns,
    /// column-major (`buf[s * n_vms + vm]`). Returns the number of whole
    /// steps written; `0` means exhausted. Must not allocate.
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize;

    /// Rewinds to step 0; the stream replays byte-identically.
    fn reset(&mut self);

    /// Materializes the next `n` steps into a [`WorkloadTrace`].
    ///
    /// This is the single constructor path behind every generator's
    /// `generate`/`generate_steps` pair: values are defensively
    /// sanitized into `[0, 100]` so the result is always a valid trace.
    /// Sources shorter than `n` yield a shorter trace.
    fn take_steps(mut self, n: usize) -> WorkloadTrace
    where
        Self: Sized,
    {
        let header = self.header();
        let n_vms = header.n_vms;
        if n_vms == 0 || n == 0 {
            // lint: allow(alloc) — cold materialization path
            return WorkloadTrace::from_rows(header.step_seconds, Vec::new())
                .expect("an empty trace with a non-zero interval is valid");
        }
        // lint: allow(alloc) — cold materialization path
        let mut rows: Vec<Vec<f64>> = (0..n_vms).map(|_| Vec::with_capacity(n)).collect();
        let chunk_steps = 64usize.min(n);
        // lint: allow(alloc) — cold materialization path
        let mut buf = vec![0.0f64; chunk_steps * n_vms];
        let mut done = 0usize;
        while done < n {
            let want = chunk_steps.min(n - done);
            // lint: allow(implicit_panic) -- want <= chunk_steps and buf is chunk_steps * n_vms long
            let got = self.fill_chunk(&mut buf[..want * n_vms]);
            if got == 0 {
                break;
            }
            for s in 0..got {
                for (vm, row) in rows.iter_mut().enumerate() {
                    row.push(sanitize(buf[s * n_vms + vm]));
                }
            }
            done += got;
        }
        WorkloadTrace::from_rows(header.step_seconds, rows)
            .expect("sanitized columns always form a valid trace")
    }

    /// Materializes the whole declared stream (`header().n_steps`).
    fn materialize(self) -> WorkloadTrace
    where
        Self: Sized,
    {
        let n = self.header().n_steps;
        self.take_steps(n)
    }

    /// Scales every emitted value by `factor`, clamped to `[0, 100]`.
    fn scaled(self, factor: f64) -> Scaled<Self>
    where
        Self: Sized,
    {
        Scaled {
            inner: self,
            factor,
        }
    }

    /// Adds zero-mean Gaussian noise (σ in utilization points) to every
    /// emitted value, clamped to `[0, 100]`. Deterministic under `seed`.
    fn with_noise(self, sigma: f64, seed: u64) -> Noisy<Self>
    where
        Self: Sized,
    {
        Noisy::new(self, sigma, seed)
    }

    /// Resamples to a coarser interval by averaging whole buckets of
    /// `factor` consecutive steps (trailing partial buckets dropped).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    fn coarsened(self, factor: usize) -> Coarsened<Self>
    where
        Self: Sized,
    {
        assert!(factor > 0, "factor must be positive");
        Coarsened::new(self, factor)
    }
}

// The forwarding impls are generic over every source, so the lint's
// conservative trait dispatch sees the file readers' error paths (which
// allocate an error value once, then go quiescent) behind `fill_chunk`
// and the readers' buffer re-creation behind `reset`. Generators and
// in-memory cursors — the per-step hot path — stay alloc-free.
impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn header(&self) -> TraceHeader {
        (**self).header()
    }
    // lint: allow(transitive_alloc)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        (**self).fill_chunk(buf)
    }
    // lint: allow(transitive_alloc)
    fn reset(&mut self) {
        (**self).reset();
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn header(&self) -> TraceHeader {
        (**self).header()
    }
    // lint: allow(transitive_alloc)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        (**self).fill_chunk(buf)
    }
    // lint: allow(transitive_alloc)
    fn reset(&mut self) {
        (**self).reset();
    }
}

fn sanitize(u: f64) -> f64 {
    if u.is_finite() {
        u.clamp(0.0, 100.0)
    } else {
        0.0
    }
}

/// SplitMix64 finalizer used to derive independent per-VM RNG seeds
/// from `(trace seed, vm index)`. Streaming generators give every VM
/// its own RNG so a column can be synthesized without materializing
/// rows (the shared-RNG legacy order was row-major).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn vm_seed(seed: u64, vm: usize) -> u64 {
    splitmix64(splitmix64(seed).wrapping_add((vm as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Shared column fill over an in-memory [`WorkloadTrace`].
// lint: depth_budget(3)
fn fill_from_trace(trace: &WorkloadTrace, next: &mut usize, buf: &mut [f64]) -> usize {
    let n = trace.n_vms();
    if n == 0 {
        return 0;
    }
    let want = (buf.len() / n).min(trace.n_steps().saturating_sub(*next));
    for s in 0..want {
        // lint: allow(implicit_panic) -- s < want <= buf.len() / n, so (s + 1) * n <= buf.len()
        trace.step_column_into(*next + s, &mut buf[s * n..(s + 1) * n]);
    }
    *next += want;
    want
}

/// A borrowing [`TraceSource`] over an in-memory [`WorkloadTrace`].
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a WorkloadTrace,
    next: usize,
}

impl TraceSource for TraceCursor<'_> {
    fn header(&self) -> TraceHeader {
        TraceHeader {
            n_vms: self.trace.n_vms(),
            n_steps: self.trace.n_steps(),
            step_seconds: self.trace.step_seconds(),
        }
    }
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        fill_from_trace(self.trace, &mut self.next, buf)
    }
    fn reset(&mut self) {
        self.next = 0;
    }
}

/// An owning [`TraceSource`] over an in-memory [`WorkloadTrace`] — the
/// materialized case, e.g. for `Box<dyn TraceSource>` pipelines.
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    trace: WorkloadTrace,
    next: usize,
}

impl MaterializedSource {
    /// The wrapped trace.
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }
}

impl TraceSource for MaterializedSource {
    fn header(&self) -> TraceHeader {
        TraceHeader {
            n_vms: self.trace.n_vms(),
            n_steps: self.trace.n_steps(),
            step_seconds: self.trace.step_seconds(),
        }
    }
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        fill_from_trace(&self.trace, &mut self.next, buf)
    }
    fn reset(&mut self) {
        self.next = 0;
    }
}

impl WorkloadTrace {
    /// A borrowing streaming view of this trace, positioned at step 0.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            next: 0,
        }
    }

    /// Converts the trace into an owning [`TraceSource`].
    pub fn into_source(self) -> MaterializedSource {
        MaterializedSource {
            trace: self,
            next: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// PlanetLab generator source
// ---------------------------------------------------------------------------

/// Per-VM Markov/AR(1) state of the PlanetLab generator.
#[derive(Debug, Clone)]
struct PlVm {
    rng: StdRng,
    base: f64,
    bursting: bool,
    level: f64,
    current: Option<f64>,
}

impl PlVm {
    fn init(cfg: &PlanetLabConfig, base_dist: &LogNormal, burst_level: &Normal, vm: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(vm_seed(cfg.seed, vm));
        let base = base_dist.sample(&mut rng).clamp(3.0, 25.0);
        let bursting = rng.gen_bool(cfg.burst_fraction.clamp(0.0, 1.0));
        let level = if bursting {
            burst_level.sample(&mut rng).clamp(50.0, 95.0)
        } else {
            base
        };
        Self {
            rng,
            base,
            bursting,
            level,
            current: None,
        }
    }

    fn advance(
        &mut self,
        step: usize,
        p_exit: f64,
        p_enter: f64,
        burst_level: &Normal,
        noise: &Normal,
    ) -> f64 {
        // Diurnal modulation: burst onset twice as likely at the daily
        // peak as at the trough.
        let phase = (step % STEPS_PER_DAY) as f64 / STEPS_PER_DAY as f64 * std::f64::consts::TAU;
        let diurnal = 1.0 + 0.5 * phase.sin();
        if self.bursting {
            if self.rng.gen_bool(p_exit.clamp(0.0, 1.0)) {
                self.bursting = false;
                self.level = self.base;
            }
        } else if self.rng.gen_bool((p_enter * diurnal).clamp(0.0, 1.0)) {
            self.bursting = true;
            self.level = burst_level.sample(&mut self.rng).clamp(50.0, 95.0);
        }
        // AR(1) pull towards the regime level plus white noise.
        let target = if self.bursting { self.level } else { self.base };
        let current = self.current.unwrap_or(target);
        let next =
            (current + 0.6 * (target - current) + noise.sample(&mut self.rng)).clamp(0.0, 100.0);
        self.current = Some(next);
        next
    }
}

/// Lazy [`TraceSource`] of the PlanetLab-like generator: columns are
/// synthesized on demand from per-VM state, so memory is `O(n_vms)`
/// regardless of trace length.
#[derive(Debug, Clone)]
pub struct PlanetLabSource {
    cfg: PlanetLabConfig,
    n_steps: usize,
    next_step: usize,
    vms: Vec<PlVm>,
    base_dist: LogNormal,
    burst_level: Normal,
    noise: Normal,
    p_exit: f64,
    p_enter: f64,
}

impl PlanetLabSource {
    pub(crate) fn new(cfg: PlanetLabConfig, n_steps: usize) -> Self {
        let base_dist =
            LogNormal::new(cfg.quiet_mean.max(0.1).ln(), 0.45).expect("valid lognormal parameters");
        let burst_level = Normal::new(cfg.burst_mean, 6.0).expect("valid normal parameters");
        let noise = Normal::new(0.0, 1.5).expect("valid normal parameters");
        let p_exit = 1.0 / cfg.mean_burst_steps.max(1.0);
        // Stationarity: f = p_enter / (p_enter + p_exit).
        let p_enter = (cfg.burst_fraction * p_exit) / (1.0 - cfg.burst_fraction).max(1e-9);
        let vms = (0..cfg.n_vms)
            .map(|vm| PlVm::init(&cfg, &base_dist, &burst_level, vm))
            .collect(); // lint: allow(alloc) — one-time construction
        Self {
            cfg,
            n_steps,
            next_step: 0,
            vms,
            base_dist,
            burst_level,
            noise,
            p_exit,
            p_enter,
        }
    }
}

impl TraceSource for PlanetLabSource {
    fn header(&self) -> TraceHeader {
        TraceHeader {
            n_vms: self.cfg.n_vms,
            n_steps: self.n_steps,
            step_seconds: STEP_SECONDS,
        }
    }

    // lint: depth_budget(4)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let n = self.vms.len();
        if n == 0 {
            return 0;
        }
        let want = (buf.len() / n).min(self.n_steps.saturating_sub(self.next_step));
        let Self {
            vms,
            burst_level,
            noise,
            p_exit,
            p_enter,
            next_step,
            ..
        } = self;
        for s in 0..want {
            let step = *next_step + s;
            for (vm, slot) in vms.iter_mut().zip(buf[s * n..(s + 1) * n].iter_mut()) {
                *slot = vm.advance(step, *p_exit, *p_enter, burst_level, noise);
            }
        }
        self.next_step += want;
        want
    }

    fn reset(&mut self) {
        self.next_step = 0;
        let Self {
            cfg,
            vms,
            base_dist,
            burst_level,
            ..
        } = self;
        for (i, vm) in vms.iter_mut().enumerate() {
            *vm = PlVm::init(cfg, base_dist, burst_level, i);
        }
    }
}

// ---------------------------------------------------------------------------
// Google generator source
// ---------------------------------------------------------------------------

/// Per-VM renewal-process phase of the Google generator.
#[derive(Debug, Clone, Copy)]
enum GMode {
    /// Staggered-start idle prefix.
    Pad { left: usize },
    /// Idle gap between tasks.
    Gap { left: usize },
    /// A running task at a fixed base level.
    Task { left: usize, level: f64 },
}

#[derive(Debug, Clone)]
struct GVm {
    rng: StdRng,
    mode: GMode,
}

impl GVm {
    fn init(cfg: &GoogleConfig, vm: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(vm_seed(cfg.seed, vm));
        // Staggered starts: idle for a random prefix.
        let offset = rng.gen_range(0..=(STEPS_PER_DAY / 4).max(1));
        Self {
            rng,
            mode: GMode::Pad { left: offset },
        }
    }

    fn advance(&mut self, cfg: &GoogleConfig, util_dist: &LogNormal, noise: &Normal) -> f64 {
        loop {
            match self.mode {
                GMode::Pad { left } if left > 0 => {
                    self.mode = GMode::Pad { left: left - 1 };
                    return 0.0;
                }
                GMode::Gap { left } if left > 0 => {
                    self.mode = GMode::Gap { left: left - 1 };
                    return 0.0;
                }
                GMode::Task { left, level } if left > 0 => {
                    self.mode = GMode::Task {
                        left: left - 1,
                        level,
                    };
                    return (level + noise.sample(&mut self.rng)).clamp(0.1, 100.0);
                }
                // Pad over or task finished: draw the next idle gap.
                GMode::Pad { .. } | GMode::Task { .. } => {
                    let gap = crate::google::sample_geometric(
                        &mut self.rng,
                        1.0 / (cfg.mean_idle_steps + 1.0),
                    );
                    self.mode = GMode::Gap { left: gap };
                }
                // Gap over: draw the next task.
                GMode::Gap { .. } => {
                    let duration_s = cfg.sample_duration(&mut self.rng);
                    let duration_steps =
                        ((duration_s / STEP_SECONDS as f64).ceil() as usize).max(1);
                    let level = util_dist.sample(&mut self.rng).clamp(0.5, 60.0);
                    self.mode = GMode::Task {
                        left: duration_steps,
                        level,
                    };
                }
            }
        }
    }
}

/// Lazy [`TraceSource`] of the Google-Cluster-like generator.
#[derive(Debug, Clone)]
pub struct GoogleSource {
    cfg: GoogleConfig,
    n_steps: usize,
    next_step: usize,
    vms: Vec<GVm>,
    util_dist: LogNormal,
    noise: Normal,
}

impl GoogleSource {
    pub(crate) fn new(cfg: GoogleConfig, n_steps: usize) -> Self {
        let util_dist = LogNormal::new(cfg.task_util_mean.max(0.1).ln(), 0.6)
            .expect("valid lognormal parameters");
        let noise = Normal::new(0.0, 0.8).expect("valid normal parameters");
        let vms = (0..cfg.n_vms).map(|vm| GVm::init(&cfg, vm)).collect(); // lint: allow(alloc) — one-time construction
        Self {
            cfg,
            n_steps,
            next_step: 0,
            vms,
            util_dist,
            noise,
        }
    }
}

impl TraceSource for GoogleSource {
    fn header(&self) -> TraceHeader {
        TraceHeader {
            n_vms: self.cfg.n_vms,
            n_steps: self.n_steps,
            step_seconds: STEP_SECONDS,
        }
    }

    // lint: depth_budget(4)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let n = self.vms.len();
        if n == 0 {
            return 0;
        }
        let want = (buf.len() / n).min(self.n_steps.saturating_sub(self.next_step));
        let Self {
            cfg,
            vms,
            util_dist,
            noise,
            ..
        } = self;
        for s in 0..want {
            for (vm, slot) in vms.iter_mut().zip(buf[s * n..(s + 1) * n].iter_mut()) {
                *slot = vm.advance(cfg, util_dist, noise);
            }
        }
        self.next_step += want;
        want
    }

    fn reset(&mut self) {
        self.next_step = 0;
        let Self { cfg, vms, .. } = self;
        for (i, vm) in vms.iter_mut().enumerate() {
            *vm = GVm::init(cfg, i);
        }
    }
}

// ---------------------------------------------------------------------------
// Diurnal generator source
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct DiVm {
    rng: StdRng,
    amplitude: f64,
    offset: isize,
    prev: f64,
}

impl DiVm {
    fn init(cfg: &DiurnalConfig, scale_dist: &LogNormal, vm: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(vm_seed(cfg.seed, vm));
        // Per-VM amplitude and a phase offset of up to ±1 hour.
        let amplitude = scale_dist.sample(&mut rng).clamp(0.4, 2.0);
        let offset = rng.gen_range(0..=24usize) as isize - 12;
        Self {
            rng,
            amplitude,
            offset,
            prev: 0.0,
        }
    }

    fn advance(&mut self, step: usize, cfg: &DiurnalConfig, noise: &Normal) -> f64 {
        let shifted = (step as isize + self.offset).max(0) as usize;
        let target = (cfg.profile(shifted) * self.amplitude).clamp(0.0, 100.0);
        let value = self.prev + 0.7 * (target - self.prev) + noise.sample(&mut self.rng);
        self.prev = value.clamp(0.0, 100.0);
        self.prev
    }
}

/// Lazy [`TraceSource`] of the diurnal enterprise generator.
#[derive(Debug, Clone)]
pub struct DiurnalSource {
    cfg: DiurnalConfig,
    n_steps: usize,
    next_step: usize,
    vms: Vec<DiVm>,
    scale_dist: LogNormal,
    noise: Normal,
}

impl DiurnalSource {
    pub(crate) fn new(cfg: DiurnalConfig, n_steps: usize) -> Self {
        let scale_dist = LogNormal::new(0.0, 0.3).expect("valid lognormal");
        let noise = Normal::new(0.0, cfg.noise_sigma.max(0.0)).expect("valid normal");
        let vms = (0..cfg.n_vms)
            .map(|vm| DiVm::init(&cfg, &scale_dist, vm))
            .collect(); // lint: allow(alloc) — one-time construction
        Self {
            cfg,
            n_steps,
            next_step: 0,
            vms,
            scale_dist,
            noise,
        }
    }
}

impl TraceSource for DiurnalSource {
    fn header(&self) -> TraceHeader {
        TraceHeader {
            n_vms: self.cfg.n_vms,
            n_steps: self.n_steps,
            step_seconds: STEP_SECONDS,
        }
    }

    // lint: depth_budget(4)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let n = self.vms.len();
        if n == 0 {
            return 0;
        }
        let want = (buf.len() / n).min(self.n_steps.saturating_sub(self.next_step));
        let Self {
            cfg,
            vms,
            noise,
            next_step,
            ..
        } = self;
        for s in 0..want {
            let step = *next_step + s;
            for (vm, slot) in vms.iter_mut().zip(buf[s * n..(s + 1) * n].iter_mut()) {
                *slot = vm.advance(step, cfg, noise);
            }
        }
        self.next_step += want;
        want
    }

    fn reset(&mut self) {
        self.next_step = 0;
        let Self {
            cfg,
            vms,
            scale_dist,
            ..
        } = self;
        for (i, vm) in vms.iter_mut().enumerate() {
            *vm = DiVm::init(cfg, scale_dist, i);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
//
// Adapters wrap *any* source, so — exactly as for the forwarding impls
// above — the lint's conservative trait dispatch reaches the file
// readers' error-path allocations through `inner.fill_chunk()` /
// `inner.reset()`, and the dispatch cycle defeats a finite depth
// budget. The adapters themselves only touch the caller's buffer and
// their own pre-allocated scratch.
// ---------------------------------------------------------------------------

/// Adapter multiplying every value by a factor, clamped to `[0, 100]`.
#[derive(Debug, Clone)]
pub struct Scaled<S> {
    inner: S,
    factor: f64,
}

impl<S: TraceSource> TraceSource for Scaled<S> {
    fn header(&self) -> TraceHeader {
        self.inner.header()
    }

    // lint: allow(transitive_alloc)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let got = self.inner.fill_chunk(buf);
        let n = self.inner.header().n_vms;
        // lint: allow(implicit_panic) -- fill_chunk returns at most buf.len() / n_vms whole columns
        for v in &mut buf[..got * n] {
            *v = (*v * self.factor).clamp(0.0, 100.0);
        }
        got
    }

    // lint: allow(transitive_alloc)
    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Adapter adding zero-mean Gaussian noise, clamped to `[0, 100]`.
///
/// Draws are column-major in stream order, so the noise sequence is
/// independent of the chunk size used to read the stream.
#[derive(Debug, Clone)]
pub struct Noisy<S> {
    inner: S,
    seed: u64,
    rng: StdRng,
    dist: Normal,
}

impl<S> Noisy<S> {
    fn new(inner: S, sigma: f64, seed: u64) -> Self {
        Self {
            inner,
            seed,
            rng: StdRng::seed_from_u64(seed),
            dist: Normal::new(0.0, sigma.max(0.0)).expect("sigma >= 0"),
        }
    }
}

impl<S: TraceSource> TraceSource for Noisy<S> {
    fn header(&self) -> TraceHeader {
        self.inner.header()
    }

    // lint: allow(transitive_alloc)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let got = self.inner.fill_chunk(buf);
        let n = self.inner.header().n_vms;
        // lint: allow(implicit_panic) -- fill_chunk returns at most buf.len() / n_vms whole columns
        for v in &mut buf[..got * n] {
            *v = (*v + self.dist.sample(&mut self.rng)).clamp(0.0, 100.0);
        }
        got
    }

    // lint: allow(transitive_alloc)
    fn reset(&mut self) {
        self.inner.reset();
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Adapter averaging whole buckets of `factor` consecutive steps.
#[derive(Debug, Clone)]
pub struct Coarsened<S> {
    inner: S,
    factor: usize,
    acc: Vec<f64>,
}

impl<S: TraceSource> Coarsened<S> {
    fn new(inner: S, factor: usize) -> Self {
        let n = inner.header().n_vms;
        Self {
            inner,
            factor,
            acc: vec![0.0; n], // lint: allow(alloc) — one-time scratch
        }
    }
}

impl<S: TraceSource> TraceSource for Coarsened<S> {
    fn header(&self) -> TraceHeader {
        let inner = self.inner.header();
        let factor = self.factor;
        debug_assert!(factor > 0, "Coarsened::new rejects factor 0");
        TraceHeader {
            n_vms: inner.n_vms,
            n_steps: inner.n_steps / factor,
            step_seconds: inner.step_seconds * factor as u64,
        }
    }

    // lint: allow(transitive_alloc)
    fn fill_chunk(&mut self, buf: &mut [f64]) -> usize {
        let n = self.inner.header().n_vms;
        if n == 0 {
            return 0;
        }
        // The zero guard above makes the division safe; the checker sees
        // usize-ness through the explicit contract.
        debug_assert!(n > 0);
        let coarse_want = buf.len() / n;
        for cs in 0..coarse_want {
            // lint: allow(implicit_panic) -- cs < buf.len() / n, so (cs + 1) * n <= buf.len()
            let col = &mut buf[cs * n..(cs + 1) * n];
            self.acc.iter_mut().for_each(|a| *a = 0.0);
            for _ in 0..self.factor {
                // A partial trailing bucket is dropped, matching the
                // whole-trace `coarsen` transform.
                if self.inner.fill_chunk(col) == 0 {
                    return cs;
                }
                for (a, &v) in self.acc.iter_mut().zip(col.iter()) {
                    *a += v;
                }
            }
            for (c, &a) in col.iter_mut().zip(self.acc.iter()) {
                *c = a / self.factor as f64;
            }
        }
        coarse_want
    }

    // lint: allow(transitive_alloc)
    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> WorkloadTrace {
        WorkloadTrace::from_rows(
            300,
            vec![vec![10.0, 20.0, 30.0, 40.0], vec![0.0, 50.0, 100.0, 25.0]],
        )
        .unwrap()
    }

    /// Reads a source to exhaustion `chunk_steps` at a time.
    fn drain(source: &mut dyn TraceSource, chunk_steps: usize) -> Vec<f64> {
        let n = source.header().n_vms;
        let mut buf = vec![0.0; chunk_steps.max(1) * n.max(1)];
        let mut all = Vec::new();
        loop {
            let got = source.fill_chunk(&mut buf);
            if got == 0 {
                return all;
            }
            all.extend_from_slice(&buf[..got * n]);
        }
    }

    #[test]
    fn cursor_streams_the_trace_column_major() {
        let t = toy();
        let mut cursor = t.cursor();
        assert_eq!(
            cursor.header(),
            TraceHeader {
                n_vms: 2,
                n_steps: 4,
                step_seconds: 300
            }
        );
        let all = drain(&mut cursor, 3);
        assert_eq!(all, vec![10.0, 0.0, 20.0, 50.0, 30.0, 100.0, 40.0, 25.0]);
    }

    #[test]
    fn chunk_size_does_not_change_the_stream() {
        let t = PlanetLabConfig::new(5, 9).generate_steps(40);
        let whole = drain(&mut t.cursor(), 40);
        for chunk in [1, 3, 7, 64] {
            assert_eq!(drain(&mut t.cursor(), chunk), whole, "chunk {chunk}");
        }
    }

    #[test]
    fn take_steps_round_trips_a_materialized_trace() {
        let t = toy();
        assert_eq!(t.cursor().take_steps(4), t);
        assert_eq!(t.cursor().take_steps(2), t.truncated(2));
        assert_eq!(t.clone().into_source().take_steps(4), t);
    }

    #[test]
    fn generator_sources_match_generate_steps() {
        let pl = PlanetLabConfig::new(6, 3);
        assert_eq!(pl.source(50).take_steps(50), pl.generate_steps(50));
        let g = GoogleConfig::new(6, 3);
        assert_eq!(g.source(50).take_steps(50), g.generate_steps(50));
        let d = DiurnalConfig::new(6, 3);
        assert_eq!(d.source(50).take_steps(50), d.generate_steps(50));
    }

    #[test]
    fn generator_chunked_reads_equal_whole_reads() {
        for chunk in [1, 7, 64] {
            let mut a = GoogleConfig::new(4, 11).source(100);
            let mut b = GoogleConfig::new(4, 11).source(100);
            assert_eq!(drain(&mut a, chunk), drain(&mut b, 100), "chunk {chunk}");
        }
    }

    #[test]
    fn reset_replays_identically() {
        let mut s = PlanetLabConfig::new(3, 21).source(30);
        let first = drain(&mut s, 8);
        assert_eq!(s.fill_chunk(&mut [0.0; 3]), 0, "exhausted before reset");
        s.reset();
        assert_eq!(drain(&mut s, 8), first);

        let mut noisy = DiurnalConfig::new(3, 5).source(20).with_noise(2.0, 77);
        let first = drain(&mut noisy, 6);
        noisy.reset();
        assert_eq!(drain(&mut noisy, 6), first);
    }

    #[test]
    fn per_vm_streams_are_prefix_stable() {
        // A VM's series must not depend on how many other VMs exist:
        // that is what per-VM seeding buys over the legacy shared RNG.
        let a = PlanetLabConfig::new(2, 5).source(20).take_steps(20);
        let b = PlanetLabConfig::new(6, 5).source(20).take_steps(20);
        assert_eq!(a.vm_row(0), b.vm_row(0));
        assert_eq!(a.vm_row(1), b.vm_row(1));
    }

    #[test]
    fn scaled_adapter_matches_scale_transform() {
        let t = toy();
        let scaled = t.cursor().scaled(3.0).take_steps(4);
        assert_eq!(scaled, crate::scale_utilization(&t, 3.0));
        assert_eq!(scaled.utilization(0, 3), 100.0, "clamped");
    }

    #[test]
    fn coarsened_adapter_averages_and_rescales_interval() {
        let t = toy();
        let c = t.cursor().coarsened(2);
        assert_eq!(
            c.header(),
            TraceHeader {
                n_vms: 2,
                n_steps: 2,
                step_seconds: 600
            }
        );
        let coarse = c.take_steps(2);
        assert_eq!(coarse.utilization(0, 0), 15.0);
        assert_eq!(coarse.utilization(0, 1), 35.0);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn coarsened_rejects_zero_factor() {
        let t = toy();
        let _ = t.cursor().coarsened(0);
    }

    #[test]
    fn boxed_dyn_source_works() {
        let mut source: Box<dyn TraceSource> = Box::new(GoogleConfig::new(3, 2).source(25));
        assert_eq!(source.header().n_vms, 3);
        let mut buf = vec![0.0; 3 * 4];
        let mut steps = 0;
        loop {
            let got = source.fill_chunk(&mut buf);
            if got == 0 {
                break;
            }
            steps += got;
        }
        assert_eq!(steps, 25);
        source.reset();
        let trace = source.take_steps(25);
        assert_eq!(trace.n_steps(), 25);
    }

    #[test]
    fn empty_sources_are_exhausted_immediately() {
        let mut s = PlanetLabConfig::new(0, 1).source(10);
        assert_eq!(s.fill_chunk(&mut []), 0);
        assert_eq!(s.take_steps(10).n_vms(), 0);
    }

    #[test]
    fn vm_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..4u64 {
            for vm in 0..64usize {
                assert!(seen.insert(vm_seed(seed, vm)), "collision at {seed}/{vm}");
            }
        }
    }
}
