//! Loaders for the *real* trace formats, for users who have the data.
//!
//! The synthetic generators in this crate reproduce the published
//! statistics, but anyone holding the original datasets can feed them
//! in directly:
//!
//! * **CloudSim PlanetLab format**: a directory per day, one file per
//!   VM, each file containing one integer utilization percentage per
//!   line (288 lines = 24 h at 5-minute sampling). This is the format
//!   shipped in CloudSim's `examples/workload/planetlab`.
//! * **Google cluster-usage subset**: a CSV with
//!   `timestamp_s,vm_id,cpu_rate` rows (the relevant columns of the
//!   2011 `task_usage` table after the usual preprocessing), resampled
//!   here onto the 5-minute grid.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use crate::source::{TraceHeader, TraceSource};
use crate::{TraceCsvError, WorkloadTrace, STEP_SECONDS};

/// Loads a directory of CloudSim PlanetLab-format VM files.
///
/// Every regular file in `dir` is one VM; files are taken in
/// lexicographic order so runs are reproducible. Each line must parse
/// as a number in `[0, 100]`. Files shorter than the longest one are
/// padded with zeros (the VM finished early), matching CloudSim's
/// behaviour of treating missing samples as idle.
///
/// # Errors
///
/// Returns [`TraceCsvError`] on I/O failure, an unparsable line, or an
/// out-of-range value.
///
/// # Examples
///
/// ```no_run
/// let trace = megh_trace::load_planetlab_dir("planetlab/20110303")?;
/// println!("{} VMs, {} steps", trace.n_vms(), trace.n_steps());
/// # Ok::<(), megh_trace::TraceCsvError>(())
/// ```
pub fn load_planetlab_dir(dir: impl AsRef<Path>) -> Result<WorkloadTrace, TraceCsvError> {
    let mut source = PlanetLabDirSource::open(dir)?;
    let n_steps = source.header().n_steps;
    let trace = (&mut source).take_steps(n_steps);
    match source.take_error() {
        Some(err) => Err(err),
        None => Ok(trace),
    }
}

/// A buffered streaming [`TraceSource`] over a CloudSim PlanetLab-format
/// directory (one file per VM, one value per line).
///
/// [`open`](Self::open) lists files lexicographically and pre-scans each
/// once to find the longest series (`n_steps`) without retaining any
/// samples; `fill_chunk` then advances one buffered reader per VM in
/// lockstep, zero-padding VMs whose file ends early. Peak memory is one
/// `BufReader` per VM regardless of trace length.
///
/// A malformed line stops the stream: `fill_chunk` returns the steps
/// completed before it and `0` afterwards, with the cause available via
/// [`error`](Self::error) / [`take_error`](Self::take_error).
pub struct PlanetLabDirSource {
    paths: Vec<PathBuf>,
    header: TraceHeader,
    readers: Option<Vec<BufReader<File>>>,
    line_nos: Vec<usize>,
    emitted: usize,
    buf: String,
    error: Option<TraceCsvError>,
}

impl PlanetLabDirSource {
    /// Opens a PlanetLab-format directory for streaming, pre-scanning
    /// line counts to learn the step horizon.
    ///
    /// # Errors
    ///
    /// Returns [`TraceCsvError`] on I/O failure.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TraceCsvError> {
        let mut paths: Vec<_> = fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        let mut n_steps = 0usize;
        for path in &paths {
            let mut count = 0usize;
            for line in BufReader::new(File::open(path)?).lines() {
                if !line?.trim().is_empty() {
                    count += 1;
                }
            }
            n_steps = n_steps.max(count);
        }
        let mut source = Self {
            header: TraceHeader {
                n_vms: paths.len(),
                n_steps,
                step_seconds: STEP_SECONDS,
            },
            line_nos: vec![0; paths.len()],
            paths,
            readers: None,
            emitted: 0,
            buf: String::new(),
            error: None,
        };
        source.reopen()?;
        Ok(source)
    }

    /// The error that stopped the stream, if any.
    pub fn error(&self) -> Option<&TraceCsvError> {
        self.error.as_ref()
    }

    /// Takes the error that stopped the stream, if any.
    pub fn take_error(&mut self) -> Option<TraceCsvError> {
        self.error.take()
    }

    fn reopen(&mut self) -> Result<(), TraceCsvError> {
        let mut readers = Vec::with_capacity(self.paths.len());
        for path in &self.paths {
            readers.push(BufReader::new(File::open(path)?));
        }
        self.readers = Some(readers);
        self.line_nos.iter_mut().for_each(|l| *l = 0);
        self.emitted = 0;
        self.error = None;
        Ok(())
    }
}

/// Reads the next non-blank value from one VM file; `Ok(None)` is end
/// of file (the VM finished early and pads with idle).
fn next_planetlab_value(
    reader: &mut BufReader<File>,
    line_no: &mut usize,
    path: &Path,
    buf: &mut String,
) -> Result<Option<f64>, TraceCsvError> {
    loop {
        buf.clear();
        if reader.read_line(buf)? == 0 {
            return Ok(None);
        }
        *line_no += 1;
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        let value: f64 = line.parse().map_err(|_| TraceCsvError::Parse {
            line: *line_no,
            cell: line.to_string(),
        })?;
        if !(0.0..=100.0).contains(&value) || !value.is_finite() {
            return Err(TraceCsvError::Format(format!(
                "utilization {value} outside [0, 100] in {}",
                path.display()
            )));
        }
        return Ok(Some(value));
    }
}

impl TraceSource for PlanetLabDirSource {
    fn header(&self) -> TraceHeader {
        self.header
    }

    fn fill_chunk(&mut self, out: &mut [f64]) -> usize {
        let n = self.header.n_vms;
        if n == 0 || self.error.is_some() {
            return 0;
        }
        let want = (out.len() / n).min(self.header.n_steps - self.emitted);
        let Self {
            paths,
            readers,
            line_nos,
            buf,
            error,
            ..
        } = self;
        let Some(readers) = readers.as_mut() else {
            return 0;
        };
        let mut got = 0usize;
        'steps: for s in 0..want {
            for vm in 0..n {
                match next_planetlab_value(&mut readers[vm], &mut line_nos[vm], &paths[vm], buf) {
                    Ok(Some(v)) => out[s * n + vm] = v,
                    Ok(None) => out[s * n + vm] = 0.0,
                    Err(e) => {
                        *error = Some(e);
                        break 'steps;
                    }
                }
            }
            got += 1;
        }
        if self.error.is_some() {
            self.readers = None;
        }
        self.emitted += got;
        got
    }

    fn reset(&mut self) {
        if let Err(e) = self.reopen() {
            self.readers = None;
            self.error = Some(e);
        }
    }
}

/// Loads a Google cluster-usage subset CSV: `timestamp_s,vm_id,cpu_rate`
/// per line (`cpu_rate` a fraction in `[0, 1]`), and resamples onto the
/// 5-minute grid by averaging samples per (VM, step) bucket.
///
/// VM ids may be arbitrary non-negative integers; they are compacted to
/// dense row indices in ascending order. Steps with no sample are idle
/// (0 %).
///
/// # Errors
///
/// Returns [`TraceCsvError`] on I/O failure, short rows, unparsable
/// cells, or out-of-range rates.
pub fn load_google_usage_csv(path: impl AsRef<Path>) -> Result<WorkloadTrace, TraceCsvError> {
    let content = fs::read_to_string(path)?;
    // (vm_id -> (step -> (sum, count)))
    let mut buckets: BTreeMap<u64, BTreeMap<usize, (f64, usize)>> = BTreeMap::new();
    let mut max_step = 0usize;
    for (idx, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() < 3 {
            return Err(TraceCsvError::Format(format!(
                "line {} has {} cells, expected timestamp,vm_id,cpu_rate",
                idx + 1,
                cells.len()
            )));
        }
        let parse = |cell: &str| -> Result<f64, TraceCsvError> {
            cell.parse().map_err(|_| TraceCsvError::Parse {
                line: idx + 1,
                cell: cell.to_string(),
            })
        };
        let timestamp = parse(cells[0])?;
        let vm_id = parse(cells[1])? as u64;
        let rate = parse(cells[2])?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(TraceCsvError::Format(format!(
                "cpu_rate {rate} outside [0, 1] on line {}",
                idx + 1
            )));
        }
        if timestamp < 0.0 {
            return Err(TraceCsvError::Format(format!(
                "negative timestamp on line {}",
                idx + 1
            )));
        }
        let step = (timestamp / STEP_SECONDS as f64) as usize;
        max_step = max_step.max(step);
        let entry = buckets
            .entry(vm_id)
            .or_default()
            .entry(step)
            .or_insert((0.0, 0));
        entry.0 += rate;
        entry.1 += 1;
    }
    if buckets.is_empty() {
        return WorkloadTrace::from_rows(STEP_SECONDS, Vec::new())
            .ok_or_else(|| TraceCsvError::Format("empty trace".into()));
    }
    let steps = max_step + 1;
    let rows: Vec<Vec<f64>> = buckets
        .values()
        .map(|per_step| {
            let mut row = vec![0.0; steps];
            for (&step, &(sum, count)) in per_step {
                row[step] = (sum / count as f64 * 100.0).clamp(0.0, 100.0);
            }
            row
        })
        .collect();
    WorkloadTrace::from_rows(STEP_SECONDS, rows)
        .ok_or_else(|| TraceCsvError::Format("inconsistent google usage rows".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("megh-files-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn planetlab_dir_roundtrip() {
        let dir = tmp_dir("pl");
        fs::write(dir.join("vm_a"), "10\n20\n30\n").unwrap();
        fs::write(dir.join("vm_b"), "5\n15\n").unwrap(); // short → padded
        let trace = load_planetlab_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();
        assert_eq!(trace.n_vms(), 2);
        assert_eq!(trace.n_steps(), 3);
        assert_eq!(trace.utilization(0, 1), 20.0);
        assert_eq!(trace.utilization(1, 2), 0.0, "short file padded with idle");
    }

    #[test]
    fn planetlab_rejects_out_of_range() {
        let dir = tmp_dir("pl-bad");
        fs::write(dir.join("vm_a"), "10\n120\n").unwrap();
        let err = load_planetlab_dir(&dir).unwrap_err();
        fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn planetlab_rejects_garbage_line() {
        let dir = tmp_dir("pl-garbage");
        fs::write(dir.join("vm_a"), "10\nxyz\n").unwrap();
        let err = load_planetlab_dir(&dir).unwrap_err();
        fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, TraceCsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn planetlab_dir_source_streams_identically_to_load() {
        let dir = tmp_dir("pl-stream");
        fs::write(dir.join("vm_a"), "10\n20\n30\n").unwrap();
        fs::write(dir.join("vm_b"), "5\n15\n").unwrap();
        let loaded = load_planetlab_dir(&dir).unwrap();
        let mut source = PlanetLabDirSource::open(&dir).unwrap();
        assert_eq!(source.header().n_vms, 2);
        assert_eq!(source.header().n_steps, 3);
        let mut col = vec![0.0; 2];
        let mut steps = 0usize;
        while source.fill_chunk(&mut col) == 1 {
            for (vm, &v) in col.iter().enumerate() {
                assert_eq!(v, loaded.utilization(vm, steps));
            }
            steps += 1;
        }
        assert_eq!(steps, 3);
        assert!(source.error().is_none());
        // Reset replays the directory from step 0.
        source.reset();
        let replay = source.take_steps(3);
        fs::remove_dir_all(&dir).ok();
        assert_eq!(replay, loaded);
    }

    #[test]
    fn google_usage_resamples_onto_grid() {
        let dir = tmp_dir("g");
        let path = dir.join("usage.csv");
        // VM 7: two samples in step 0 (averaged), one in step 2.
        // VM 3: one sample in step 1.
        fs::write(
            &path,
            "# comment\n0,7,0.2\n100,7,0.4\n650,7,0.5\n301,3,1.0\n",
        )
        .unwrap();
        let trace = load_google_usage_csv(&path).unwrap();
        fs::remove_dir_all(&dir).ok();
        assert_eq!(trace.n_vms(), 2);
        assert_eq!(trace.n_steps(), 3);
        // Rows are in ascending vm_id order: row 0 = vm 3, row 1 = vm 7.
        assert_eq!(trace.utilization(0, 1), 100.0);
        assert!((trace.utilization(1, 0) - 30.0).abs() < 1e-9);
        assert_eq!(trace.utilization(1, 1), 0.0);
        assert_eq!(trace.utilization(1, 2), 50.0);
    }

    #[test]
    fn google_usage_rejects_bad_rate() {
        let dir = tmp_dir("g-bad");
        let path = dir.join("usage.csv");
        fs::write(&path, "0,1,1.5\n").unwrap();
        let err = load_google_usage_csv(&path).unwrap_err();
        fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn google_usage_rejects_short_row() {
        let dir = tmp_dir("g-short");
        let path = dir.join("usage.csv");
        fs::write(&path, "0,1\n").unwrap();
        let err = load_google_usage_csv(&path).unwrap_err();
        fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, TraceCsvError::Format(_)));
    }

    #[test]
    fn empty_google_csv_yields_empty_trace() {
        let dir = tmp_dir("g-empty");
        let path = dir.join("usage.csv");
        fs::write(&path, "# nothing\n").unwrap();
        let trace = load_google_usage_csv(&path).unwrap();
        fs::remove_dir_all(&dir).ok();
        assert_eq!(trace.n_vms(), 0);
    }
}
