//! A strongly diurnal "enterprise" workload generator (extension).
//!
//! The PlanetLab and Google generators reproduce the paper's traces;
//! this third family models the textbook enterprise pattern the paper's
//! §7 periodicity discussion presupposes: interactive services whose
//! load follows the working day — a pronounced daytime plateau, a deep
//! nightly trough, a weekend dip — plus per-VM phase jitter and AR(1)
//! noise. It is the substrate on which a periodicity-aware scheduler
//! ([`megh-core`'s `PeriodicMeghAgent`]) can actually demonstrate an
//! advantage: the PlanetLab family's bursts are aperiodic by design.

use serde::{Deserialize, Serialize};

use crate::source::{DiurnalSource, TraceSource};
use crate::{WorkloadTrace, STEPS_PER_DAY};

/// Configuration for the diurnal enterprise generator.
///
/// # Examples
///
/// ```
/// use megh_trace::DiurnalConfig;
///
/// let trace = DiurnalConfig::new(30, 7).generate(2);
/// assert_eq!(trace.n_vms(), 30);
/// assert_eq!(trace.n_steps(), 2 * 288);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Number of VM workload rows to generate.
    pub n_vms: usize,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Trough (overnight) utilization in percent.
    pub night_level: f64,
    /// Plateau (working-hours) utilization in percent, before jitter.
    pub day_level: f64,
    /// Weekend scaling of the daytime plateau (0–1).
    pub weekend_factor: f64,
    /// Standard deviation of the AR(1) noise, in percent points.
    pub noise_sigma: f64,
}

impl DiurnalConfig {
    /// Creates a configuration with representative enterprise levels.
    pub fn new(n_vms: usize, seed: u64) -> Self {
        Self {
            n_vms,
            seed,
            night_level: 6.0,
            day_level: 45.0,
            weekend_factor: 0.35,
            noise_sigma: 2.0,
        }
    }

    /// The deterministic diurnal profile (percent) at a step, before
    /// per-VM scaling and noise. Days are 288 steps; days 5 and 6 of
    /// each week are the weekend.
    pub fn profile(&self, step: usize) -> f64 {
        let day = step / STEPS_PER_DAY;
        let phase = (step % STEPS_PER_DAY) as f64 / STEPS_PER_DAY as f64;
        // Smooth double-sigmoid plateau: ramps up ~08:00, down ~20:00.
        let up = sigmoid((phase - 8.0 / 24.0) * 40.0);
        let down = sigmoid((phase - 20.0 / 24.0) * 40.0);
        let plateau = up - down;
        let weekend = if day % 7 >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        self.night_level + (self.day_level * weekend - self.night_level) * plateau.max(0.0)
    }

    /// A lazy streaming source of `n_steps` columns; the preferred entry
    /// point. Memory is `O(n_vms)` regardless of `n_steps`.
    pub fn source(&self, n_steps: usize) -> DiurnalSource {
        DiurnalSource::new(self.clone(), n_steps)
    }

    /// Generates a trace spanning `days` simulated days.
    ///
    /// Thin materializing wrapper over [`source`](Self::source) +
    /// [`TraceSource::take_steps`]; prefer the streaming API for long
    /// traces.
    pub fn generate(&self, days: usize) -> WorkloadTrace {
        self.generate_steps(days * STEPS_PER_DAY)
    }

    /// Generates a trace with an explicit number of 5-minute steps.
    ///
    /// Thin materializing wrapper over [`source`](Self::source) +
    /// [`TraceSource::take_steps`]; prefer the streaming API for long
    /// traces.
    pub fn generate_steps(&self, n_steps: usize) -> WorkloadTrace {
        self.source(n_steps).take_steps(n_steps)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_shape() {
        let a = DiurnalConfig::new(8, 3).generate(1);
        let b = DiurnalConfig::new(8, 3).generate(1);
        assert_eq!(a, b);
        assert_eq!(a.n_vms(), 8);
        assert_eq!(a.n_steps(), STEPS_PER_DAY);
    }

    #[test]
    fn profile_has_day_night_structure() {
        let cfg = DiurnalConfig::new(1, 1);
        let midnight = cfg.profile(0);
        let noon = cfg.profile(STEPS_PER_DAY / 2);
        assert!(noon > 4.0 * midnight, "noon {noon} vs midnight {midnight}");
        assert!((midnight - cfg.night_level).abs() < 1.0);
        assert!((noon - cfg.day_level).abs() < 2.0);
    }

    #[test]
    fn weekends_are_quieter() {
        let cfg = DiurnalConfig::new(1, 1);
        let weekday_noon = cfg.profile(STEPS_PER_DAY / 2);
        let saturday_noon = cfg.profile(5 * STEPS_PER_DAY + STEPS_PER_DAY / 2);
        assert!(saturday_noon < 0.5 * weekday_noon);
    }

    #[test]
    fn generated_load_is_periodic() {
        // Autocorrelation check: across-VM mean at the same time of day
        // on two weekdays must be far closer than day vs night.
        let trace = DiurnalConfig::new(40, 7).generate(3);
        let mean_at = |step: usize| {
            (0..trace.n_vms())
                .map(|v| trace.utilization(v, step))
                .sum::<f64>()
                / trace.n_vms() as f64
        };
        let noon_d1 = mean_at(STEPS_PER_DAY / 2);
        let noon_d2 = mean_at(STEPS_PER_DAY + STEPS_PER_DAY / 2);
        let night_d1 = mean_at(10);
        assert!((noon_d1 - noon_d2).abs() < 8.0, "{noon_d1} vs {noon_d2}");
        assert!(noon_d1 - night_d1 > 15.0, "day {noon_d1} night {night_d1}");
    }

    #[test]
    fn utilization_always_in_range() {
        let trace = DiurnalConfig::new(20, 11).generate_steps(600);
        for vm in 0..trace.n_vms() {
            for &u in trace.vm_row(vm) {
                assert!((0.0..=100.0).contains(&u));
            }
        }
    }
}
