//! Behavioural tests of the periodicity-aware Megh variant: the phase
//! blocks must be genuinely independent, and phase conditioning must
//! pay off exactly when the workload is periodic.

use megh_core::{MeghConfig, PeriodicMeghAgent, SparseLspi};
use megh_sim::{DataCenterConfig, InitialPlacement, Simulation, VmSpec};
use megh_trace::{DiurnalConfig, WorkloadTrace};

/// Phase blocks never interact in the learned operator: an agent that
/// only ever acts in phase 0 leaves every other phase's Q at zero.
#[test]
fn phases_are_independent_blocks() {
    let (hosts, vms) = (3, 4);
    let d = hosts * vms;
    // Period longer than the trace: every step is phase 0.
    let mut agent = PeriodicMeghAgent::with_period(MeghConfig::paper_defaults(vms, hosts), 4, 4000);
    let trace = WorkloadTrace::from_rows(300, vec![vec![20.0; 50]; vms]).unwrap();
    let config = DataCenterConfig::paper_planetlab(hosts, vms);
    let sim = Simulation::new(config, trace).unwrap();
    sim.run(&mut agent);
    assert!(agent.qtable_nnz() > 0, "phase 0 must have learned");
    // Inspect phase blocks indirectly through phase_of and the nnz of a
    // fresh single-phase agent: the 4-phase agent's learning is capped
    // by what a 1-phase agent could touch (only block 0 is reachable).
    let mut single =
        PeriodicMeghAgent::with_period(MeghConfig::paper_defaults(vms, hosts), 1, 4000);
    let trace2 = WorkloadTrace::from_rows(300, vec![vec![20.0; 50]; vms]).unwrap();
    let config2 = DataCenterConfig::paper_planetlab(hosts, vms);
    let sim2 = Simulation::new(config2, trace2).unwrap();
    sim2.run(&mut single);
    // Same steps, same per-step update count: comparable fill-in scale.
    let ratio = agent.qtable_nnz() as f64 / single.qtable_nnz().max(1) as f64;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "confined 4-phase agent should fill like a 1-phase agent, ratio {ratio}"
    );
    let _ = d;
}

/// On a strongly diurnal workload the phase-conditioned agent must not
/// be worse than plain Megh by more than noise, and the periodic trace
/// must actually alternate load regimes across phases.
#[test]
fn diurnal_workload_distinguishes_phases() {
    let (hosts, vms) = (10, 14);
    let trace = DiurnalConfig::new(vms, 5).generate(2);
    // Verify the premise: mean demand in opposite phases differs a lot.
    let mean_range = |lo: usize, hi: usize| {
        let mut sum = 0.0;
        let mut count = 0;
        for vm in 0..trace.n_vms() {
            for step in lo..hi {
                sum += trace.utilization(vm, step);
                count += 1;
            }
        }
        sum / count as f64
    };
    let night = mean_range(0, 48);
    let day = mean_range(120, 192);
    assert!(
        day > 2.0 * night,
        "diurnal premise failed: day {day} night {night}"
    );

    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.vms = vec![VmSpec::new(1500.0, 1024.0, 100.0); vms];
    config.initial_placement = InitialPlacement::DemandPacked;
    let sim = Simulation::new(config, trace).unwrap();
    let plain = sim
        .run(megh_core::MeghAgent::new(MeghConfig::paper_defaults(
            vms, hosts,
        )))
        .report();
    let periodic = sim
        .run(PeriodicMeghAgent::new(
            MeghConfig::paper_defaults(vms, hosts),
            4,
        ))
        .report();
    assert!(
        periodic.total_cost_usd <= plain.total_cost_usd * 1.5,
        "phase conditioning catastrophically worse: {} vs {}",
        periodic.total_cost_usd,
        plain.total_cost_usd
    );
}

/// The flat index arithmetic at the phase boundary: the last action of
/// phase p and the first action of phase p+1 are distinct LSPI indices.
#[test]
fn flat_indices_do_not_collide_across_phases() {
    let agent = PeriodicMeghAgent::with_period(MeghConfig::paper_defaults(3, 2), 3, 30);
    // d = 6; flat index = phase*6 + action. Verify via a probe LSPI of
    // the same dimensioning: updating (p=0, a=5) and (p=1, a=0) must
    // touch different entries.
    let mut lspi = SparseLspi::new(6 * 3, 18.0, 0.5);
    lspi.update(5, 5, 1.0); // phase 0, action 5
    lspi.update(6, 6, 2.0); // phase 1, action 0
    assert!(lspi.q(5) > 0.0);
    assert!(lspi.q(6) > 0.0);
    assert_ne!(lspi.q(5), lspi.q(6));
    assert_eq!(lspi.q(4), 0.0);
    let _ = agent;
}
