//! Numerical verification of the paper's two theorems on small spaces
//! where the dense linear algebra is exact.
//!
//! * **Theorem 1** (unique projection): for the sparse indicator basis
//!   `φ_a`, there is exactly one `θ` with `V(s) = θᵀ φ_{π(s)}` — i.e.
//!   the induced design matrix is invertible. We verify invertibility of
//!   the learned operator `T` along arbitrary trajectories.
//! * **Theorem 2** (convergence): the Bellman-style update behind
//!   Algorithm 1 is a γ-contraction, so value iteration over the
//!   reduced space converges to a unique fixed point from any start.

use megh_core::SparseLspi;
use megh_linalg::DenseMatrix;

/// Theorem 1, operational form: the operator `T` that Megh maintains
/// (identity-initialised, updated along any trajectory of basis pairs)
/// stays invertible, so `θ = T⁻¹ z` exists and is unique.
#[test]
fn theorem1_operator_stays_invertible_along_trajectories() {
    let d = 8;
    let gamma = 0.5;
    // Mirror the updates densely and check invertibility at every step.
    let mut t = DenseMatrix::zeros(d, d);
    for i in 0..d {
        t.set(i, i, d as f64);
    }
    let trajectories = [
        vec![(0usize, 1usize), (1, 2), (2, 3), (3, 4), (4, 0)],
        vec![(5, 5), (5, 5), (5, 5)],         // repeated self-loop
        vec![(0, 7), (7, 0), (0, 7), (7, 0)], // oscillation
        vec![(6, 6), (6, 1), (1, 6), (6, 2)],
    ];
    for trajectory in trajectories {
        for (a, a_next) in trajectory {
            // T += φ_a (φ_a − γ φ_{a'})ᵀ  (Eq. 10).
            t.set(a, a, t.get(a, a) + 1.0);
            t.set(a, a_next, t.get(a, a_next) - gamma);
            assert!(
                t.inverse().is_some(),
                "operator lost invertibility after ({a}, {a_next})"
            );
        }
    }
}

/// Theorem 1, sparse form: the incremental inverse that `SparseLspi`
/// maintains equals the dense inverse applied to the same `z` — the
/// unique projection θ.
#[test]
fn theorem1_sparse_theta_is_the_unique_projection() {
    let d = 6;
    let gamma = 0.5;
    let mut lspi = SparseLspi::new(d, d as f64, gamma);
    let mut t = DenseMatrix::zeros(d, d);
    for i in 0..d {
        t.set(i, i, d as f64);
    }
    let mut z = vec![0.0f64; d];
    let steps = [(0usize, 1usize, 2.0), (1, 4, 0.5), (4, 0, 3.0), (0, 1, 1.0)];
    for &(a, a_next, cost) in &steps {
        assert!(lspi.update(a, a_next, cost));
        t.set(a, a, t.get(a, a) + 1.0);
        t.set(a, a_next, t.get(a, a_next) - gamma);
        z[a] += cost;
        let theta_dense = t.inverse().expect("Theorem 1: invertible").mul_vec(&z);
        for (idx, &expected) in theta_dense.iter().enumerate() {
            assert!(
                (lspi.q(idx) - expected).abs() < 1e-8,
                "θ[{idx}] = {} differs from the unique projection {expected}",
                lspi.q(idx),
            );
        }
    }
}

/// Theorem 2: the update map `M v(s) = min_{s'} [C(s,s') + γ v(s')]` is
/// a γ-contraction in the sup norm, hence value iteration converges to
/// the same fixed point from arbitrary starting value functions.
#[test]
fn theorem2_bellman_map_is_a_contraction() {
    let n_states = 5;
    let gamma = 0.5;
    // A fixed, arbitrary cost matrix C(s, s') ≥ 0.
    let cost = |s: usize, s2: usize| ((s * 7 + s2 * 3) % 11) as f64 / 2.0 + 0.1;
    let apply = |v: &[f64]| -> Vec<f64> {
        (0..n_states)
            .map(|s| {
                (0..n_states)
                    .map(|s2| cost(s, s2) + gamma * v[s2])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    };
    let sup = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    };

    // Contraction property on random pairs.
    let v1: Vec<f64> = (0..n_states).map(|i| (i * 13 % 7) as f64).collect();
    let v2: Vec<f64> = (0..n_states).map(|i| (i * 5 % 9) as f64 - 3.0).collect();
    let d_before = sup(&v1, &v2);
    let d_after = sup(&apply(&v1), &apply(&v2));
    assert!(
        d_after <= gamma * d_before + 1e-12,
        "contraction violated: {d_after} > γ·{d_before}"
    );

    // Unique fixed point from two very different starts.
    let mut a = vec![100.0; n_states];
    let mut b = vec![-100.0; n_states];
    for _ in 0..200 {
        a = apply(&a);
        b = apply(&b);
    }
    assert!(
        sup(&a, &b) < 1e-9,
        "iterates did not meet: {:?} vs {:?}",
        a,
        b
    );
    // And it is indeed fixed.
    assert!(sup(&apply(&a), &a) < 1e-9);
}

/// Theorem 2, corollary exercised by the implementation: Megh's
/// Q-values stay bounded by the geometric series bound
/// `max_cost / (1 − γ)` under repeated updates with bounded costs.
#[test]
fn q_values_respect_the_discounted_bound() {
    let d = 4;
    let gamma = 0.5;
    let max_cost = 2.0;
    let mut lspi = SparseLspi::new(d, d as f64, gamma);
    // Hammer a single action with the maximum cost: its Q must approach
    // (not exceed) max_cost / (1 − γ) = 4.
    for _ in 0..500 {
        lspi.update(1, 1, max_cost);
    }
    let bound = max_cost / (1.0 - gamma);
    assert!(
        lspi.q(1) <= bound + 1e-6,
        "Q = {} exceeds the discounted bound {bound}",
        lspi.q(1)
    );
    assert!(
        lspi.q(1) > 0.9 * bound,
        "Q = {} far below the bound",
        lspi.q(1)
    );
}
