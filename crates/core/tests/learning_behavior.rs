//! Behavioural tests of Megh's learning in controlled environments:
//! does reinforcement actually steer the policy away from costly
//! actions, and do the knobs move behaviour the way §5 says they
//! should?

use megh_core::{BoltzmannPolicy, MeghAgent, MeghConfig, SparseLspi};
use megh_sim::{
    DataCenterConfig, DataCenterView, InitialPlacement, MigrationRequest, Scheduler, Simulation,
    VmSpec,
};
use megh_trace::WorkloadTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A bandit-style check on the LSPI + Boltzmann stack in isolation:
/// repeatedly punish one action and reward (cheap cost) the others,
/// then verify the sampling distribution has shifted away from the
/// punished action at moderate temperature.
#[test]
fn reinforcement_shifts_sampling_away_from_costly_actions() {
    let d = 5;
    let mut lspi = SparseLspi::new(d, d as f64, 0.5);
    // Action 0 costs 10, actions 1..5 cost 0.1, visited round-robin.
    for round in 0..40 {
        let a = round % d;
        let cost = if a == 0 { 10.0 } else { 0.1 };
        lspi.update(a, (a + 1) % d, cost);
    }
    let policy = BoltzmannPolicy::new(2.0, 0.0);
    let mut rng = StdRng::seed_from_u64(11);
    let mut counts = [0usize; 5];
    let n = 5000;
    for _ in 0..n {
        counts[policy.sample(&lspi, &mut rng).unwrap()] += 1;
    }
    let cheap_avg = counts[1..].iter().sum::<usize>() as f64 / 4.0;
    assert!(
        (counts[0] as f64) < cheap_avg / 2.0,
        "punished action drawn {} times vs cheap average {cheap_avg}",
        counts[0]
    );
}

/// In a two-host world where host 1 is absurdly overloaded whenever a
/// VM lands there, Megh's realised per-step costs must teach it to
/// keep VMs off that host more often than a uniform policy would.
#[test]
fn megh_avoids_a_poisoned_host_over_time() {
    // Host 0 huge (never overloads); host 1 tiny (any VM on it causes
    // a deficit and SLA pain).
    let (hosts, vms) = (2, 4);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.pms[0].mips = 50_000.0;
    config.pms[1].mips = 200.0; // poisoned: one VM at 30 % ≈ 1.5× capacity
    config.vms = vec![VmSpec::new(1000.0, 512.0, 100.0); vms];
    config.initial_placement = InitialPlacement::Explicit(vec![0; vms]);
    let steps = 600;
    let trace = WorkloadTrace::from_rows(300, vec![vec![30.0; steps]; vms]).unwrap();
    let sim = Simulation::new(config, trace).unwrap();

    /// Counts how many step-intervals any VM spends on host 1.
    struct Monitor<S> {
        inner: S,
        vm_steps_on_poison: usize,
    }
    impl<S: Scheduler> Scheduler for Monitor<S> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
            self.vm_steps_on_poison += view.vms_on(megh_sim::PmId(1)).len();
            self.inner.decide(view)
        }
        fn observe(&mut self, feedback: &megh_sim::StepFeedback) {
            self.inner.observe(feedback)
        }
    }

    let mut cfg = MeghConfig::paper_defaults(vms, hosts);
    cfg.epsilon = 0.005; // keep some exploration while still annealing
    let mut learner = Monitor {
        inner: MeghAgent::new(cfg),
        vm_steps_on_poison: 0,
    };
    let learned = sim.run(&mut learner);

    // Control: identical sampling machinery but costs never learned
    // (observe() dropped) → pure uniform exploration forever.
    struct Amnesiac(MeghAgent);
    impl Scheduler for Amnesiac {
        fn name(&self) -> &str {
            "Amnesiac"
        }
        fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
            self.0.decide(view)
        }
        fn observe(&mut self, _: &megh_sim::StepFeedback) {}
    }
    let mut cfg2 = MeghConfig::paper_defaults(vms, hosts);
    cfg2.epsilon = 0.005;
    let mut control = Monitor {
        inner: Amnesiac(MeghAgent::new(cfg2)),
        vm_steps_on_poison: 0,
    };
    let unlearned = sim.run(&mut control);

    assert!(
        learner.vm_steps_on_poison < control.vm_steps_on_poison,
        "learning must reduce poisoned-host exposure: {} vs {}",
        learner.vm_steps_on_poison,
        control.vm_steps_on_poison
    );
    assert!(
        learned.report().total_cost_usd <= unlearned.report().total_cost_usd,
        "learned {} vs unlearned {}",
        learned.report().total_cost_usd,
        unlearned.report().total_cost_usd
    );
}

/// The churn ratchet — a structural property of Algorithm 1 that our
/// reproduction documents (EXPERIMENTS.md): because per-stage costs are
/// strictly positive, taking an action *raises* its Q, so even a fully
/// annealed (greedy) agent cannot settle on one action — the minimum
/// keeps moving and Megh issues ≈ one decision per step forever. This
/// is exactly why the paper's Megh reports ~2 309 migrations over
/// ~2 016 steps (Table 2): migrations ≈ steps, at any temperature.
#[test]
fn positive_costs_sustain_one_decision_per_step() {
    let (hosts, vms) = (5, 8);
    let config = DataCenterConfig::paper_planetlab(hosts, vms);
    let steps = 300;
    let trace = WorkloadTrace::from_rows(300, vec![vec![25.0; steps]; vms]).unwrap();
    let sim = Simulation::new(config, trace).unwrap();

    let late_migrations = |epsilon: f64| {
        let mut cfg = MeghConfig::paper_defaults(vms, hosts);
        cfg.epsilon = epsilon;
        cfg.temp0 = 3.0;
        let outcome = sim.run(MeghAgent::new(cfg));
        outcome.records()[2 * steps / 3..]
            .iter()
            .map(|r| r.migrations)
            .sum::<usize>()
    };
    let window = steps - 2 * steps / 3;
    for epsilon in [0.0, 0.01, 1.0] {
        let m = late_migrations(epsilon);
        // Most late steps still carry a migration (an occasional pick
        // is a self-move); none of the schedules collapses to zero.
        assert!(
            m > window / 2,
            "ε = {epsilon}: only {m} migrations in the last {window} steps"
        );
        assert!(m <= window, "ε = {epsilon}: more migrations than steps");
    }
}

/// The LSTD closed form for a single self-looping action: after `t`
/// updates of action 0 with `a_next = 0` and unit cost,
/// `T₀₀ = δ + t(1−γ)` and `z₀ = t`, so `Q = t / (δ + t(1−γ))`,
/// approaching the discounted bound `1/(1−γ)` as `t → ∞`.
#[test]
fn discount_factor_follows_the_lstd_closed_form() {
    let q_after = |gamma: f64, t: usize| {
        let delta = 3.0;
        let mut lspi = SparseLspi::new(3, delta, gamma);
        for _ in 0..t {
            lspi.update(0, 0, 1.0);
        }
        let closed_form = t as f64 / (delta + t as f64 * (1.0 - gamma));
        assert!(
            (lspi.q(0) - closed_form).abs() < 1e-9,
            "γ = {gamma}, t = {t}: q = {} vs closed form {closed_form}",
            lspi.q(0)
        );
        lspi.q(0)
    };
    // Myopic converges to 1, far-sighted to 10; the far-sighted value
    // must dominate at every horizon.
    for &t in &[10usize, 200, 5000] {
        let myopic = q_after(0.0, t);
        let farsighted = q_after(0.9, t);
        assert!(farsighted > myopic);
    }
    assert!((q_after(0.0, 5000) - 1.0).abs() < 0.01);
    assert!((q_after(0.9, 5000) - 10.0).abs() < 0.1);
}
