//! Proof that the decision hot path is allocation-free in the steady
//! state, using a counting global allocator.
//!
//! This lives in its own integration-test binary because the
//! `#[global_allocator]` attribute is process-wide; the test harness
//! runs the assertions below in a single thread (`--test-threads` does
//! not matter: each `#[test]` snapshots the counter around its own
//! critical section, and nothing else allocates concurrently in this
//! binary).

use megh_core::diagnostics::CountingAllocator;
use megh_core::{BoltzmannPolicy, SparseLspi};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::system();

/// A learned state representative of a warmed-up run: 50 VMs × 66
/// hosts (the paper's small PlanetLab shape), with a spread of
/// explored actions at mixed costs.
fn warmed_lspi() -> SparseLspi {
    let d = 50 * 66;
    let mut lspi = SparseLspi::new(d, d as f64, 0.5);
    for t in 0..200 {
        let a = (t * 131) % d;
        let a2 = (t * 137 + 71) % d;
        let cost = ((t % 7) as f64) - 2.0;
        lspi.update(a, a2, cost);
    }
    lspi
}

#[test]
fn steady_state_sample_is_allocation_free() {
    let lspi = warmed_lspi();
    let policy = BoltzmannPolicy::new(1.5, 0.0);
    let mut rng = StdRng::seed_from_u64(7);

    // Warm-up: first calls may lazily touch anything that caches.
    for _ in 0..10 {
        let _ = policy.sample(&lspi, &mut rng);
    }

    let before = ALLOC.allocations();
    let mut acc = 0usize;
    for _ in 0..1_000 {
        acc += policy.sample(&lspi, &mut rng).expect("non-empty space");
    }
    let after = ALLOC.allocations();
    assert!(acc > 0, "keep the sampled actions observable");
    assert_eq!(
        after - before,
        0,
        "BoltzmannPolicy::sample allocated {} times over 1000 calls",
        after - before
    );
}

#[test]
fn steady_state_greedy_is_allocation_free() {
    let lspi = warmed_lspi();
    let policy = BoltzmannPolicy::new(1.5, 0.0);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..10 {
        let _ = policy.greedy(&lspi, &mut rng);
    }
    let before = ALLOC.allocations();
    let mut acc = 0usize;
    for _ in 0..1_000 {
        acc += policy.greedy(&lspi, &mut rng);
    }
    assert!(acc < usize::MAX);
    assert_eq!(ALLOC.allocations() - before, 0, "greedy hit the heap");
}

#[test]
fn steady_state_update_on_seen_actions_is_allocation_free() {
    // Learning on previously seen action pairs reuses every buffer:
    // the scratch vectors, θ's entry list, and Δ's adjacency rows all
    // have their capacity from the warm-up.
    let mut lspi = warmed_lspi();
    for _ in 0..10 {
        lspi.update(131, 137 + 71, 1.0);
    }
    let before = ALLOC.allocations();
    for t in 0..100 {
        lspi.update(131, 137 + 71, (t % 3) as f64);
    }
    assert_eq!(
        ALLOC.allocations() - before,
        0,
        "update on a previously seen action pair hit the heap"
    );
}
