//! Statistical check that the streaming (allocation-free) Boltzmann
//! sampler draws from the same distribution as the materialised-weight
//! formulation it replaced.
//!
//! The expected probabilities are computed here the "old" way: build the
//! full weight table `w_a = exp[(−Q(a) + minQ)/Temp]` over all `d`
//! actions and normalise. The streaming sampler must match it under a
//! chi-squared goodness-of-fit test with a deterministic seed.

use megh_core::{BoltzmannPolicy, SparseLspi};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Materialises the full Boltzmann distribution over every action —
/// the reference the streaming sampler is tested against.
fn reference_distribution(lspi: &SparseLspi, temp: f64) -> Vec<f64> {
    let d = lspi.dim();
    let min_q = lspi.min_q();
    let weights: Vec<f64> = (0..d)
        .map(|a| ((-lspi.q(a) + min_q) / temp).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

#[test]
fn streaming_sampler_matches_materialised_distribution() {
    // Mixed landscape over 20 actions: a few explored at distinct
    // costs (one negative, so minQ < 0), one explored-at-zero, and a
    // large zero class.
    let mut lspi = SparseLspi::new(20, 20.0, 0.5);
    lspi.update(0, 1, 8.0);
    lspi.update(1, 2, 3.0);
    lspi.update(2, 3, -2.0);
    lspi.update(3, 4, 1.0);
    lspi.update(4, 5, 5.0);
    lspi.update(5, 5, 0.0); // explored but Q stays exactly 0
    assert!(lspi.min_q() < 0.0);

    let temp = 2.0;
    let policy = BoltzmannPolicy::new(temp, 0.0);
    let expected = reference_distribution(&lspi, temp);

    let n = 100_000usize;
    let mut rng = StdRng::seed_from_u64(20260805);
    let mut observed = vec![0u64; lspi.dim()];
    for _ in 0..n {
        let a = policy
            .sample(&lspi, &mut rng)
            .expect("non-empty action space");
        observed[a] += 1;
    }

    // Chi-squared goodness of fit, df = 19. The 0.001 critical value is
    // 43.8; the seed is fixed, so this either fits or it doesn't.
    let mut chi2 = 0.0;
    for (a, &count) in observed.iter().enumerate() {
        let exp = expected[a] * n as f64;
        assert!(
            exp > 5.0,
            "expected count for action {a} too small for the chi2 approximation: {exp}"
        );
        let diff = count as f64 - exp;
        chi2 += diff * diff / exp;
    }
    assert!(
        chi2 < 43.8,
        "chi2 = {chi2:.2} over 19 dof — the streaming sampler's \
         distribution diverges from the materialised reference"
    );

    // The zero class must be uniform internally: the explored-at-zero
    // action 5 gets the same share as a never-explored action.
    let share5 = observed[5] as f64 / n as f64;
    let share19 = observed[19] as f64 / n as f64;
    assert!(
        (share5 - share19).abs() / share19 < 0.1,
        "zero-class members drawn unevenly: {share5:.4} vs {share19:.4}"
    );
}

#[test]
fn masked_streaming_sampler_restricts_support() {
    let mut lspi = SparseLspi::new(12, 12.0, 0.5);
    lspi.update(0, 0, 4.0);
    lspi.update(6, 6, -1.0);
    let policy = BoltzmannPolicy::new(1.0, 0.0);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..2_000 {
        let a = policy
            .sample_masked(&lspi, &mut rng, |a| a % 2 == 0)
            .expect("even actions are allowed");
        assert_eq!(a % 2, 0, "masked sample returned a disallowed action");
    }
}
