//! Property-based tests of Megh's learning machinery: the incremental
//! sparse-LSPI state must track its dense oracle, and the Boltzmann
//! policy must be a valid distribution over the action space.

use megh_core::{
    ActionSpace, BoltzmannPolicy, HierConfig, HierMegh, MeghAgent, MeghConfig, SparseLspi,
};
use megh_sim::{DataCenterConfig, InitialPlacement, PmId, Simulation, VmId};
use megh_trace::WorkloadTrace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental θ update must agree with recomputing θ = B·z
    /// from scratch after any sequence of updates.
    #[test]
    fn incremental_theta_matches_oracle(
        steps in prop::collection::vec((0..12usize, 0..12usize, 0.0..5.0f64), 1..25),
        gamma in 0.0..0.95f64,
    ) {
        let mut lspi = SparseLspi::new(12, 12.0, gamma);
        for (a, a_next, cost) in steps {
            lspi.update(a, a_next, cost);
            let oracle = lspi.recompute_theta();
            for idx in 0..12 {
                prop_assert!(
                    (lspi.q(idx) - oracle.get(idx)).abs() < 1e-7,
                    "theta[{idx}] drifted: {} vs {}",
                    lspi.q(idx),
                    oracle.get(idx)
                );
            }
        }
    }

    /// Q-table fill-in is bounded: each update touches O(1) basis
    /// indices, so explicit non-zeros grow at most quadratically in the
    /// number of *distinct* actions, never like d².
    #[test]
    fn qtable_fill_in_is_bounded_by_distinct_actions(
        steps in prop::collection::vec((0..30usize, 0..30usize, 0.1..2.0f64), 1..40),
    ) {
        let mut lspi = SparseLspi::new(900, 900.0, 0.5);
        let mut distinct = std::collections::BTreeSet::new();
        for (a, a_next, cost) in steps {
            lspi.update(a, a_next, cost);
            distinct.insert(a);
            distinct.insert(a_next);
            let bound = (2 * distinct.len()).pow(2);
            prop_assert!(
                lspi.explicit_nnz() <= bound,
                "nnz {} exceeds distinct-action bound {bound}",
                lspi.explicit_nnz()
            );
        }
    }

    /// Boltzmann sampling always returns a valid in-range action, for
    /// any temperature and any learned state.
    #[test]
    fn sampling_is_always_in_range(
        steps in prop::collection::vec((0..10usize, 0..10usize, -2.0..4.0f64), 0..15),
        temp0 in 0.01..20.0f64,
        seed in 0..1000u64,
    ) {
        let mut lspi = SparseLspi::new(10, 10.0, 0.5);
        for (a, a_next, cost) in steps {
            lspi.update(a, a_next, cost);
        }
        let policy = BoltzmannPolicy::new(temp0, 0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let a = policy.sample(&lspi, &mut rng).expect("non-empty space");
            prop_assert!(a < 10);
            let g = policy.greedy(&lspi, &mut rng);
            prop_assert!(g < 10);
        }
    }

    /// The greedy action's Q value is never above any other action's.
    #[test]
    fn greedy_attains_the_minimum(
        steps in prop::collection::vec((0..8usize, 0..8usize, -3.0..3.0f64), 1..20),
    ) {
        let mut lspi = SparseLspi::new(8, 8.0, 0.5);
        for (a, a_next, cost) in steps {
            lspi.update(a, a_next, cost);
        }
        let policy = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let g = policy.greedy(&lspi, &mut rng);
        let min_q = (0..8).map(|a| lspi.q(a)).fold(f64::INFINITY, f64::min);
        prop_assert!(lspi.q(g) <= min_q + 1e-9);
    }

    /// Action index encoding is a bijection for arbitrary dimensions.
    #[test]
    fn action_space_roundtrip(n_vms in 1..20usize, n_hosts in 1..20usize) {
        let space = ActionSpace::new(n_vms, n_hosts);
        for a in 0..space.dim() {
            let action = space.decode(a);
            prop_assert_eq!(space.index(action.vm, action.target), a);
        }
    }

    /// Two-level containment: for any fleet shape, shard count, and
    /// trace, every migration the hierarchical scheduler emits stays
    /// inside the moved VM's home shard — which makes an out-of-range
    /// host index structurally impossible, not just unobserved.
    #[test]
    fn hier_placement_never_leaves_the_home_shard(
        n_hosts in 2..9usize,
        extra_vms in 0..10usize,
        shard_req in 1..6usize,
        trace_seed in 0..100usize,
    ) {
        let n_vms = n_hosts + extra_vms;
        let n_shards = shard_req.min(n_hosts);
        let rows: Vec<Vec<f64>> = (0..n_vms)
            .map(|v| (0..60).map(|t| ((v * 31 + t * 11 + trace_seed) % 95) as f64).collect())
            .collect();
        let trace = WorkloadTrace::from_rows(300, rows).unwrap();
        let mut config = DataCenterConfig::paper_planetlab(n_hosts, n_vms);
        config.initial_placement = InitialPlacement::RoundRobin;
        let sim = Simulation::new(config, trace).unwrap();

        struct Check(HierMegh);
        impl megh_sim::Scheduler for Check {
            fn name(&self) -> &str {
                "check"
            }
            fn decide(&mut self, view: &megh_sim::DataCenterView) -> Vec<megh_sim::MigrationRequest> {
                let requests = self.0.decide(view);
                for r in &requests {
                    assert!(r.vm < VmId(view.n_vms()), "vm index out of range");
                    assert!(r.target < PmId(view.n_hosts()), "host index out of range");
                    let home = self.0.shard_of_vm(r.vm.0);
                    assert!(
                        self.0.shard_hosts(home).contains(&r.target.0),
                        "vm {} (shard {home}) targeted out-of-shard host {}",
                        r.vm.0,
                        r.target.0
                    );
                }
                requests
            }
            fn observe(&mut self, feedback: &megh_sim::StepFeedback) {
                self.0.observe(feedback);
            }
        }
        sim.run(Check(HierMegh::new(HierConfig::paper_defaults(n_vms, n_hosts, n_shards))));
    }

    /// Freezing every shard into its CSR snapshot and thawing back is
    /// invisible to the value function: every per-shard Q entry
    /// round-trips bit for bit, for any fleet shape and seed.
    #[test]
    fn hier_freeze_thaw_round_trips_q_bitwise(
        n_hosts in 2..7usize,
        extra_vms in 0..8usize,
        shard_req in 1..4usize,
        seed in 0..50u64,
    ) {
        let n_vms = n_hosts + extra_vms;
        let n_shards = shard_req.min(n_hosts);
        let rows: Vec<Vec<f64>> = (0..n_vms)
            .map(|v| (0..80).map(|t| ((v * 17 + t * 13 + seed as usize) % 90) as f64).collect())
            .collect();
        let trace = WorkloadTrace::from_rows(300, rows).unwrap();
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(n_hosts, n_vms), trace).unwrap();
        let mut cfg = HierConfig::paper_defaults(n_vms, n_hosts, n_shards);
        cfg.base.seed = seed;
        let mut agent = HierMegh::new(cfg);
        sim.run(&mut agent);

        let q_bits = |agent: &HierMegh| -> Vec<Vec<u64>> {
            (0..agent.n_shards())
                .map(|s| {
                    let lspi = agent.shard_lspi(s);
                    (0..lspi.dim()).map(|a| lspi.q(a).to_bits()).collect()
                })
                .collect()
        };
        let before = q_bits(&agent);
        agent.freeze_all();
        prop_assert_eq!(agent.frozen_shards(), agent.n_shards());
        prop_assert_eq!(&before, &q_bits(&agent), "freeze changed a Q value");
        agent.thaw_all();
        prop_assert_eq!(agent.frozen_shards(), 0);
        prop_assert_eq!(&before, &q_bits(&agent), "thaw changed a Q value");
    }

    /// The agent is a total function of (config, trace): same inputs,
    /// byte-identical migration decisions.
    #[test]
    fn agent_determinism(seed in 0..50u64, trace_seed in 0..50u64) {
        let (hosts, vms) = (3, 5);
        let rows: Vec<Vec<f64>> = (0..vms)
            .map(|v| (0..20).map(|t| ((v * 13 + t * 7 + trace_seed as usize) % 90) as f64).collect())
            .collect();
        let trace = WorkloadTrace::from_rows(300, rows).unwrap();
        let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
        config.initial_placement = InitialPlacement::RoundRobin;
        let sim = Simulation::new(config, trace).unwrap();
        let mk = || {
            let mut c = MeghConfig::paper_defaults(vms, hosts);
            c.seed = seed;
            MeghAgent::new(c)
        };
        let a = sim.run(mk());
        let b = sim.run(mk());
        prop_assert_eq!(a.final_placement(), b.final_placement());
        prop_assert_eq!(a.report().total_migrations, b.report().total_migrations);
    }
}

/// Masked sampling respects arbitrary predicates.
#[test]
fn masked_sampling_respects_predicate() {
    let lspi = SparseLspi::new(20, 20.0, 0.5);
    let policy = BoltzmannPolicy::new(3.0, 0.0);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..100 {
        if let Some(a) = policy.sample_masked(&lspi, &mut rng, |a| a % 2 == 0) {
            assert_eq!(a % 2, 0, "mask violated: {a}");
        }
    }
}

/// The agent's requests always reference valid VMs and hosts.
#[test]
fn agent_requests_are_well_formed() {
    let (hosts, vms) = (4, 7);
    let rows = vec![vec![30.0; 40]; vms];
    let trace = WorkloadTrace::from_rows(300, rows).unwrap();
    let config = DataCenterConfig::paper_planetlab(hosts, vms);
    let sim = Simulation::new(config, trace).unwrap();

    struct Check(MeghAgent);
    impl megh_sim::Scheduler for Check {
        fn name(&self) -> &str {
            "Check"
        }
        fn decide(&mut self, view: &megh_sim::DataCenterView) -> Vec<megh_sim::MigrationRequest> {
            let requests = self.0.decide(view);
            for r in &requests {
                assert!(r.vm < VmId(view.n_vms()));
                assert!(r.target < PmId(view.n_hosts()));
                assert_ne!(view.host_of(r.vm), r.target, "self-migration emitted");
            }
            requests
        }
        fn observe(&mut self, feedback: &megh_sim::StepFeedback) {
            self.0.observe(feedback);
        }
    }
    sim.run(Check(MeghAgent::new(MeghConfig::paper_defaults(
        vms, hosts,
    ))));
}
