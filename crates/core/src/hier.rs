//! Hierarchical (sharded) Megh: two-level placement for fleets far
//! beyond the flat `d = N × M` basis.
//!
//! The flat agent's projected dimension grows as the *product* of fleet
//! sizes — 10 000 hosts × 13 200 VMs is a 132-million-dimensional basis
//! whose Sherman–Morrison state no single operator should carry. The
//! scalable-RL literature (see PAPERS.md) decomposes the decision
//! instead: pick a **cluster** first with a cheap global policy, then
//! pick a **host inside that cluster** with a full RL agent whose state
//! is small. [`HierMegh`] realises that split:
//!
//! * Hosts and VMs are statically partitioned into `n_shards`
//!   contiguous shards; shard `c` owns `N_c × M_c ≈ (N/S) × (M/S)`
//!   action pairs, so per-shard LSPI state is bounded by the shard
//!   size, not the fleet size.
//! * A **coordinator** scores every shard from O(1) cached aggregates —
//!   utilization, awake-host fraction, and the shard agent's recent
//!   evaluation residual — and routes the step's decision budget to the
//!   shard that needs attention most. Aggregates refresh lazily (a
//!   rotating handful of shards per decide) so a decide never scans the
//!   whole fleet; a deterministic round-robin interleave guarantees
//!   every shard keeps receiving traffic.
//! * Each shard runs the full Megh actor–critic of `agent.rs` over its
//!   local basis, with its own [`SparseLspi`], Boltzmann policy, and
//!   exploration RNG, and its own `freeze()`-able CSR snapshot.
//! * [`PeriodicMeghAgent`](crate::PeriodicMeghAgent)-style phase
//!   windows drive **auto-freeze**: a shard whose Q-table stopped
//!   growing over a phase window freezes into the CSR fast path (the
//!   4-lane unrolled kernels of `megh_linalg::CsrMatrix`), and a frozen
//!   shard whose preview residual drifts past its baseline thaws back
//!   to learning. Steady-state fleets therefore serve evaluation
//!   traffic almost entirely from frozen shards.
//!
//! A VM's *home* shard is fixed; the local action space covers exactly
//! the home shard's hosts, so every emitted [`MigrationRequest`]
//! targets an in-shard (hence in-range) host. A VM that starts outside
//! its home shard is simply pulled in by its shard's first migration
//! decisions.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use rand::rngs::StdRng;
use rand::SeedableRng;

use megh_sim::{DataCenterView, MigrationRequest, PmId, Scheduler, StepFeedback, VmId};

use crate::{ActionSpace, BoltzmannPolicy, MeghConfig, SparseLspi};

/// Configuration of the hierarchical scheduler.
///
/// `base` carries the *global* dimensions and the RL parameters every
/// shard inherits (γ, Temp₀, ε, actions-per-step, masking, seed); each
/// shard derives its own δ from its local dimension, following the
/// paper's "δ as d" convention.
///
/// # Examples
///
/// ```
/// use megh_core::{HierConfig, HierMegh};
///
/// let cfg = HierConfig::paper_defaults(24, 12, 3);
/// let agent = HierMegh::new(cfg);
/// assert_eq!(agent.n_shards(), 3);
/// assert_eq!(agent.shard_hosts(0), 0..4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierConfig {
    /// Global dimensions plus the shared RL parameters.
    pub base: MeghConfig,
    /// Number of shards the fleet is split into (`1 ..= n_hosts`).
    pub n_shards: usize,
    /// Phase windows per period for the auto-freeze detector.
    pub n_phases: usize,
    /// Steps per period (288 five-minute steps = 24 h, as in
    /// `PeriodicMeghAgent`).
    pub steps_per_period: usize,
    /// A shard freezes when its Q-table grew by at most this fraction
    /// over a completed phase window.
    pub freeze_growth_limit: f64,
    /// A frozen shard thaws when its evaluation residual exceeds this
    /// multiple of the residual observed in its first frozen window.
    pub thaw_drift: f64,
    /// Shards whose cached aggregates refresh per decide (rotating).
    pub refresh_per_decide: usize,
    /// Every `round_robin_every`-th decide bypasses the scores and
    /// picks the next shard in order, so every shard keeps learning
    /// (and frozen shards keep accumulating previews). `0` disables.
    pub round_robin_every: usize,
}

impl HierConfig {
    /// Paper-style defaults for a fleet of `n_vms` VMs on `n_hosts`
    /// hosts split into `n_shards` shards.
    pub fn paper_defaults(n_vms: usize, n_hosts: usize, n_shards: usize) -> Self {
        Self {
            base: MeghConfig::paper_defaults(n_vms, n_hosts),
            n_shards,
            n_phases: 4,
            steps_per_period: 288,
            freeze_growth_limit: 0.02,
            thaw_drift: 4.0,
            refresh_per_decide: 4,
            round_robin_every: 4,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.base.validate()?;
        if self.n_shards == 0 {
            return Err("n_shards must be at least 1");
        }
        if self.n_shards > self.base.n_hosts.max(1) {
            return Err("n_shards must not exceed n_hosts");
        }
        if self.n_phases == 0 {
            return Err("n_phases must be at least 1");
        }
        if self.steps_per_period == 0 {
            return Err("steps_per_period must be at least 1");
        }
        // NaN fails both comparisons, so it is rejected as well.
        if self.freeze_growth_limit < 0.0 || !self.freeze_growth_limit.is_finite() {
            return Err("freeze_growth_limit must be non-negative");
        }
        if self.thaw_drift < 1.0 || !self.thaw_drift.is_finite() {
            return Err("thaw_drift must be at least 1");
        }
        Ok(())
    }
}

/// The contiguous slice `[s·total/n, (s+1)·total/n)` of a resource
/// split into `n` shards.
fn split_range(total: usize, s: usize, n: usize) -> std::ops::Range<usize> {
    debug_assert!(n > 0, "split into zero shards");
    (s * total / n)..((s + 1) * total / n)
}

/// SplitMix64 finalizer: derives independent per-shard exploration
/// seeds from `(base seed, shard index)`.
fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut z = seed
        .wrapping_add((shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One cluster's local Megh actor–critic plus its freeze bookkeeping.
#[derive(Debug, Clone)]
struct Shard {
    /// First global VM id owned by this shard.
    vm_lo: usize,
    /// First global host id owned by this shard.
    host_lo: usize,
    space: ActionSpace,
    lspi: SparseLspi,
    policy: BoltzmannPolicy,
    rng: StdRng,
    pending: Vec<usize>,
    vm_taken: Vec<bool>,
    last_cost: Option<f64>,
    /// `true` while the critic applies updates; `false` while frozen.
    learning: bool,
    /// Phase window the shard last acted in.
    last_phase: usize,
    /// Q-table size at the start of the current phase window.
    phase_nnz: usize,
    /// Residual of the first completed frozen window, the thaw baseline.
    frozen_baseline: Option<f64>,
    eval_residual_abs: f64,
    eval_previews: usize,
}

impl Shard {
    fn new(cfg: &HierConfig, s: usize) -> Self {
        let vms = split_range(cfg.base.n_vms, s, cfg.n_shards);
        let hosts = split_range(cfg.base.n_hosts, s, cfg.n_shards);
        let space = ActionSpace::new(vms.len(), hosts.len());
        // Paper convention, per shard: δ_c = d_c.
        let delta = space.dim().max(1) as f64;
        let n_vms = vms.len();
        Self {
            vm_lo: vms.start,
            host_lo: hosts.start,
            space,
            lspi: SparseLspi::new(space.dim(), delta, cfg.base.gamma),
            policy: BoltzmannPolicy::new(cfg.base.temp0, cfg.base.epsilon),
            rng: StdRng::seed_from_u64(shard_seed(cfg.base.seed, s)),
            // One-time construction; both grow once and are then reused.
            pending: Vec::new(),          // lint: allow(alloc)
            vm_taken: vec![false; n_vms], // lint: allow(alloc)
            last_cost: None,
            learning: true,
            last_phase: 0,
            phase_nnz: 0,
            frozen_baseline: None,
            eval_residual_abs: 0.0,
            eval_previews: 0,
        }
    }

    fn eval_residual_mean(&self) -> Option<f64> {
        (self.eval_previews > 0).then(|| self.eval_residual_abs / self.eval_previews as f64)
    }

    fn freeze(&mut self) {
        self.learning = false;
        self.frozen_baseline = None;
        self.eval_residual_abs = 0.0;
        self.eval_previews = 0;
        self.lspi.freeze();
    }

    fn thaw(&mut self) {
        self.learning = true;
        self.lspi.thaw();
    }

    /// Critic pass over the previous action(s) of this shard: update
    /// while learning, preview (accumulating the drift residual) while
    /// frozen. Mirrors `MeghAgent::learn_pending`.
    fn learn_pending(&mut self) {
        if let Some(cost) = self.last_cost.take() {
            for idx in 0..self.pending.len() {
                let a_prev = self.pending[idx];
                let a_next = self.policy.greedy(&self.lspi, &mut self.rng);
                if self.learning {
                    self.lspi.update(a_prev, a_next, cost);
                } else if let Some(coeff) = self.lspi.preview_update(a_prev, a_next, cost) {
                    self.eval_residual_abs += coeff.abs();
                    self.eval_previews += 1;
                }
            }
        }
        self.pending.clear();
    }

    /// Phase-boundary bookkeeping: freeze a shard whose Q-table went
    /// quiet over the completed window, thaw a frozen shard whose
    /// preview residual drifted past its baseline.
    fn tick_phase(&mut self, phase: usize, cfg: &HierConfig) {
        if phase == self.last_phase {
            return;
        }
        self.last_phase = phase;
        if self.learning {
            let nnz = self.lspi.explicit_nnz();
            let grown = nnz.saturating_sub(self.phase_nnz);
            let stable = nnz > 0 && (grown as f64) <= cfg.freeze_growth_limit * nnz as f64;
            self.phase_nnz = nnz;
            if stable {
                self.freeze();
            }
        } else {
            if let Some(residual) = self.eval_residual_mean() {
                match self.frozen_baseline {
                    None => self.frozen_baseline = Some(residual),
                    Some(baseline) => {
                        if residual > cfg.thaw_drift * baseline + f64::EPSILON {
                            self.thaw();
                            self.phase_nnz = self.lspi.explicit_nnz();
                        }
                    }
                }
            }
            self.eval_residual_abs = 0.0;
            self.eval_previews = 0;
        }
    }

    /// The shard-local Megh decide: sample actions over the `N_c × M_c`
    /// basis, map them to global ids, and emit migrations into `out`.
    fn decide_local(
        &mut self,
        view: &DataCenterView,
        cfg: &HierConfig,
        out: &mut Vec<MigrationRequest>,
    ) {
        if self.space.dim() == 0 {
            return;
        }
        self.learn_pending();
        self.tick_phase(phase_of(view.step(), cfg), cfg);
        if self.learning {
            self.policy.decay();
        }
        self.vm_taken.iter_mut().for_each(|t| *t = false);
        let (space, vm_lo, host_lo) = (self.space, self.vm_lo, self.host_lo);
        for _ in 0..cfg.base.actions_per_step {
            let sampled = if cfg.base.mask_sleeping_targets {
                self.policy.sample_masked(&self.lspi, &mut self.rng, |a| {
                    let action = space.decode(a);
                    let target = PmId(host_lo + action.target.0);
                    let source = view.host_of(VmId(vm_lo + action.vm.0));
                    target == source || !view.is_asleep(target) || view.is_overloaded(source)
                })
            } else {
                self.policy.sample(&self.lspi, &mut self.rng)
            };
            let Some(a) = sampled else {
                break;
            };
            let action = self.space.decode(a);
            let vm_idx = action.vm.0;
            // Contract: decode() yields in-space actions, and vm_taken
            // is sized to the shard's VM count at construction.
            debug_assert!(vm_idx < self.vm_taken.len());
            if self.vm_taken[vm_idx] {
                continue; // one decision per VM per step
            }
            self.vm_taken[vm_idx] = true;
            self.pending.push(a);
            let vm = VmId(self.vm_lo + vm_idx);
            let target = PmId(self.host_lo + action.target.0);
            if view.host_of(vm) != target {
                out.push(MigrationRequest::new(vm, target));
            }
        }
    }
}

/// The phase index for a step (identical to `PeriodicMeghAgent`).
fn phase_of(step: usize, cfg: &HierConfig) -> usize {
    let period = cfg.steps_per_period;
    debug_assert!(period > 0, "validated by HierConfig::validate");
    (step % period) * cfg.n_phases / period
}

/// Cached O(1) coordinator aggregates of one shard.
#[derive(Debug, Clone, Copy)]
struct ShardAgg {
    /// Demand / capacity over the shard's hosts.
    utilization: f64,
    /// Fraction of the shard's hosts that are awake (running VMs).
    awake_frac: f64,
}

/// The two-level scheduler: coordinator over per-shard Megh agents.
///
/// # Examples
///
/// ```
/// use megh_core::{HierConfig, HierMegh};
/// use megh_sim::{DataCenterConfig, Simulation};
/// use megh_trace::PlanetLabConfig;
///
/// let trace = PlanetLabConfig::new(12, 7).generate_steps(40);
/// let config = DataCenterConfig::paper_planetlab(6, 12);
/// let agent = HierMegh::new(HierConfig::paper_defaults(12, 6, 2));
/// let outcome = Simulation::new(config, trace)?.run(agent);
/// assert_eq!(outcome.records().len(), 40);
/// # Ok::<(), megh_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HierMegh {
    config: HierConfig,
    shards: Vec<Shard>,
    agg: Vec<ShardAgg>,
    /// Next shard whose aggregates the rotating refresh touches.
    refresh_cursor: usize,
    /// Next shard the round-robin interleave hands the budget to.
    rr_cursor: usize,
    /// Shard that acted last step (receives the next observed cost).
    last_shard: Option<usize>,
    decides: usize,
}

impl HierMegh {
    /// Creates the hierarchical scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HierConfig::validate`].
    pub fn new(config: HierConfig) -> Self {
        if let Err(msg) = config.validate() {
            // Documented contract, asserted by tests. lint: allow(panic)
            panic!("invalid hierarchical Megh configuration: {msg}");
        }
        // One-time construction of the shard fleet.
        let shards: Vec<Shard> = (0..config.n_shards)
            .map(|s| Shard::new(&config, s))
            .collect(); // lint: allow(alloc)
                        // Optimistic defaults until the rotating refresh reaches a
                        // shard: fully awake, idle.
        let agg = vec![ // lint: allow(alloc)
            ShardAgg {
                utilization: 0.0,
                awake_frac: 1.0,
            };
            config.n_shards
        ];
        Self {
            config,
            shards,
            agg,
            refresh_cursor: 0,
            rr_cursor: 0,
            last_shard: None,
            decides: 0,
        }
    }

    /// Convenience constructor from a flat config plus a shard count.
    ///
    /// # Panics
    ///
    /// Panics if the resulting configuration is invalid.
    pub fn sharded(base: MeghConfig, n_shards: usize) -> Self {
        let mut config = HierConfig::paper_defaults(base.n_vms, base.n_hosts, n_shards);
        config.base = base;
        Self::new(config)
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &HierConfig {
        &self.config
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous global host range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_hosts(&self, s: usize) -> std::ops::Range<usize> {
        assert!(s < self.n_shards(), "shard index out of range");
        split_range(self.config.base.n_hosts, s, self.config.n_shards)
    }

    /// The contiguous global VM range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_vms(&self, s: usize) -> std::ops::Range<usize> {
        assert!(s < self.n_shards(), "shard index out of range");
        split_range(self.config.base.n_vms, s, self.config.n_shards)
    }

    /// The shard owning global host `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn shard_of_host(&self, host: usize) -> usize {
        let n_hosts = self.config.base.n_hosts;
        assert!(host < n_hosts, "host index out of range");
        let n_shards = self.config.n_shards;
        debug_assert!(n_shards > 0, "validated by HierConfig::validate");
        ((host + 1) * n_shards - 1) / n_hosts
    }

    /// The shard owning global VM `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn shard_of_vm(&self, vm: usize) -> usize {
        let n_vms = self.config.base.n_vms;
        assert!(vm < n_vms, "vm index out of range");
        let n_shards = self.config.n_shards;
        debug_assert!(n_shards > 0, "validated by HierConfig::validate");
        ((vm + 1) * n_shards - 1) / n_vms
    }

    /// Total explicit non-zeros across all shard operators (the
    /// hierarchical counterpart of Figure 7's Q-table size).
    pub fn qtable_nnz(&self) -> usize {
        self.shards.iter().map(|s| s.lspi.explicit_nnz()).sum()
    }

    /// The largest single-shard Q-table — the "per-shard memory stays
    /// bounded" metric of the scalability sweep.
    pub fn max_shard_qtable_nnz(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lspi.explicit_nnz())
            .max()
            .unwrap_or(0)
    }

    /// Number of shards currently frozen into their CSR fast path.
    pub fn frozen_shards(&self) -> usize {
        self.shards.iter().filter(|s| !s.learning).count()
    }

    /// Read access to shard `s`'s LSPI state (tests, benches).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_lspi(&self, s: usize) -> &SparseLspi {
        assert!(s < self.shards.len(), "shard index out of range");
        &self.shards[s].lspi
    }

    /// Freezes every shard into its CSR snapshot (evaluation mode).
    pub fn freeze_all(&mut self) {
        for shard in &mut self.shards {
            shard.freeze();
        }
    }

    /// Thaws every shard back to learning.
    pub fn thaw_all(&mut self) {
        for shard in &mut self.shards {
            shard.thaw();
        }
    }

    /// Decides taken so far.
    pub fn steps(&self) -> usize {
        self.decides
    }

    /// Recomputes shard `s`'s cached aggregates from the view — the
    /// only coordinator work that touches per-host state, `O(M_c)` for
    /// one shard and rotated across decides.
    fn refresh_agg(&mut self, s: usize, view: &DataCenterView) {
        // Contract: one ShardAgg per shard, refreshed by shard index.
        debug_assert!(s < self.agg.len());
        let hosts = split_range(self.config.base.n_hosts, s, self.config.n_shards);
        let n = hosts.len();
        if n == 0 {
            return;
        }
        let mut used = 0.0;
        let mut cap = 0.0;
        let mut awake = 0usize;
        for h in hosts {
            let pm = PmId(h);
            used += view.host_used_mips(pm);
            cap += view.host_mips(pm);
            if !view.is_asleep(pm) {
                awake += 1;
            }
        }
        self.agg[s] = ShardAgg {
            utilization: if cap > 0.0 { used / cap } else { 0.0 },
            awake_frac: awake as f64 / n as f64,
        };
    }

    /// The coordinator score of shard `s`, from cached aggregates plus
    /// the shard agent's O(1) drift diagnostic. Higher = more in need
    /// of the decision budget: busy shards (migration pressure),
    /// un-consolidated shards (many awake hosts), and frozen shards
    /// whose policy is drifting. The weights are heuristic; correctness
    /// never depends on them (any shard the score neglects is still
    /// reached by the round-robin interleave).
    fn score(&self, s: usize) -> f64 {
        // Contract: agg and shards are parallel per-shard arrays.
        debug_assert!(s < self.agg.len() && s < self.shards.len());
        let agg = &self.agg[s];
        let drift = match self.shards[s].eval_residual_mean() {
            Some(r) => r / (1.0 + r),
            None => 0.0,
        };
        agg.utilization + 0.5 * agg.awake_frac + 0.5 * drift
    }
}

impl Scheduler for HierMegh {
    fn name(&self) -> &str {
        "Megh-H"
    }

    // lint: depth_budget(12)
    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        assert_eq!(
            (view.n_vms(), view.n_hosts()),
            (self.config.base.n_vms, self.config.base.n_hosts),
            "view dimensions do not match the hierarchical Megh configuration"
        );
        // An empty Vec never touches the heap.
        let mut requests = Vec::new(); // lint: allow(alloc)
        if self.config.base.n_vms == 0 {
            return requests;
        }

        // Lazy aggregate refresh: a rotating handful of shards per
        // decide keeps coordinator cost O(refresh · M_c + S), never a
        // full-fleet scan.
        let s_count = self.shards.len();
        debug_assert!(s_count > 0, "HierConfig::validate requires n_shards >= 1");
        for _ in 0..self.config.refresh_per_decide.min(s_count) {
            let s = self.refresh_cursor;
            self.refresh_agg(s, view);
            self.refresh_cursor = (self.refresh_cursor + 1) % s_count;
        }

        // Level 1: pick the cluster. A deterministic round-robin
        // interleave guarantees starvation-freedom regardless of the
        // score weights.
        let round_robin = self.config.round_robin_every > 0
            && self.decides.is_multiple_of(self.config.round_robin_every);
        let chosen = if round_robin {
            let s = self.rr_cursor;
            self.rr_cursor = (self.rr_cursor + 1) % s_count;
            s
        } else {
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for s in 0..s_count {
                let score = self.score(s);
                if score.total_cmp(&best_score) == std::cmp::Ordering::Greater {
                    best = s;
                    best_score = score;
                }
            }
            best
        };
        self.decides += 1;

        // Level 2: the chosen cluster's local Megh picks VM and host.
        debug_assert!(chosen < self.shards.len());
        let (config, shard) = (&self.config, &mut self.shards[chosen]);
        shard.decide_local(view, config, &mut requests);
        self.last_shard = Some(chosen);
        requests
    }

    // lint: depth_budget(2)
    fn observe(&mut self, feedback: &StepFeedback) {
        // Route the observed cost to the shard whose action caused it.
        if let Some(s) = self.last_shard {
            debug_assert!(s < self.shards.len());
            self.shards[s].last_cost = Some(feedback.total_cost_usd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{DataCenterConfig, Simulation};
    use megh_trace::PlanetLabConfig;

    fn mini_sim(n_hosts: usize, n_vms: usize, steps: usize) -> Simulation {
        let trace = PlanetLabConfig::new(n_vms, 99).generate_steps(steps);
        Simulation::new(DataCenterConfig::paper_planetlab(n_hosts, n_vms), trace).unwrap()
    }

    #[test]
    fn partition_covers_fleet_without_overlap() {
        let agent = HierMegh::new(HierConfig::paper_defaults(23, 10, 3));
        let mut hosts_seen = 0;
        let mut vms_seen = 0;
        for s in 0..agent.n_shards() {
            let hosts = agent.shard_hosts(s);
            let vms = agent.shard_vms(s);
            assert_eq!(hosts.start, hosts_seen, "host ranges must be contiguous");
            assert_eq!(vms.start, vms_seen, "vm ranges must be contiguous");
            hosts_seen = hosts.end;
            vms_seen = vms.end;
            for h in hosts {
                assert_eq!(agent.shard_of_host(h), s);
            }
            for v in vms {
                assert_eq!(agent.shard_of_vm(v), s);
            }
        }
        assert_eq!(hosts_seen, 10);
        assert_eq!(vms_seen, 23);
    }

    #[test]
    fn runs_end_to_end_and_learns_per_shard() {
        let sim = mini_sim(6, 12, 120);
        let mut agent = HierMegh::new(HierConfig::paper_defaults(12, 6, 3));
        let outcome = sim.run(&mut agent);
        assert_eq!(outcome.records().len(), 120);
        assert!(agent.qtable_nnz() > 0, "no shard learned anything");
        assert!(agent.max_shard_qtable_nnz() <= agent.qtable_nnz());
        assert_eq!(agent.steps(), 120);
    }

    #[test]
    fn is_deterministic_under_seed() {
        let sim = mini_sim(4, 8, 60);
        let mk = || HierMegh::new(HierConfig::paper_defaults(8, 4, 2));
        let a = sim.run(mk());
        let b = sim.run(mk());
        let costs_a: Vec<f64> = a.records().iter().map(|r| r.total_cost_usd).collect();
        let costs_b: Vec<f64> = b.records().iter().map(|r| r.total_cost_usd).collect();
        assert_eq!(costs_a, costs_b);
        assert_eq!(a.final_placement(), b.final_placement());
    }

    #[test]
    fn requests_stay_inside_the_vm_home_shard() {
        // Wrap the agent so every emitted request is checked against
        // the static partition: the target host must belong to the
        // moved VM's home shard (hence always in range).
        struct Checker {
            inner: HierMegh,
        }
        impl Scheduler for Checker {
            fn name(&self) -> &str {
                "checker"
            }
            fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
                let requests = self.inner.decide(view);
                for r in &requests {
                    let home = self.inner.shard_of_vm(r.vm.0);
                    assert!(
                        self.inner.shard_hosts(home).contains(&r.target.0),
                        "vm {} (shard {home}) targeted out-of-shard host {}",
                        r.vm.0,
                        r.target.0
                    );
                }
                requests
            }
            fn observe(&mut self, feedback: &StepFeedback) {
                self.inner.observe(feedback);
            }
        }
        let sim = mini_sim(6, 13, 100);
        let mut checker = Checker {
            inner: HierMegh::new(HierConfig::paper_defaults(13, 6, 3)),
        };
        let outcome = sim.run(&mut checker);
        assert!(outcome.report().total_migrations > 0, "nothing migrated");
    }

    #[test]
    fn stable_shards_auto_freeze() {
        // Short phases so several windows complete; a learned fleet
        // goes quiet and freezes.
        let mut cfg = HierConfig::paper_defaults(8, 4, 2);
        cfg.steps_per_period = 40;
        cfg.n_phases = 4;
        let sim = mini_sim(4, 8, 400);
        let mut agent = HierMegh::new(cfg);
        sim.run(&mut agent);
        assert!(
            agent.frozen_shards() > 0,
            "no shard froze after 400 quiet steps"
        );
        for s in 0..agent.n_shards() {
            if !agent.shards[s].learning {
                assert!(agent.shard_lspi(s).is_frozen(), "frozen shard without CSR");
            }
        }
    }

    #[test]
    fn freeze_all_round_trips_q_values_bitwise() {
        let sim = mini_sim(4, 8, 80);
        let mut agent = HierMegh::new(HierConfig::paper_defaults(8, 4, 2));
        sim.run(&mut agent);
        let before: Vec<Vec<f64>> = (0..agent.n_shards())
            .map(|s| {
                (0..agent.shard_lspi(s).dim())
                    .map(|a| agent.shard_lspi(s).q(a))
                    .collect()
            })
            .collect();
        agent.freeze_all();
        assert_eq!(agent.frozen_shards(), 2);
        agent.thaw_all();
        assert_eq!(agent.frozen_shards(), 0);
        for (s, shard_before) in before.iter().enumerate() {
            for (a, &want) in shard_before.iter().enumerate() {
                assert_eq!(agent.shard_lspi(s).q(a), want, "shard {s} action {a}");
            }
        }
    }

    #[test]
    fn empty_fleet_is_handled() {
        let trace = megh_trace::WorkloadTrace::from_rows(300, vec![]).unwrap();
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 0), trace).unwrap();
        let outcome = sim.run(HierMegh::new(HierConfig::paper_defaults(0, 2, 2)));
        assert_eq!(outcome.report().total_migrations, 0);
    }

    #[test]
    #[should_panic(expected = "n_shards must not exceed n_hosts")]
    fn too_many_shards_is_rejected() {
        let _ = HierMegh::new(HierConfig::paper_defaults(8, 4, 5));
    }

    #[test]
    #[should_panic(expected = "view dimensions")]
    fn dimension_mismatch_panics() {
        let sim = mini_sim(3, 6, 5);
        sim.run(HierMegh::new(HierConfig::paper_defaults(4, 3, 2)));
    }

    #[test]
    fn single_shard_covers_whole_fleet() {
        let agent = HierMegh::new(HierConfig::paper_defaults(6, 3, 1));
        assert_eq!(agent.shard_hosts(0), 0..3);
        assert_eq!(agent.shard_vms(0), 0..6);
        assert_eq!(agent.shard_lspi(0).dim(), 18);
    }

    #[test]
    fn shard_seeds_differ() {
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..64 {
            assert!(seen.insert(shard_seed(7, s)), "seed collision at {s}");
        }
    }
}
