//! The Megh agent: Algorithm 1 wired to the simulator's scheduler trait.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use megh_sim::{DataCenterView, MigrationRequest, Scheduler, StepFeedback};

use crate::{ActionSpace, BoltzmannPolicy, MeghConfig, SparseLspi};

/// A serialisable snapshot of everything Megh has learned.
///
/// A long-running controller must survive restarts without forgetting
/// its cost model. The checkpoint carries the configuration, the LSPI
/// state (`B`, `z`, `θ`), the annealed temperature, and the step count;
/// the exploration RNG is *not* carried — restoration reseeds it, which
/// changes future exploration but none of the learned values.
///
/// # Examples
///
/// ```
/// use megh_core::{MeghAgent, MeghConfig};
///
/// let agent = MeghAgent::new(MeghConfig::paper_defaults(6, 3));
/// let json = serde_json::to_string(&agent.checkpoint()).unwrap();
/// let restored = MeghAgent::restore(serde_json::from_str(&json).unwrap(), 99);
/// assert_eq!(restored.qtable_nnz(), agent.qtable_nnz());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeghCheckpoint {
    /// The agent's configuration.
    pub config: MeghConfig,
    /// The learned LSPI state.
    pub lspi: SparseLspi,
    /// The current (decayed) Boltzmann temperature.
    pub temperature: f64,
    /// Steps acted on so far.
    pub steps: usize,
}

/// The online reinforcement-learning scheduler of §5.
///
/// Per observation step (one iteration of Algorithm 1):
///
/// 1. finish learning from the previous step: for the action `a_t` taken
///    last time and the observed per-stage cost `C_{t+1}` (Eq. 6), find
///    the current policy's greedy action `a' = π_t(s_{t+1})` and apply
///    the Sherman–Morrison update of `B` with `u = φ_{a_t}`,
///    `v = φ_{a_t} − γ·φ_{a'}` (Eq. 10–11), accumulate
///    `z ← z + φ_{a_t}·C_{t+1}` and refresh `θ = B·z` incrementally;
/// 2. decay the Boltzmann temperature and sample the next action(s) from
///    the softmax over `Q(a) = θ[a]` (Algorithm 2);
/// 3. emit a [`MigrationRequest`] for each sampled action that moves a
///    VM off its current host — actions targeting the current host are
///    the MDP's "stay put" decisions and request nothing.
///
/// There is no training phase: learning and acting interleave from the
/// first step ("learn-as-you-go").
///
/// # Examples
///
/// ```
/// use megh_core::{MeghAgent, MeghConfig};
///
/// let agent = MeghAgent::new(MeghConfig::paper_defaults(10, 4));
/// assert_eq!(agent.qtable_nnz(), 0); // nothing learned yet
/// ```
#[derive(Debug, Clone)]
pub struct MeghAgent {
    config: MeghConfig,
    space: ActionSpace,
    lspi: SparseLspi,
    policy: BoltzmannPolicy,
    rng: StdRng,
    pending: Vec<usize>,
    /// Per-VM "already decided this step" scratch, reused across steps
    /// so the decision loop allocates nothing in the steady state.
    vm_taken: Vec<bool>,
    last_cost: Option<f64>,
    steps: usize,
    /// `true` while the critic applies Sherman–Morrison updates;
    /// `false` during evaluation phases, where the critic only previews.
    learning: bool,
    /// Σ|preview coefficient| accumulated during the current evaluation
    /// phase — a drift diagnostic for the frozen policy.
    eval_residual_abs: f64,
    /// Previews accumulated during the current evaluation phase.
    eval_previews: usize,
}

impl MeghAgent {
    /// Creates an agent for the configured data-center dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MeghConfig::validate`].
    pub fn new(config: MeghConfig) -> Self {
        if let Err(msg) = config.validate() {
            // Documented contract: construction with an invalid config is a
            // programming error, asserted by tests. lint: allow(panic)
            panic!("invalid Megh configuration: {msg}");
        }
        let space = ActionSpace::new(config.n_vms, config.n_hosts);
        let lspi = SparseLspi::new(space.dim(), config.delta, config.gamma);
        let policy = BoltzmannPolicy::new(config.temp0, config.epsilon);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            space,
            lspi,
            policy,
            rng,
            // One-time construction; both grow once and are then reused.
            pending: Vec::new(),  // lint: allow(alloc)
            vm_taken: Vec::new(), // lint: allow(alloc)
            last_cost: None,
            steps: 0,
            learning: true,
            eval_residual_abs: 0.0,
            eval_previews: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &MeghConfig {
        &self.config
    }

    /// Explicit non-zeros in the learned operator — Figure 7's Q-table
    /// size metric.
    pub fn qtable_nnz(&self) -> usize {
        self.lspi.explicit_nnz()
    }

    /// Distinct actions currently carrying value.
    pub fn theta_nnz(&self) -> usize {
        self.lspi.theta_nnz()
    }

    /// Current Boltzmann temperature.
    pub fn temperature(&self) -> f64 {
        self.policy.temperature()
    }

    /// Steps the agent has acted on.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Read access to the underlying LSPI state (diagnostics, benches).
    pub fn lspi(&self) -> &SparseLspi {
        &self.lspi
    }

    /// Snapshots the learned state for persistence.
    pub fn checkpoint(&self) -> MeghCheckpoint {
        // Checkpointing is an explicit cold path (persistence, not decide).
        MeghCheckpoint {
            config: self.config.clone(), // lint: allow(alloc)
            lspi: self.lspi.clone(),     // lint: allow(alloc)
            temperature: self.policy.temperature(),
            steps: self.steps,
        }
    }

    /// Rebuilds an agent from a checkpoint, reseeding exploration.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed configuration is invalid.
    pub fn restore(checkpoint: MeghCheckpoint, seed: u64) -> Self {
        if let Err(msg) = checkpoint.config.validate() {
            // Documented contract, asserted by tests. lint: allow(panic)
            panic!("invalid Megh configuration in checkpoint: {msg}");
        }
        let space = ActionSpace::new(checkpoint.config.n_vms, checkpoint.config.n_hosts);
        let policy =
            BoltzmannPolicy::with_temperature(checkpoint.temperature, checkpoint.config.epsilon);
        Self {
            space,
            lspi: checkpoint.lspi,
            policy,
            rng: StdRng::seed_from_u64(seed),
            // One-time construction on restore.
            pending: Vec::new(),  // lint: allow(alloc)
            vm_taken: Vec::new(), // lint: allow(alloc)
            last_cost: None,
            steps: checkpoint.steps,
            config: checkpoint.config,
            // Evaluation mode is derived runtime state, not persisted:
            // a restored agent resumes learning.
            learning: true,
            eval_residual_abs: 0.0,
            eval_previews: 0,
        }
    }

    /// Enters an evaluation phase with the learned operator frozen into
    /// a contiguous CSR snapshot.
    ///
    /// While frozen the agent still samples actions and runs its critic
    /// pass every step, but the critic only *previews* the Sherman–
    /// Morrison step ([`SparseLspi::preview_update`]) — `B`, `z`, `θ`
    /// and the Boltzmann temperature all stay fixed, and the `B·u` /
    /// `Bᵀ·v` products run on the flat CSR arrays. Calling
    /// [`MeghAgent::thaw`] (or any direct `lspi` update) resumes
    /// learning transparently.
    pub fn freeze(&mut self) {
        self.enter_eval();
        self.lspi.freeze();
    }

    /// Enters the same evaluation phase as [`MeghAgent::freeze`] but
    /// keeps the critic products on the mutable DOK backend.
    ///
    /// Exists so experiments (and the `csr_decide` bench probe) can
    /// isolate the CSR snapshot's contribution: a suspended agent and a
    /// frozen agent make bitwise-identical decisions and differ only in
    /// the product kernels.
    pub fn suspend_learning(&mut self) {
        self.enter_eval();
        self.lspi.thaw();
    }

    /// Resumes learning, dropping any frozen snapshot and the current
    /// evaluation-phase diagnostics.
    pub fn thaw(&mut self) {
        self.learning = true;
        self.lspi.thaw();
    }

    /// Whether the agent is in an evaluation phase (critic previews
    /// instead of updating). Backend in use: `lspi().is_frozen()`.
    pub fn is_frozen(&self) -> bool {
        !self.learning
    }

    /// Mean |preview coefficient| over the current evaluation phase —
    /// how much the frozen policy's value estimates would still move if
    /// learning were on. `None` before the first preview.
    pub fn eval_residual_mean(&self) -> Option<f64> {
        (self.eval_previews > 0).then(|| self.eval_residual_abs / self.eval_previews as f64)
    }

    fn enter_eval(&mut self) {
        self.learning = false;
        self.eval_residual_abs = 0.0;
        self.eval_previews = 0;
    }

    /// Learns from the stored `(a_t, C_{t+1})` pair, if any. Drains
    /// `pending` in place so its buffer is reused step after step.
    fn learn_pending(&mut self) {
        if let Some(cost) = self.last_cost.take() {
            for idx in 0..self.pending.len() {
                let a_prev = self.pending[idx];
                let a_next = self.policy.greedy(&self.lspi, &mut self.rng);
                if self.learning {
                    self.lspi.update(a_prev, a_next, cost);
                } else if let Some(coeff) = self.lspi.preview_update(a_prev, a_next, cost) {
                    // Evaluation phase: same products (CSR when frozen),
                    // no state change — accumulate the drift diagnostic.
                    self.eval_residual_abs += coeff.abs();
                    self.eval_previews += 1;
                }
            }
        }
        self.pending.clear();
    }
}

impl Scheduler for MeghAgent {
    fn name(&self) -> &str {
        "Megh"
    }

    // lint: depth_budget(8)
    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        assert_eq!(
            (view.n_vms(), view.n_hosts()),
            (self.config.n_vms, self.config.n_hosts),
            "view dimensions do not match the Megh configuration"
        );
        if self.space.dim() == 0 {
            // An empty Vec never touches the heap.
            return Vec::new(); // lint: allow(alloc)
        }

        // Critic: fold last step's observed cost into B, z, θ — or, in
        // an evaluation phase, preview it without mutating.
        self.learn_pending();

        // Actor: anneal and sample. Annealing pauses while evaluating so
        // a freeze → thaw round-trip leaves the exploration schedule
        // exactly where learning left it.
        if self.learning {
            self.policy.decay();
        }
        self.steps += 1;

        // Starts empty (no heap touch); pushes happen only on the rare
        // steps that actually migrate, bounded by actions_per_step.
        let mut requests = Vec::new(); // lint: allow(alloc)
        self.vm_taken.clear();
        self.vm_taken.resize(self.config.n_vms, false);
        for _ in 0..self.config.actions_per_step {
            let sampled = if self.config.mask_sleeping_targets {
                // §3.1: migrate only to PMs "with potential capacity" —
                // waking a sleeping host is justified only to relieve an
                // overloaded one.
                let space = self.space;
                self.policy.sample_masked(&self.lspi, &mut self.rng, |a| {
                    let action = space.decode(a);
                    let source = view.host_of(action.vm);
                    action.target == source
                        || !view.is_asleep(action.target)
                        || view.is_overloaded(source)
                })
            } else {
                self.policy.sample(&self.lspi, &mut self.rng)
            };
            let Some(a) = sampled else {
                break;
            };
            let action = self.space.decode(a);
            let vm_idx = action.vm.0;
            // Contract: decode() yields in-space actions, and vm_taken
            // is sized to the VM count at construction.
            debug_assert!(vm_idx < self.vm_taken.len());
            if self.vm_taken[vm_idx] {
                continue; // one decision per VM per step
            }
            self.vm_taken[vm_idx] = true;
            // `pending` was drained by `learn_pending`; it now collects
            // this step's actions for the next critic pass.
            self.pending.push(a);
            if view.host_of(action.vm) != action.target {
                requests.push(MigrationRequest::new(action.vm, action.target));
            }
        }
        requests
    }

    // lint: depth_budget(2)
    fn observe(&mut self, feedback: &StepFeedback) {
        self.last_cost = Some(feedback.total_cost_usd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{DataCenterConfig, Simulation};
    use megh_trace::{PlanetLabConfig, WorkloadTrace};

    fn mini_sim(n_hosts: usize, n_vms: usize, steps: usize) -> Simulation {
        let trace = PlanetLabConfig::new(n_vms, 99).generate_steps(steps);
        Simulation::new(DataCenterConfig::paper_planetlab(n_hosts, n_vms), trace).unwrap()
    }

    #[test]
    fn runs_end_to_end_and_learns() {
        let sim = mini_sim(4, 8, 60);
        let mut agent = MeghAgent::new(MeghConfig::paper_defaults(8, 4));
        let outcome = sim.run(&mut agent);
        assert_eq!(outcome.records().len(), 60);
        assert!(agent.qtable_nnz() > 0, "agent never learned anything");
        assert!(agent.steps() == 60);
        assert!(agent.temperature() < 3.0);
    }

    #[test]
    fn is_deterministic_under_seed() {
        let sim = mini_sim(3, 6, 40);
        let a = sim.run(MeghAgent::new(MeghConfig::paper_defaults(6, 3)));
        let b = sim.run(MeghAgent::new(MeghConfig::paper_defaults(6, 3)));
        let costs_a: Vec<f64> = a.records().iter().map(|r| r.total_cost_usd).collect();
        let costs_b: Vec<f64> = b.records().iter().map(|r| r.total_cost_usd).collect();
        assert_eq!(costs_a, costs_b);
        assert_eq!(a.report().total_migrations, b.report().total_migrations);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let sim = mini_sim(3, 6, 40);
        let mut cfg_a = MeghConfig::paper_defaults(6, 3);
        cfg_a.seed = 1;
        let mut cfg_b = MeghConfig::paper_defaults(6, 3);
        cfg_b.seed = 2;
        let a = sim.run(MeghAgent::new(cfg_a));
        let b = sim.run(MeghAgent::new(cfg_b));
        assert_ne!(a.final_placement(), b.final_placement());
    }

    #[test]
    fn migration_rate_is_modest() {
        // Megh's hallmark (Tables 2–3): orders of magnitude fewer
        // migrations than one per VM per step.
        let steps = 100;
        let sim = mini_sim(5, 10, steps);
        let outcome = sim.run(MeghAgent::new(MeghConfig::paper_defaults(10, 5)));
        let migrations = outcome.report().total_migrations;
        assert!(
            migrations <= steps,
            "at most ~1 migration per step expected, got {migrations}"
        );
    }

    #[test]
    fn qtable_grows_roughly_linearly() {
        let sim = mini_sim(6, 12, 150);
        let mut agent = MeghAgent::new(MeghConfig::paper_defaults(12, 6));
        sim.run(&mut agent);
        let nnz = agent.qtable_nnz();
        // Each step adds O(1) entries; far below d² = 5184.
        assert!(nnz > 10, "nnz = {nnz}");
        assert!(nnz < 5184 / 2, "nnz = {nnz} — fill-in explosion");
    }

    #[test]
    fn empty_data_center_is_handled() {
        let trace = WorkloadTrace::from_rows(300, vec![]).unwrap();
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(2, 0), trace).unwrap();
        let outcome = sim.run(MeghAgent::new(MeghConfig::paper_defaults(0, 2)));
        assert_eq!(outcome.report().total_migrations, 0);
    }

    #[test]
    #[should_panic(expected = "view dimensions")]
    fn dimension_mismatch_panics() {
        let sim = mini_sim(3, 6, 5);
        // Agent configured for the wrong shape.
        sim.run(MeghAgent::new(MeghConfig::paper_defaults(4, 3)));
    }

    #[test]
    #[should_panic(expected = "invalid Megh configuration")]
    fn invalid_config_panics() {
        let mut cfg = MeghConfig::paper_defaults(2, 2);
        cfg.gamma = 2.0;
        let _ = MeghAgent::new(cfg);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_learned_values() {
        let sim = mini_sim(4, 8, 80);
        let mut agent = MeghAgent::new(MeghConfig::paper_defaults(8, 4));
        sim.run(&mut agent);
        let json = serde_json::to_string(&agent.checkpoint()).unwrap();
        let restored = MeghAgent::restore(serde_json::from_str(&json).unwrap(), 5);
        assert_eq!(restored.qtable_nnz(), agent.qtable_nnz());
        assert_eq!(restored.theta_nnz(), agent.theta_nnz());
        assert_eq!(restored.steps(), agent.steps());
        assert!((restored.temperature() - agent.temperature()).abs() < 1e-12);
        for a in 0..agent.lspi().dim() {
            assert_eq!(restored.lspi().q(a), agent.lspi().q(a));
        }
        // The restored agent keeps working.
        let outcome = sim.run(restored);
        assert_eq!(outcome.records().len(), 80);
    }

    #[test]
    #[should_panic(expected = "invalid Megh configuration in checkpoint")]
    fn restore_rejects_corrupt_checkpoint() {
        let agent = MeghAgent::new(MeghConfig::paper_defaults(2, 2));
        let mut cp = agent.checkpoint();
        cp.config.gamma = 7.0;
        let _ = MeghAgent::restore(cp, 1);
    }

    #[test]
    fn freeze_pauses_learning_and_thaw_resumes() {
        let sim = mini_sim(4, 8, 60);
        let mut agent = MeghAgent::new(MeghConfig::paper_defaults(8, 4));
        sim.run(&mut agent);
        let learned_nnz = agent.qtable_nnz();
        let learned_updates = agent.lspi().updates();
        let learned_temp = agent.temperature();
        assert!(learned_nnz > 0);

        agent.freeze();
        assert!(agent.is_frozen());
        assert!(agent.lspi().is_frozen());
        sim.run(&mut agent);
        // Evaluation ran the critic previews but changed nothing learned.
        assert_eq!(agent.qtable_nnz(), learned_nnz);
        assert_eq!(agent.lspi().updates(), learned_updates);
        assert_eq!(agent.temperature(), learned_temp);
        assert!(
            agent.eval_residual_mean().is_some(),
            "evaluation phase must accumulate preview diagnostics"
        );

        agent.thaw();
        assert!(!agent.is_frozen());
        assert!(!agent.lspi().is_frozen());
        sim.run(&mut agent);
        assert!(agent.lspi().updates() > learned_updates);
        assert!(agent.temperature() < learned_temp);
    }

    #[test]
    fn frozen_csr_and_suspended_dok_decide_identically() {
        // The backend swap must be invisible: a frozen (CSR) agent and a
        // suspended (DOK) agent with identical learned state must produce
        // bitwise-identical runs.
        let sim = mini_sim(4, 8, 50);
        let mut warmed = MeghAgent::new(MeghConfig::paper_defaults(8, 4));
        sim.run(&mut warmed);

        let mut csr_agent = warmed.clone();
        let mut dok_agent = warmed;
        csr_agent.freeze();
        dok_agent.suspend_learning();
        assert!(csr_agent.lspi().is_frozen());
        assert!(!dok_agent.lspi().is_frozen());

        let a = sim.run(&mut csr_agent);
        let b = sim.run(&mut dok_agent);
        // Compare everything except decision_micros, the one wall-clock
        // (hence nondeterministic) field in a step record.
        assert_eq!(a.records().len(), b.records().len());
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.total_cost_usd, rb.total_cost_usd, "step {}", ra.step);
            assert_eq!(ra.energy_cost_usd, rb.energy_cost_usd);
            assert_eq!(ra.sla_cost_usd, rb.sla_cost_usd);
            assert_eq!(ra.cumulative_migrations, rb.cumulative_migrations);
            assert_eq!(ra.active_hosts, rb.active_hosts);
        }
        assert_eq!(a.final_placement(), b.final_placement());
        assert_eq!(
            csr_agent.eval_residual_mean(),
            dok_agent.eval_residual_mean()
        );
    }

    #[test]
    fn direct_update_during_freeze_thaws_lspi() {
        let sim = mini_sim(3, 6, 30);
        let mut agent = MeghAgent::new(MeghConfig::paper_defaults(6, 3));
        sim.run(&mut agent);
        agent.freeze();
        // thaw() is the intended exit, but the lspi also falls back to
        // DOK transparently if an update arrives while frozen.
        agent.thaw();
        sim.run(&mut agent);
        assert!(!agent.lspi().is_frozen());
    }

    #[test]
    fn actions_per_step_respects_one_decision_per_vm() {
        let sim = mini_sim(4, 4, 30);
        let mut cfg = MeghConfig::paper_defaults(4, 4);
        cfg.actions_per_step = 8;
        let outcome = sim.run(MeghAgent::new(cfg));
        // One decision per VM per step → at most 4 migrations × 30 steps.
        assert!(outcome.report().total_migrations <= 4 * 30);
    }
}
