//! Convergence diagnostics for per-step cost series.
//!
//! §6.3 quantifies learning behaviour by when the per-step operation
//! cost "converges to almost stable cost" — Megh in ~100 steps,
//! THR-MMT in ~300–600, MadVM in 200–700. This module implements that
//! measurement: a rolling-window stability detector plus the
//! variance-after-convergence statistic the paper uses to argue Megh's
//! robustness.
//!
//! It also carries the decision-hot-path observability primitives:
//! [`LatencyStats`] summarises the per-step decision latencies the
//! simulator records (Figures 4(d)/5(d) are latency plots), and
//! [`CountingAllocator`] is a global-allocator wrapper used to *prove*
//! the steady-state decision path performs zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Summary of per-step decision latencies, in microseconds.
///
/// # Examples
///
/// ```
/// use megh_core::diagnostics::LatencyStats;
///
/// let stats = LatencyStats::from_micros(&[10, 20, 30, 40, 1000]);
/// assert_eq!(stats.samples, 5);
/// assert_eq!(stats.median_us, 30.0);
/// assert_eq!(stats.max_us, 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of decisions measured.
    pub samples: usize,
    /// Arithmetic mean, µs.
    pub mean_us: f64,
    /// Median (lower of the two middle samples for even counts), µs.
    pub median_us: f64,
    /// 99th percentile (nearest-rank), µs.
    pub p99_us: f64,
    /// Worst observed decision, µs.
    pub max_us: f64,
}

impl LatencyStats {
    /// Summarises a slice of per-step decision latencies (microseconds,
    /// as recorded in the simulator's step records). An empty slice
    /// yields all-zero statistics.
    pub fn from_micros(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self {
                samples: 0,
                mean_us: 0.0,
                median_us: 0.0,
                p99_us: 0.0,
                max_us: 0.0,
            };
        }
        let mut sorted: Vec<u64> = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = |q: f64| sorted[((n as f64 * q).ceil() as usize).clamp(1, n) - 1] as f64;
        Self {
            samples: n,
            mean_us: sorted.iter().sum::<u64>() as f64 / n as f64,
            median_us: rank(0.5),
            p99_us: rank(0.99),
            max_us: sorted[n - 1] as f64,
        }
    }
}

/// Summarises the per-step decision latencies of a finished simulation
/// run — the series behind Figures 2(d)–5(d) and the Tables 2–3
/// "Execution time" rows, with tail percentiles the mean hides.
pub fn decision_latency(records: &[megh_sim::StepRecord]) -> LatencyStats {
    let micros: Vec<u64> = records.iter().map(|r| r.decision_micros).collect();
    LatencyStats::from_micros(&micros)
}

/// A [`GlobalAlloc`] wrapper around the system allocator that counts
/// every allocation. Install it in a test binary to assert a code path
/// never touches the heap:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: megh_core::diagnostics::CountingAllocator =
///     megh_core::diagnostics::CountingAllocator::system();
///
/// let before = ALLOC.allocations();
/// hot_path();
/// assert_eq!(ALLOC.allocations(), before);
/// ```
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    deallocations: AtomicU64,
    bytes_allocated: AtomicU64,
}

impl CountingAllocator {
    /// A counting wrapper over [`std::alloc::System`], usable in
    /// `static` position (`const fn`).
    pub const fn system() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Heap acquisitions observed so far (`alloc`, `alloc_zeroed`, and
    /// `realloc` each count one).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Frees observed so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested across all acquisitions.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::system()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the counters
// are mere observers and do not affect the returned memory. This is the
// workspace's sole unsafe allowlist entry (see DESIGN §10).
#[allow(unsafe_code)]
// lint: allow(unsafe_code)
unsafe impl GlobalAlloc for CountingAllocator {
    // lint: allow(unsafe_code)
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // lint: allow(unsafe_code)
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // lint: allow(unsafe_code)
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // lint: allow(unsafe_code)
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated
            .fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Result of convergence analysis on a per-step cost series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Convergence {
    /// First step from which the series is judged stable, if any.
    pub converged_at: Option<usize>,
    /// Mean of the series after the convergence point (whole series
    /// when no convergence was found).
    pub stable_mean: f64,
    /// Standard deviation after the convergence point.
    pub stable_std: f64,
}

/// Detects when a cost series settles.
///
/// The series is scanned with a rolling window of `window` steps; the
/// first window whose mean stays within `tolerance` (relative) of the
/// mean of *every* subsequent window marks convergence. This matches
/// the paper's reading of Figures 2(a)–5(a): after the convergence
/// point the per-step cost no longer drifts, only fluctuates.
///
/// Returns `converged_at = None` when the series never settles or is
/// shorter than two windows.
///
/// # Panics
///
/// Panics if `window == 0` or `tolerance < 0`.
///
/// # Examples
///
/// ```
/// use megh_core::diagnostics::detect_convergence;
///
/// // A series that decays then stabilises at 1.0.
/// let series: Vec<f64> = (0..200)
///     .map(|t| 1.0 + 4.0 * (-(t as f64) / 20.0).exp())
///     .collect();
/// let c = detect_convergence(&series, 20, 0.05);
/// assert!(c.converged_at.is_some());
/// assert!((c.stable_mean - 1.0).abs() < 0.2);
/// ```
pub fn detect_convergence(series: &[f64], window: usize, tolerance: f64) -> Convergence {
    assert!(window > 0, "window must be positive");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    if series.len() < 2 * window {
        return Convergence {
            converged_at: None,
            stable_mean: mean(series),
            stable_std: std_dev(series),
        };
    }
    let window_means: Vec<f64> = series.windows(window).step_by(window).map(mean).collect();
    // Find the first window whose mean all later windows stay close to.
    let mut converged_window = None;
    'outer: for (i, &m) in window_means.iter().enumerate() {
        let scale = m.abs().max(1e-12);
        for &later in &window_means[i + 1..] {
            if (later - m).abs() / scale > tolerance {
                continue 'outer;
            }
        }
        // Require at least one later window to confirm stability.
        if i + 1 < window_means.len() {
            converged_window = Some(i);
        }
        break;
    }
    match converged_window {
        Some(i) => {
            let at = i * window;
            Convergence {
                converged_at: Some(at),
                stable_mean: mean(&series[at..]),
                stable_std: std_dev(&series[at..]),
            }
        }
        None => Convergence {
            converged_at: None,
            stable_mean: mean(series),
            stable_std: std_dev(series),
        },
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_converges_immediately() {
        let series = vec![2.0; 100];
        let c = detect_convergence(&series, 10, 0.05);
        assert_eq!(c.converged_at, Some(0));
        assert_eq!(c.stable_mean, 2.0);
        assert_eq!(c.stable_std, 0.0);
    }

    #[test]
    fn decaying_series_converges_after_transient() {
        let series: Vec<f64> = (0..300)
            .map(|t| 1.0 + 10.0 * (-(t as f64) / 15.0).exp())
            .collect();
        let c = detect_convergence(&series, 20, 0.05);
        let at = c.converged_at.expect("must converge");
        assert!(at >= 20, "transient must not count as stable");
        assert!(at <= 160, "converged too late: {at}");
    }

    #[test]
    fn drifting_series_never_converges() {
        let series: Vec<f64> = (0..300).map(|t| t as f64).collect();
        let c = detect_convergence(&series, 20, 0.05);
        assert_eq!(c.converged_at, None);
    }

    #[test]
    fn short_series_is_inconclusive() {
        let c = detect_convergence(&[1.0, 1.0, 1.0], 10, 0.05);
        assert_eq!(c.converged_at, None);
        assert_eq!(c.stable_mean, 1.0);
    }

    #[test]
    fn noise_within_tolerance_still_converges() {
        let series: Vec<f64> = (0..200)
            .map(|t| 5.0 + 0.1 * ((t * 7919) % 13) as f64 / 13.0)
            .collect();
        let c = detect_convergence(&series, 20, 0.05);
        assert!(c.converged_at.is_some());
        assert!(c.stable_std < 0.1);
    }

    #[test]
    fn late_spike_prevents_early_convergence_claim() {
        let mut series = vec![1.0; 240];
        for v in &mut series[140..160] {
            *v = 3.0;
        }
        let c = detect_convergence(&series, 20, 0.05);
        // The first stable-forever window starts right after the spike.
        assert_eq!(c.converged_at, Some(160));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        detect_convergence(&[1.0], 0, 0.1);
    }

    #[test]
    fn latency_stats_on_empty_slice_are_zero() {
        let stats = LatencyStats::from_micros(&[]);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.mean_us, 0.0);
        assert_eq!(stats.p99_us, 0.0);
    }

    #[test]
    fn latency_stats_summarise_correctly() {
        // 100 samples 1..=100 µs: clean quantiles.
        let samples: Vec<u64> = (1..=100).collect();
        let stats = LatencyStats::from_micros(&samples);
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.mean_us, 50.5);
        assert_eq!(stats.median_us, 50.0);
        assert_eq!(stats.p99_us, 99.0);
        assert_eq!(stats.max_us, 100.0);
    }

    #[test]
    fn latency_stats_are_order_invariant() {
        let a = LatencyStats::from_micros(&[5, 1, 9, 3]);
        let b = LatencyStats::from_micros(&[9, 5, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a.median_us, 3.0);
        assert_eq!(a.max_us, 9.0);
    }

    #[test]
    fn decision_latency_reads_simulation_records() {
        let records: Vec<megh_sim::StepRecord> = (0..10)
            .map(|step| megh_sim::StepRecord {
                step,
                energy_cost_usd: 0.0,
                sla_cost_usd: 0.0,
                total_cost_usd: 0.0,
                migrations: 0,
                cumulative_migrations: 0,
                active_hosts: 1,
                decision_micros: (step as u64 + 1) * 100,
                overloaded_hosts: 0,
            })
            .collect();
        let stats = decision_latency(&records);
        assert_eq!(stats.samples, 10);
        assert_eq!(stats.max_us, 1000.0);
        assert_eq!(stats.median_us, 500.0);
    }

    #[test]
    // Driving a GlobalAlloc by hand is unavoidably unsafe; this test is
    // part of the CountingAllocator allowlist entry (DESIGN §10).
    #[allow(unsafe_code)]
    fn counting_allocator_observes_a_heap_box() {
        // Not installed as the global allocator here — drive it
        // directly to check the bookkeeping.
        let counter = CountingAllocator::system();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            counter.dealloc(p, layout);
        }
        assert_eq!(counter.allocations(), 1);
        assert_eq!(counter.deallocations(), 1);
        assert_eq!(counter.bytes_allocated(), 64);
    }
}
