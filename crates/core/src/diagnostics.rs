//! Convergence diagnostics for per-step cost series.
//!
//! §6.3 quantifies learning behaviour by when the per-step operation
//! cost "converges to almost stable cost" — Megh in ~100 steps,
//! THR-MMT in ~300–600, MadVM in 200–700. This module implements that
//! measurement: a rolling-window stability detector plus the
//! variance-after-convergence statistic the paper uses to argue Megh's
//! robustness.

use serde::{Deserialize, Serialize};

/// Result of convergence analysis on a per-step cost series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Convergence {
    /// First step from which the series is judged stable, if any.
    pub converged_at: Option<usize>,
    /// Mean of the series after the convergence point (whole series
    /// when no convergence was found).
    pub stable_mean: f64,
    /// Standard deviation after the convergence point.
    pub stable_std: f64,
}

/// Detects when a cost series settles.
///
/// The series is scanned with a rolling window of `window` steps; the
/// first window whose mean stays within `tolerance` (relative) of the
/// mean of *every* subsequent window marks convergence. This matches
/// the paper's reading of Figures 2(a)–5(a): after the convergence
/// point the per-step cost no longer drifts, only fluctuates.
///
/// Returns `converged_at = None` when the series never settles or is
/// shorter than two windows.
///
/// # Panics
///
/// Panics if `window == 0` or `tolerance < 0`.
///
/// # Examples
///
/// ```
/// use megh_core::diagnostics::detect_convergence;
///
/// // A series that decays then stabilises at 1.0.
/// let series: Vec<f64> = (0..200)
///     .map(|t| 1.0 + 4.0 * (-(t as f64) / 20.0).exp())
///     .collect();
/// let c = detect_convergence(&series, 20, 0.05);
/// assert!(c.converged_at.is_some());
/// assert!((c.stable_mean - 1.0).abs() < 0.2);
/// ```
pub fn detect_convergence(series: &[f64], window: usize, tolerance: f64) -> Convergence {
    assert!(window > 0, "window must be positive");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    if series.len() < 2 * window {
        return Convergence {
            converged_at: None,
            stable_mean: mean(series),
            stable_std: std_dev(series),
        };
    }
    let window_means: Vec<f64> = series
        .windows(window)
        .step_by(window)
        .map(mean)
        .collect();
    // Find the first window whose mean all later windows stay close to.
    let mut converged_window = None;
    'outer: for (i, &m) in window_means.iter().enumerate() {
        let scale = m.abs().max(1e-12);
        for &later in &window_means[i + 1..] {
            if (later - m).abs() / scale > tolerance {
                continue 'outer;
            }
        }
        // Require at least one later window to confirm stability.
        if i + 1 < window_means.len() {
            converged_window = Some(i);
        }
        break;
    }
    match converged_window {
        Some(i) => {
            let at = i * window;
            Convergence {
                converged_at: Some(at),
                stable_mean: mean(&series[at..]),
                stable_std: std_dev(&series[at..]),
            }
        }
        None => Convergence {
            converged_at: None,
            stable_mean: mean(series),
            stable_std: std_dev(series),
        },
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_converges_immediately() {
        let series = vec![2.0; 100];
        let c = detect_convergence(&series, 10, 0.05);
        assert_eq!(c.converged_at, Some(0));
        assert_eq!(c.stable_mean, 2.0);
        assert_eq!(c.stable_std, 0.0);
    }

    #[test]
    fn decaying_series_converges_after_transient() {
        let series: Vec<f64> = (0..300)
            .map(|t| 1.0 + 10.0 * (-(t as f64) / 15.0).exp())
            .collect();
        let c = detect_convergence(&series, 20, 0.05);
        let at = c.converged_at.expect("must converge");
        assert!(at >= 20, "transient must not count as stable");
        assert!(at <= 160, "converged too late: {at}");
    }

    #[test]
    fn drifting_series_never_converges() {
        let series: Vec<f64> = (0..300).map(|t| t as f64).collect();
        let c = detect_convergence(&series, 20, 0.05);
        assert_eq!(c.converged_at, None);
    }

    #[test]
    fn short_series_is_inconclusive() {
        let c = detect_convergence(&[1.0, 1.0, 1.0], 10, 0.05);
        assert_eq!(c.converged_at, None);
        assert_eq!(c.stable_mean, 1.0);
    }

    #[test]
    fn noise_within_tolerance_still_converges() {
        let series: Vec<f64> = (0..200)
            .map(|t| 5.0 + 0.1 * ((t * 7919) % 13) as f64 / 13.0)
            .collect();
        let c = detect_convergence(&series, 20, 0.05);
        assert!(c.converged_at.is_some());
        assert!(c.stable_std < 0.1);
    }

    #[test]
    fn late_spike_prevents_early_convergence_claim() {
        let mut series = vec![1.0; 240];
        for v in &mut series[140..160] {
            *v = 3.0;
        }
        let c = detect_convergence(&series, 20, 0.05);
        // The first stable-forever window starts right after the spike.
        assert_eq!(c.converged_at, Some(160));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        detect_convergence(&[1.0], 0, 0.1);
    }
}
