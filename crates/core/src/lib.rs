//! Megh: the online reinforcement-learning live-migration scheduler
//! (§4–5 of the paper).
//!
//! Megh models live VM migration as an infinite-horizon discounted MDP
//! whose actions are pairs `(j, k)` — migrate VM `j` to host `k` — and
//! resolves the curse of dimensionality by projecting the combinatorial
//! state–action space onto a `d = N × M` dimensional space spanned by one
//! sparse basis vector `φ_{jk}` per action (Theorem 1). The cost-to-go is
//! approximated as `V(s) = θᵀ φ_{π(s)}`, learned with an LSPI-style
//! actor–critic where the inverse transition operator `B = T⁻¹` is
//! maintained incrementally with the Sherman–Morrison formula (Eq. 11) —
//! never re-inverted — and exploration follows a Boltzmann policy with
//! exponentially decaying temperature (Algorithm 2).
//!
//! The implementation realises §5.2's complexity management literally:
//! `B` is stored as `(1/δ)·I` plus a sparse dictionary-of-keys delta, so
//! memory starts at `O(d)` *implicit* entries with zero explicit storage
//! and grows only with the actions actually explored, and every per-step
//! update costs time proportional to the number of migrations, not to
//! `d`. The explicit non-zero count is exactly the "Q-table size" metric
//! of Figure 7.
//!
//! # Examples
//!
//! ```
//! use megh_core::{MeghAgent, MeghConfig};
//! use megh_sim::{DataCenterConfig, Simulation};
//! use megh_trace::PlanetLabConfig;
//!
//! let trace = PlanetLabConfig::new(12, 7).generate_steps(40);
//! let config = DataCenterConfig::paper_planetlab(6, 12);
//! let agent = MeghAgent::new(MeghConfig::paper_defaults(12, 6));
//! let outcome = Simulation::new(config, trace)?.run(agent);
//! assert_eq!(outcome.records().len(), 40);
//! # Ok::<(), megh_sim::SimError>(())
//! ```

// `deny`, not `forbid`: diagnostics::CountingAllocator is the one
// allowlisted `unsafe` in the workspace (a GlobalAlloc wrapper must be
// unsafe) and overrides this with `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]

mod action;
mod agent;
mod checkpoint;
mod config;
pub mod diagnostics;
mod hier;
mod lspi;
mod periodic;
mod policy;

pub use action::{Action, ActionSpace};
pub use agent::{MeghAgent, MeghCheckpoint};
pub use checkpoint::{
    fnv1a64, from_versioned_json, load_checkpoint, save_checkpoint, to_versioned_json,
    CheckpointError, Config, Migration, SemVer, CHECKPOINT_VERSION,
};
pub use config::MeghConfig;
pub use hier::{HierConfig, HierMegh};
pub use lspi::SparseLspi;
pub use periodic::PeriodicMeghAgent;
pub use policy::BoltzmannPolicy;
