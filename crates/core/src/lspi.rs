//! The sparse LSPI state: `B = T⁻¹`, the cost accumulator `z`, and the
//! projection vector `θ = B·z`, all maintained incrementally.
//!
//! §5.2's complexity management is implemented literally here:
//!
//! * `B` is represented as `(1/δ)·I + Δ` where `Δ` is a sparse DOK
//!   matrix, initially *empty*. Memory starts at `O(1)` explicit storage
//!   (the paper's `O(d)` counts the implicit diagonal) and grows only as
//!   actions are explored. [`SparseLspi::explicit_nnz`] — the number of
//!   stored entries of `Δ` — is the Figure 7 "Q-table non-zeros" metric.
//! * Each update applies the Sherman–Morrison formula (Eq. 11) with
//!   `u = φ_{a_t}`, `v = φ_{a_t} − γ·φ_{a_{t+1}}`, touching only the
//!   occupied rows/columns — `O(#migrations)` work per step.
//! * `θ` is updated in closed form rather than recomputed: with
//!   `bu = B·u`, `vb = Bᵀ·v`, `den = 1 + v·bu`,
//!   `θ' = θ + [ −(vb·z)/den + C·(1 − (vb·u)/den) ]·bu`,
//!   which follows from `θ' = B'(z + C·u)` and the rank-1 structure.
//!
//! The decision hot path is allocation-free in the steady state: the
//! basis vectors `u`, `v` and the products `bu`, `vb` live in reusable
//! scratch buffers, and the minimum explicit `θ` entry is cached and
//! maintained incrementally so [`SparseLspi::min_q`] never scans.

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use megh_linalg::{CsrMatrix, DokMatrix, SparseMatVec, SparseVec};
use serde::{Deserialize, Serialize};

#[cfg(feature = "check-invariants")]
use megh_linalg::DenseMatrix;

/// Shadow-`T` maintenance costs `O(dim²)` memory, so verification is
/// disabled above this dimension (the checks silently no-op).
#[cfg(feature = "check-invariants")]
const VERIFY_MAX_DIM: usize = 512;
/// The `O(dim²)` residual check runs on every `VERIFY_EVERY`-th
/// successful update; the shadow itself is maintained on every one.
#[cfg(feature = "check-invariants")]
const VERIFY_EVERY: usize = 16;
/// Tolerance on the inverse-drift residual `‖B·T − I‖∞`.
#[cfg(feature = "check-invariants")]
const VERIFY_TOL: f64 = 1e-6;

/// Incremental least-squares policy-iteration state over `d` actions.
///
/// # Examples
///
/// ```
/// use megh_core::SparseLspi;
///
/// let mut lspi = SparseLspi::new(6, 6.0, 0.5);
/// assert_eq!(lspi.q(3), 0.0);
/// lspi.update(3, 1, 2.0);
/// assert!(lspi.q(3) > 0.0); // action 3 now carries observed cost
/// assert_eq!(lspi.updates(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SparseLspi {
    dim: usize,
    inv_delta: f64,
    gamma: f64,
    /// Sparse correction: `B = inv_delta·I + delta_b`.
    delta_b: DokMatrix,
    z: SparseVec,
    theta: SparseVec,
    updates: usize,
    skipped_singular: usize,
    /// Per-action "has received a successful update" flags. An action's
    /// `θ` entry can cancel back to exactly 0.0, so exploration must be
    /// tracked explicitly rather than read off `θ`'s support.
    explored: Vec<bool>,
    explored_count: usize,
    /// Cached `(action, value)` of the smallest explicit `θ` entry,
    /// maintained incrementally across updates.
    min_entry: Option<(usize, f64)>,
    /// Frozen CSR snapshot of `delta_b` for read-heavy evaluation
    /// phases. `Some` between [`SparseLspi::freeze`] and the next
    /// [`SparseLspi::thaw`] or [`SparseLspi::update`]; derived state,
    /// never serialized.
    frozen: Option<CsrMatrix>,
    // Reusable scratch for the Sherman–Morrison step; never serialized.
    scratch_u: SparseVec,
    scratch_v: SparseVec,
    scratch_bu: SparseVec,
    scratch_vb: SparseVec,
    /// Dense shadow of `T = δ·I + Σ u·vᵀ`, the operator whose inverse
    /// `B` purports to be. Maintained only under `check-invariants` and
    /// only when `dim ≤ VERIFY_MAX_DIM`; `None` otherwise — and after
    /// deserialization, which cannot reconstruct `T` without replaying
    /// the whole update stream.
    #[cfg(feature = "check-invariants")]
    shadow_t: Option<DenseMatrix>,
}

impl SparseLspi {
    /// Creates the initial state `B₀ = (1/δ)·I`, `z₀ = 0`, `θ₀ = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` or `gamma ∉ [0, 1)`.
    pub fn new(dim: usize, delta: f64, gamma: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        Self {
            dim,
            inv_delta: 1.0 / delta,
            gamma,
            delta_b: DokMatrix::zeros(dim),
            z: SparseVec::zeros(dim),
            theta: SparseVec::zeros(dim),
            updates: 0,
            skipped_singular: 0,
            explored: vec![false; dim], // lint: allow(alloc) — construction
            explored_count: 0,
            min_entry: None,
            frozen: None,
            scratch_u: SparseVec::zeros(dim),
            scratch_v: SparseVec::zeros(dim),
            scratch_bu: SparseVec::zeros(dim),
            scratch_vb: SparseVec::zeros(dim),
            #[cfg(feature = "check-invariants")]
            shadow_t: Self::shadow_for(dim, delta),
        }
    }

    /// Builds the dense shadow operator `T₀ = δ·I` when the dimension
    /// is small enough to afford `O(dim²)` verification state.
    #[cfg(feature = "check-invariants")]
    fn shadow_for(dim: usize, delta: f64) -> Option<DenseMatrix> {
        if dim > VERIFY_MAX_DIM {
            return None;
        }
        let mut t = DenseMatrix::zeros(dim, dim);
        for i in 0..dim {
            t.set(i, i, delta);
        }
        Some(t)
    }

    /// The projected dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The discount factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The approximate action value `Q(s, a) = θᵀ φ_a = θ[a]`.
    ///
    /// # Panics
    ///
    /// Panics if `action >= dim()`.
    pub fn q(&self, action: usize) -> f64 {
        self.theta.get(action)
    }

    /// Explicit non-zero entries stored in the `Δ` part of `B` — the
    /// Figure 7 Q-table growth metric.
    pub fn explicit_nnz(&self) -> usize {
        self.delta_b.nnz()
    }

    /// Non-zero entries of `θ` (distinct actions carrying value).
    pub fn theta_nnz(&self) -> usize {
        self.theta.nnz()
    }

    /// Successful Sherman–Morrison updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Updates skipped because the rank-1 denominator vanished.
    pub fn skipped_singular(&self) -> usize {
        self.skipped_singular
    }

    /// Iterates over the explicit entries of `θ` as `(action, q)` pairs.
    pub fn theta_entries(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.theta.iter()
    }

    /// The smallest explicit `θ` entry as `(action, value)`, if any.
    ///
    /// Served from the incrementally maintained cache — `O(1)`.
    pub fn min_theta_entry(&self) -> Option<(usize, f64)> {
        self.min_entry
    }

    /// Distinct actions that have received at least one successful
    /// update.
    pub fn explored_count(&self) -> usize {
        self.explored_count
    }

    /// Minimum Q over the whole action space.
    ///
    /// Actions without an explicit `θ` entry have `Q = 0` exactly, so
    /// the minimum is the smaller of 0 (when any such action exists)
    /// and the cached smallest explicit entry — `O(1)`, no scan.
    pub fn min_q(&self) -> f64 {
        let explicit_min = self.min_entry.map_or(f64::INFINITY, |(_, v)| v);
        if self.theta.nnz() < self.dim {
            explicit_min.min(0.0)
        } else if explicit_min.is_finite() {
            explicit_min
        } else {
            0.0
        }
    }

    /// Whether the action has never received a successful update.
    ///
    /// Tracked explicitly: an explored action whose `θ` entry cancels
    /// back to exactly 0.0 (or whose first observed cost was 0) still
    /// counts as explored, even though its Q reads 0.
    ///
    /// # Panics
    ///
    /// Panics if `action >= dim()`.
    pub fn is_unexplored(&self, action: usize) -> bool {
        assert!(action < self.dim, "action index {action} out of range");
        // Contract: explored is dim-long from construction on.
        debug_assert!(action < self.explored.len());
        !self.explored[action]
    }

    /// Applies one learning step: the agent took `a_prev`, observed
    /// per-stage cost `cost`, and its current policy would next take
    /// `a_next` (the `φ_{π_t(s_{t+1})}` of Eq. 10).
    ///
    /// Returns `false` when the Sherman–Morrison denominator vanished
    /// and the update was skipped (the corresponding `T` update would
    /// have made it singular — vanishingly rare with γ < 1). Skipped
    /// updates do not mark `a_prev` explored.
    ///
    /// # Panics
    ///
    /// Panics if either action index is out of range.
    // lint: depth_budget(6)
    pub fn update(&mut self, a_prev: usize, a_next: usize, cost: f64) -> bool {
        assert!(a_prev < self.dim, "a_prev out of range");
        assert!(a_next < self.dim, "a_next out of range");

        // A learning step invalidates any frozen snapshot: thaw
        // transparently and continue through the mutable DOK backend.
        self.frozen = None;

        let den = self.sherman_products(a_prev, a_next);
        if den.abs() < 1e-12 {
            self.skipped_singular += 1;
            return false;
        }

        // θ' = θ + [ −(vb·z)/den + C·(1 − (vb·u)/den) ]·bu.
        let vb_z = self.scratch_vb.dot(&self.z);
        let vb_u = self.scratch_vb.dot(&self.scratch_u);
        let coeff = -(vb_z / den) + cost * (1.0 - vb_u / den);
        if coeff != 0.0 {
            self.theta.add_scaled_assign(&self.scratch_bu, coeff);
            self.refresh_theta_min();
        }

        // B' = B − bu·vbᵀ/den (the identity part is untouched; the whole
        // correction accumulates in Δ).
        self.delta_b
            .add_outer_product(&self.scratch_bu, &self.scratch_vb, -1.0 / den);

        // z' = z + C·φ_{a_prev}.
        self.z.add_at(a_prev, cost);

        // Contract: explored is dim-long and a_prev < dim (asserted at
        // entry alongside a_next).
        debug_assert!(a_prev < self.explored.len());
        if !self.explored[a_prev] {
            self.explored[a_prev] = true;
            self.explored_count += 1;
        }

        self.updates += 1;
        #[cfg(feature = "check-invariants")]
        self.verify_update(a_prev, a_next);
        true
    }

    /// Builds `u = φ_{a_prev}`, `v = u − γ·φ_{a_next}` in scratch and
    /// computes `bu = B·u`, `vb = Bᵀ·v` through the active backend — the
    /// frozen CSR snapshot when present, the mutable DOK otherwise —
    /// returning the Sherman–Morrison denominator `1 + v·bu`.
    ///
    /// Both backends walk entries in identical order, so the scratch
    /// products are bitwise equal whichever is active.
    fn sherman_products(&mut self, a_prev: usize, a_next: usize) -> f64 {
        // Basis vectors built in scratch so the steady-state step never
        // touches the allocator.
        self.scratch_u.clear();
        self.scratch_u.set(a_prev, 1.0);
        self.scratch_v.clear();
        self.scratch_v.set(a_prev, 1.0);
        self.scratch_v.add_at(a_next, -self.gamma);

        // bu = B·u = u/δ + Δ·u ; vb = Bᵀ·v = v/δ + Δᵀ·v.
        let op: &dyn SparseMatVec = match self.frozen.as_ref() {
            Some(csr) => csr,
            None => &self.delta_b,
        };
        op.mul_sparse_vec_into(&self.scratch_u, &mut self.scratch_bu);
        self.scratch_bu
            .add_scaled_assign(&self.scratch_u, self.inv_delta);
        op.mul_sparse_vec_left_into(&self.scratch_v, &mut self.scratch_vb);
        self.scratch_vb
            .add_scaled_assign(&self.scratch_v, self.inv_delta);

        1.0 + self.scratch_v.dot(&self.scratch_bu)
    }

    /// Freezes the sparse correction `Δ` into a contiguous CSR snapshot
    /// so read-only critics ([`SparseLspi::preview_update`]) run on flat
    /// arrays instead of the per-row/per-column DOK adjacency.
    ///
    /// Idempotent; the snapshot is dropped by [`SparseLspi::thaw`] or
    /// transparently by the next [`SparseLspi::update`]. Under the
    /// `check-invariants` feature every freeze asserts that the snapshot
    /// stores the same entries as the DOK and that both backends produce
    /// bitwise-identical products along every basis direction.
    pub fn freeze(&mut self) {
        if self.frozen.is_some() {
            return;
        }
        let csr = self.delta_b.to_csr();
        #[cfg(feature = "check-invariants")]
        self.verify_freeze(&csr);
        self.frozen = Some(csr);
    }

    /// Drops the frozen CSR snapshot, returning products to the mutable
    /// DOK backend. Idempotent.
    pub fn thaw(&mut self) {
        self.frozen = None;
    }

    /// Whether products are currently routed through a frozen CSR
    /// snapshot.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Asserts CSR ≡ DOK after a freeze: identical stored entries and
    /// bitwise-identical `M·e_a` / `e_aᵀ·M` products for every basis
    /// direction `a` (which spans both product kernels and, since every
    /// multi-entry product is a fixed-order sum of these walks, pins the
    /// backends to the same summation order).
    #[cfg(feature = "check-invariants")]
    fn verify_freeze(&self, csr: &CsrMatrix) {
        let entries = csr.check_matches_dok(&self.delta_b);
        assert!(
            entries.is_ok(),
            "CSR snapshot diverges from DOK after freeze: {entries:?}"
        );
        let mut dok_out = SparseVec::zeros(self.dim);
        let mut csr_out = SparseVec::zeros(self.dim);
        for a in 0..self.dim {
            let e = SparseVec::basis(self.dim, a);
            self.delta_b.mul_sparse_vec_into(&e, &mut dok_out);
            csr.mul_sparse_vec_into(&e, &mut csr_out);
            assert_eq!(dok_out, csr_out, "CSR Δ·e_{a} diverges from DOK");
            self.delta_b.mul_sparse_vec_left_into(&e, &mut dok_out);
            csr.mul_sparse_vec_left_into(&e, &mut csr_out);
            assert_eq!(dok_out, csr_out, "CSR e_{a}ᵀ·Δ diverges from DOK");
        }
    }

    /// Computes the Sherman–Morrison step for `(a_prev, a_next, cost)`
    /// *without applying it*, returning the coefficient the step would
    /// multiply `B·u` by when updating `θ` — a per-sample Bellman
    /// correction magnitude.
    ///
    /// This is the read-only critic evaluation phases run in place of
    /// [`SparseLspi::update`]: it performs the same `B·u` / `Bᵀ·v`
    /// products (routed through the frozen CSR snapshot when one is
    /// active) but leaves `B`, `z`, `θ` and all counters untouched.
    /// Returns `None` when the denominator vanishes, mirroring the
    /// skipped-update case.
    ///
    /// # Panics
    ///
    /// Panics if either action index is out of range.
    // lint: depth_budget(6)
    pub fn preview_update(&mut self, a_prev: usize, a_next: usize, cost: f64) -> Option<f64> {
        assert!(a_prev < self.dim, "a_prev out of range");
        assert!(a_next < self.dim, "a_next out of range");

        let den = self.sherman_products(a_prev, a_next);
        if den.abs() < 1e-12 {
            return None;
        }
        let vb_z = self.scratch_vb.dot(&self.z);
        let vb_u = self.scratch_vb.dot(&self.scratch_u);
        Some(-(vb_z / den) + cost * (1.0 - vb_u / den))
    }

    /// Mirrors the rank-1 operator update on the dense shadow `T` and,
    /// every [`VERIFY_EVERY`]-th successful update, asserts the three
    /// runtime invariants: the DOK dual-adjacency structure of `Δ`, the
    /// inverse contract `‖B·T − I‖∞ < ε`, and agreement between the
    /// cached minimum-`θ` entry and a full scan of `θ`'s support.
    #[cfg(feature = "check-invariants")]
    fn verify_update(&mut self, a_prev: usize, a_next: usize) {
        if let Some(t) = self.shadow_t.as_mut() {
            // T ← T + u·vᵀ with u = e_{a_prev}, v = e_{a_prev} − γ·e_{a_next}.
            // When a_prev == a_next the two writes chain, giving 1 − γ.
            t.set(a_prev, a_prev, t.get(a_prev, a_prev) + 1.0);
            t.set(a_prev, a_next, t.get(a_prev, a_next) - self.gamma);
        }
        if self.updates % VERIFY_EVERY != 0 {
            return;
        }
        let structure = self.delta_b.check_consistency();
        assert!(
            structure.is_ok(),
            "DokMatrix invariant violated after update {}: {structure:?}",
            self.updates
        );
        if let Some(t) = self.shadow_t.as_ref() {
            // Densify B = (1/δ)·I + Δ and check it still inverts T.
            let mut b = self.delta_b.to_dense();
            for i in 0..self.dim {
                b.set(i, i, b.get(i, i) + self.inv_delta);
            }
            let residual = megh_linalg::identity_residual(&b, t);
            assert!(
                residual < VERIFY_TOL,
                "inverse drifted: ‖B·T − I‖∞ = {residual:e} after update {}",
                self.updates
            );
        }
        let mut scanned: Option<f64> = None;
        for (_, v) in self.theta.iter() {
            if scanned.is_none_or(|best| v < best) {
                scanned = Some(v);
            }
        }
        assert_eq!(
            self.min_entry.map(|(_, v)| v),
            scanned,
            "cached min-θ disagrees with a full scan after update {}",
            self.updates
        );
    }

    /// Maintains the cached minimum after `θ` changed on the support of
    /// `scratch_bu`. A full `O(nnz(θ))` rescan happens only when the
    /// cached argmin's own entry rose or vanished; otherwise the cost is
    /// `O(nnz(bu))` lookups.
    fn refresh_theta_min(&mut self) {
        let invalidated = match self.min_entry {
            Some((idx, val)) if self.scratch_bu.get(idx) != 0.0 => {
                let now = self.theta.get(idx);
                if now == 0.0 || now > val {
                    true
                } else {
                    self.min_entry = Some((idx, now));
                    false
                }
            }
            _ => false,
        };
        if invalidated {
            self.rescan_theta_min();
            return;
        }
        // A touched entry may have dropped below the cached minimum.
        for (i, _) in self.scratch_bu.iter() {
            let v = self.theta.get(i);
            if v != 0.0 && self.min_entry.is_none_or(|(_, bv)| v < bv) {
                self.min_entry = Some((i, v));
            }
        }
    }

    fn rescan_theta_min(&mut self) {
        self.min_entry = None;
        for (i, v) in self.theta.iter() {
            if self.min_entry.is_none_or(|(_, bv)| v < bv) {
                self.min_entry = Some((i, v));
            }
        }
    }

    /// Recomputes `θ = B·z` from scratch (test oracle; `O(nnz)` but not
    /// incremental).
    pub fn recompute_theta(&self) -> SparseVec {
        let mut theta = self.delta_b.mul_sparse_vec(&self.z);
        theta = theta.add_scaled(&self.z, self.inv_delta);
        theta
    }
}

/// Serialized form: semantic state only. Scratch buffers and the cached
/// minimum are derived, so they are rebuilt on restore; exploration
/// flags are stored as the sorted list of explored action indices.
#[derive(Serialize, Deserialize)]
struct SparseLspiRepr {
    dim: usize,
    inv_delta: f64,
    gamma: f64,
    delta_b: DokMatrix,
    z: SparseVec,
    theta: SparseVec,
    updates: usize,
    skipped_singular: usize,
    explored: Vec<usize>,
}

impl Serialize for SparseLspi {
    // Serialization is an explicit cold path (persistence, not decide);
    // the unknown-receiver fallback also aliases the inner
    // `.serialize(serializer)` call to every workspace `serialize`,
    // including megh-serve's allocating wire impls, so the whole
    // subtree is vouched rather than chased.
    // lint: allow(transitive_alloc)
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Serialization is an explicit cold path (persistence, not decide).
        let explored = self
            .explored
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e)
            .map(|(a, _)| a)
            .collect(); // lint: allow(alloc)
        SparseLspiRepr {
            dim: self.dim,
            inv_delta: self.inv_delta,
            gamma: self.gamma,
            delta_b: self.delta_b.clone(), // lint: allow(alloc)
            z: self.z.clone(),             // lint: allow(alloc)
            theta: self.theta.clone(),     // lint: allow(alloc)
            updates: self.updates,
            skipped_singular: self.skipped_singular,
            explored,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SparseLspi {
    // Cold path, same aliasing as `serialize` above.
    // lint: allow(transitive_alloc)
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = SparseLspiRepr::deserialize(deserializer)?;
        let mut explored = vec![false; repr.dim]; // lint: allow(alloc) — deserialization
        for &a in &repr.explored {
            // explored was sized to repr.dim just above.
            if a >= explored.len() {
                // lint: allow(alloc)
                return Err(serde::de::Error::custom(format!(
                    "explored action {a} outside dim {}",
                    repr.dim
                )));
            }
            explored[a] = true;
        }
        let explored_count = explored.iter().filter(|&&e| e).count();
        let mut lspi = SparseLspi {
            dim: repr.dim,
            inv_delta: repr.inv_delta,
            gamma: repr.gamma,
            delta_b: repr.delta_b,
            z: repr.z,
            theta: repr.theta,
            updates: repr.updates,
            skipped_singular: repr.skipped_singular,
            explored,
            explored_count,
            min_entry: None,
            frozen: None,
            scratch_u: SparseVec::zeros(repr.dim),
            scratch_v: SparseVec::zeros(repr.dim),
            scratch_bu: SparseVec::zeros(repr.dim),
            scratch_vb: SparseVec::zeros(repr.dim),
            #[cfg(feature = "check-invariants")]
            shadow_t: None,
        };
        lspi.rescan_theta_min();
        Ok(lspi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_theta_consistent(lspi: &SparseLspi) {
        let want = lspi.recompute_theta();
        for a in 0..lspi.dim() {
            assert!(
                (lspi.q(a) - want.get(a)).abs() < 1e-9,
                "theta[{a}] = {} but recompute gives {}",
                lspi.q(a),
                want.get(a)
            );
        }
    }

    fn naive_min_entry(lspi: &SparseLspi) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (a, v) in lspi.theta_entries() {
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((a, v));
            }
        }
        best
    }

    #[test]
    fn initial_state_is_zero() {
        let lspi = SparseLspi::new(10, 10.0, 0.5);
        assert_eq!(lspi.explicit_nnz(), 0);
        assert_eq!(lspi.theta_nnz(), 0);
        assert_eq!(lspi.min_q(), 0.0);
        assert_eq!(lspi.explored_count(), 0);
        assert_eq!(lspi.min_theta_entry(), None);
        for a in 0..10 {
            assert_eq!(lspi.q(a), 0.0);
            assert!(lspi.is_unexplored(a));
        }
    }

    #[test]
    fn single_update_raises_q_of_taken_action() {
        let mut lspi = SparseLspi::new(4, 4.0, 0.5);
        assert!(lspi.update(2, 0, 3.0));
        assert!(lspi.q(2) > 0.0, "q(2) = {}", lspi.q(2));
        assert_theta_consistent(&lspi);
    }

    #[test]
    fn incremental_theta_matches_recompute_over_many_updates() {
        let mut lspi = SparseLspi::new(8, 8.0, 0.5);
        let steps = [
            (0usize, 1usize, 2.0),
            (1, 3, 1.5),
            (3, 3, 0.7),
            (2, 0, 4.0),
            (0, 2, 0.9),
            (5, 7, 2.2),
            (7, 5, 1.1),
            (3, 1, 0.3),
        ];
        for &(a, a2, c) in &steps {
            lspi.update(a, a2, c);
            assert_theta_consistent(&lspi);
        }
        assert_eq!(lspi.updates(), steps.len());
    }

    #[test]
    fn cached_min_matches_naive_scan_over_many_updates() {
        // Mixed positive and negative costs exercise both the cheap
        // touched-entry path and the full-rescan path (the cached
        // argmin's own entry rising) of the cache maintenance.
        let mut lspi = SparseLspi::new(12, 12.0, 0.5);
        let costs = [3.0, -2.0, 5.0, -4.5, 1.0, -1.0, 7.0, -6.0, 0.5, 2.5];
        for (t, &c) in costs.iter().cycle().take(60).enumerate() {
            lspi.update(t % 12, (t * 5 + 2) % 12, c);
            assert_eq!(
                lspi.min_theta_entry().map(|(_, v)| v),
                naive_min_entry(&lspi).map(|(_, v)| v),
                "cached min diverged after update {t}"
            );
        }
    }

    #[test]
    fn qtable_growth_is_bounded_by_updates() {
        // Each update adds O(1) rows/columns of fill-in: the Fig 7
        // "linear growth in time" property.
        let mut lspi = SparseLspi::new(100, 100.0, 0.5);
        let mut prev_nnz = 0;
        for t in 0..50 {
            lspi.update(t % 100, (t * 7 + 3) % 100, 1.0);
            let nnz = lspi.explicit_nnz();
            assert!(nnz >= prev_nnz, "nnz must be monotone");
            prev_nnz = nnz;
        }
        // Far below dense d² = 10_000.
        assert!(prev_nnz < 1000, "nnz = {prev_nnz} — fill-in explosion");
    }

    #[test]
    fn min_q_accounts_for_unexplored_zero() {
        let mut lspi = SparseLspi::new(5, 5.0, 0.5);
        lspi.update(0, 1, 10.0);
        // Explored action has positive Q; the other 4 sit at 0.
        assert_eq!(lspi.min_q(), 0.0);
        assert!(!lspi.is_unexplored(0));
        assert!(lspi.is_unexplored(4));
    }

    #[test]
    fn zero_cost_update_still_marks_action_explored() {
        // Regression: a zero observed cost with `z` still empty leaves
        // θ[a] at exactly 0.0; the old support-based check misread the
        // taken action as unexplored forever.
        let mut lspi = SparseLspi::new(8, 8.0, 0.5);
        assert!(lspi.update(3, 3, 0.0));
        assert_eq!(lspi.q(3), 0.0);
        assert!(
            !lspi.is_unexplored(3),
            "action 3 was taken and must count as explored"
        );
        assert_eq!(lspi.explored_count(), 1);
        assert!(lspi.is_unexplored(4));
    }

    #[test]
    fn theta_entry_cancelled_to_exact_zero_stays_explored() {
        // Regression: drive an explored action's θ entry back to exactly
        // 0.0 through the public update path. q(0) after one more update
        // is affine in that update's cost, so solve for the cancelling
        // cost and walk the neighbouring float values until the entry
        // vanishes from θ's support.
        let mut base = SparseLspi::new(3, 1.0, 0.0);
        base.update(0, 0, 2.0);
        assert!(base.q(0) > 0.0);
        let q_after = |cost: f64| {
            let mut probe = base.clone();
            probe.update(0, 0, cost);
            probe.q(0)
        };
        let at_zero = q_after(0.0);
        let slope = q_after(1.0) - at_zero;
        let guess = -at_zero / slope;
        let mut cancelling = None;
        for offset in -64i64..=64 {
            let cost = f64::from_bits((guess.to_bits() as i64 + offset) as u64);
            if q_after(cost) == 0.0 {
                cancelling = Some(cost);
                break;
            }
        }
        let cost = cancelling.expect("an exactly-cancelling cost exists near the affine root");
        let mut lspi = base.clone();
        lspi.update(0, 0, cost);
        assert_eq!(lspi.q(0), 0.0);
        assert_eq!(lspi.theta_nnz(), 0, "entry must be gone from θ's support");
        assert!(
            !lspi.is_unexplored(0),
            "cancelled-to-zero action must stay explored"
        );
        assert_eq!(lspi.min_q(), 0.0);
    }

    #[test]
    fn exploration_flags_survive_serde_roundtrip() {
        let mut lspi = SparseLspi::new(6, 6.0, 0.5);
        lspi.update(2, 2, 0.0); // explored, θ[2] stays exactly 0
        lspi.update(4, 1, 3.0);
        let json = serde_json::to_string(&lspi).unwrap();
        let back: SparseLspi = serde_json::from_str(&json).unwrap();
        assert!(!back.is_unexplored(2));
        assert!(!back.is_unexplored(4));
        assert!(back.is_unexplored(0));
        assert_eq!(back.explored_count(), 2);
        assert_eq!(back.min_theta_entry(), lspi.min_theta_entry());
        for a in 0..6 {
            assert_eq!(back.q(a), lspi.q(a));
        }
    }

    #[test]
    fn serde_rejects_out_of_range_explored_action() {
        let mut lspi = SparseLspi::new(2, 2.0, 0.5);
        lspi.update(1, 0, 1.0);
        let json = serde_json::to_string(&lspi).unwrap();
        let corrupted = json.replace("\"explored\":[1]", "\"explored\":[9]");
        assert_ne!(json, corrupted, "fixture must contain the explored list");
        assert!(serde_json::from_str::<SparseLspi>(&corrupted).is_err());
    }

    #[test]
    fn repeated_action_accumulates_cost() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        lspi.update(1, 1, 1.0);
        let q1 = lspi.q(1);
        lspi.update(1, 1, 1.0);
        let q2 = lspi.q(1);
        assert!(q2 > q1, "repeated cost must accumulate: {q1} -> {q2}");
        assert_theta_consistent(&lspi);
    }

    #[test]
    fn gamma_zero_is_pure_averaging() {
        // With γ = 0 the operator update is T += u·uᵀ — still valid.
        let mut lspi = SparseLspi::new(3, 3.0, 0.0);
        assert!(lspi.update(0, 2, 2.0));
        assert_theta_consistent(&lspi);
    }

    fn learned_lspi() -> SparseLspi {
        let mut lspi = SparseLspi::new(8, 8.0, 0.5);
        let steps = [
            (0usize, 1usize, 2.0),
            (1, 3, 1.5),
            (3, 3, 0.7),
            (2, 0, 4.0),
            (0, 2, 0.9),
            (5, 7, 2.2),
        ];
        for &(a, a2, c) in &steps {
            lspi.update(a, a2, c);
        }
        lspi
    }

    #[test]
    fn freeze_is_idempotent_and_thaw_reverses_it() {
        let mut lspi = learned_lspi();
        assert!(!lspi.is_frozen());
        lspi.freeze();
        assert!(lspi.is_frozen());
        lspi.freeze(); // no-op
        assert!(lspi.is_frozen());
        lspi.thaw();
        assert!(!lspi.is_frozen());
        lspi.thaw(); // no-op
        assert!(!lspi.is_frozen());
    }

    #[test]
    fn frozen_preview_matches_dok_preview_bitwise() {
        let dok = learned_lspi();
        let mut csr = dok.clone();
        csr.freeze();
        let mut dok = dok;
        for (a_prev, a_next, cost) in [(0usize, 1usize, 1.0), (3, 2, -0.5), (6, 6, 0.0)] {
            let want = dok.preview_update(a_prev, a_next, cost);
            let got = csr.preview_update(a_prev, a_next, cost);
            // Identical summation order in both backends ⇒ identical bits.
            assert_eq!(want, got, "preview({a_prev}, {a_next}, {cost}) diverged");
        }
        assert!(csr.is_frozen(), "preview must not thaw");
    }

    #[test]
    fn preview_update_leaves_state_untouched() {
        let mut lspi = learned_lspi();
        lspi.freeze();
        let before = serde_json::to_string(&lspi).unwrap();
        let coeff = lspi.preview_update(1, 4, 3.0);
        assert!(coeff.is_some());
        assert_eq!(lspi.updates(), 6);
        assert_eq!(serde_json::to_string(&lspi).unwrap(), before);
    }

    #[test]
    fn update_thaws_transparently_and_matches_unfrozen_twin() {
        let mut frozen = learned_lspi();
        let mut plain = learned_lspi();
        frozen.freeze();
        assert!(frozen.update(4, 0, 1.25));
        assert!(plain.update(4, 0, 1.25));
        assert!(!frozen.is_frozen(), "update must drop the snapshot");
        for a in 0..8 {
            assert_eq!(frozen.q(a), plain.q(a), "q({a}) diverged after thaw");
        }
        assert_eq!(frozen.explicit_nnz(), plain.explicit_nnz());
    }

    #[test]
    fn frozen_state_is_not_serialized() {
        let mut lspi = learned_lspi();
        lspi.freeze();
        let json = serde_json::to_string(&lspi).unwrap();
        let back: SparseLspi = serde_json::from_str(&json).unwrap();
        assert!(!back.is_frozen(), "snapshot is derived state");
        for a in 0..8 {
            assert_eq!(back.q(a), lspi.q(a));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn preview_update_rejects_bad_action() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        let _ = lspi.preview_update(0, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_bad_action() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        lspi.update(3, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn new_rejects_bad_delta() {
        let _ = SparseLspi::new(3, 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn new_rejects_bad_gamma() {
        let _ = SparseLspi::new(3, 3.0, 1.0);
    }
}
