//! The sparse LSPI state: `B = T⁻¹`, the cost accumulator `z`, and the
//! projection vector `θ = B·z`, all maintained incrementally.
//!
//! §5.2's complexity management is implemented literally here:
//!
//! * `B` is represented as `(1/δ)·I + Δ` where `Δ` is a sparse DOK
//!   matrix, initially *empty*. Memory starts at `O(1)` explicit storage
//!   (the paper's `O(d)` counts the implicit diagonal) and grows only as
//!   actions are explored. [`SparseLspi::explicit_nnz`] — the number of
//!   stored entries of `Δ` — is the Figure 7 "Q-table non-zeros" metric.
//! * Each update applies the Sherman–Morrison formula (Eq. 11) with
//!   `u = φ_{a_t}`, `v = φ_{a_t} − γ·φ_{a_{t+1}}`, touching only the
//!   occupied rows/columns — `O(#migrations)` work per step.
//! * `θ` is updated in closed form rather than recomputed: with
//!   `bu = B·u`, `vb = Bᵀ·v`, `den = 1 + v·bu`,
//!   `θ' = θ + [ −(vb·z)/den + C·(1 − (vb·u)/den) ]·bu`,
//!   which follows from `θ' = B'(z + C·u)` and the rank-1 structure.

use megh_linalg::{DokMatrix, SparseVec};
use serde::{Deserialize, Serialize};

/// Incremental least-squares policy-iteration state over `d` actions.
///
/// # Examples
///
/// ```
/// use megh_core::SparseLspi;
///
/// let mut lspi = SparseLspi::new(6, 6.0, 0.5);
/// assert_eq!(lspi.q(3), 0.0);
/// lspi.update(3, 1, 2.0);
/// assert!(lspi.q(3) > 0.0); // action 3 now carries observed cost
/// assert_eq!(lspi.updates(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseLspi {
    dim: usize,
    inv_delta: f64,
    gamma: f64,
    /// Sparse correction: `B = inv_delta·I + delta_b`.
    delta_b: DokMatrix,
    z: SparseVec,
    theta: SparseVec,
    updates: usize,
    skipped_singular: usize,
}

impl SparseLspi {
    /// Creates the initial state `B₀ = (1/δ)·I`, `z₀ = 0`, `θ₀ = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` or `gamma ∉ [0, 1)`.
    pub fn new(dim: usize, delta: f64, gamma: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        Self {
            dim,
            inv_delta: 1.0 / delta,
            gamma,
            delta_b: DokMatrix::zeros(dim),
            z: SparseVec::zeros(dim),
            theta: SparseVec::zeros(dim),
            updates: 0,
            skipped_singular: 0,
        }
    }

    /// The projected dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The discount factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The approximate action value `Q(s, a) = θᵀ φ_a = θ[a]`.
    ///
    /// # Panics
    ///
    /// Panics if `action >= dim()`.
    pub fn q(&self, action: usize) -> f64 {
        self.theta.get(action)
    }

    /// Explicit non-zero entries stored in the `Δ` part of `B` — the
    /// Figure 7 Q-table growth metric.
    pub fn explicit_nnz(&self) -> usize {
        self.delta_b.nnz()
    }

    /// Non-zero entries of `θ` (distinct actions carrying value).
    pub fn theta_nnz(&self) -> usize {
        self.theta.nnz()
    }

    /// Successful Sherman–Morrison updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Updates skipped because the rank-1 denominator vanished.
    pub fn skipped_singular(&self) -> usize {
        self.skipped_singular
    }

    /// Iterates over the explicit entries of `θ` as `(action, q)` pairs.
    pub fn theta_entries(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.theta.iter()
    }

    /// Minimum Q over the whole action space.
    ///
    /// Unexplored actions have `Q = 0` exactly, so the minimum is the
    /// smaller of 0 (when any action is unexplored) and the smallest
    /// explicit entry.
    pub fn min_q(&self) -> f64 {
        let explicit_min = self
            .theta
            .iter()
            .map(|(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        if self.theta.nnz() < self.dim {
            explicit_min.min(0.0)
        } else if explicit_min.is_finite() {
            explicit_min
        } else {
            0.0
        }
    }

    /// Whether the action has no explicit `θ` entry (its Q is exactly 0
    /// because it was never reinforced).
    pub fn is_unexplored(&self, action: usize) -> bool {
        self.theta.get(action) == 0.0
    }

    /// Applies one learning step: the agent took `a_prev`, observed
    /// per-stage cost `cost`, and its current policy would next take
    /// `a_next` (the `φ_{π_t(s_{t+1})}` of Eq. 10).
    ///
    /// Returns `false` when the Sherman–Morrison denominator vanished
    /// and the update was skipped (the corresponding `T` update would
    /// have made it singular — vanishingly rare with γ < 1).
    ///
    /// # Panics
    ///
    /// Panics if either action index is out of range.
    pub fn update(&mut self, a_prev: usize, a_next: usize, cost: f64) -> bool {
        assert!(a_prev < self.dim, "a_prev out of range");
        assert!(a_next < self.dim, "a_next out of range");
        let u = SparseVec::basis(self.dim, a_prev);
        let v = u.add_scaled(&SparseVec::basis(self.dim, a_next), -self.gamma);

        // bu = B·u = u/δ + Δ·u ; vb = Bᵀ·v = v/δ + Δᵀ·v.
        let mut bu = self.delta_b.mul_sparse_vec(&u);
        bu = bu.add_scaled(&u, self.inv_delta);
        let mut vb = self.delta_b.mul_sparse_vec_left(&v);
        vb = vb.add_scaled(&v, self.inv_delta);

        let den = 1.0 + v.dot(&bu);
        if den.abs() < 1e-12 {
            self.skipped_singular += 1;
            return false;
        }

        // θ' = θ + [ −(vb·z)/den + C·(1 − (vb·u)/den) ]·bu.
        let vb_z = vb.dot(&self.z);
        let vb_u = vb.dot(&u);
        let coeff = -(vb_z / den) + cost * (1.0 - vb_u / den);
        self.theta = self.theta.add_scaled(&bu, coeff);

        // B' = B − bu·vbᵀ/den (the identity part is untouched; the whole
        // correction accumulates in Δ).
        self.delta_b.add_outer_product(&bu, &vb, -1.0 / den);

        // z' = z + C·φ_{a_prev}.
        self.z.add_at(a_prev, cost);

        self.updates += 1;
        true
    }

    /// Recomputes `θ = B·z` from scratch (test oracle; `O(nnz)` but not
    /// incremental).
    pub fn recompute_theta(&self) -> SparseVec {
        let mut theta = self.delta_b.mul_sparse_vec(&self.z);
        theta = theta.add_scaled(&self.z, self.inv_delta);
        theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_theta_consistent(lspi: &SparseLspi) {
        let want = lspi.recompute_theta();
        for a in 0..lspi.dim() {
            assert!(
                (lspi.q(a) - want.get(a)).abs() < 1e-9,
                "theta[{a}] = {} but recompute gives {}",
                lspi.q(a),
                want.get(a)
            );
        }
    }

    #[test]
    fn initial_state_is_zero() {
        let lspi = SparseLspi::new(10, 10.0, 0.5);
        assert_eq!(lspi.explicit_nnz(), 0);
        assert_eq!(lspi.theta_nnz(), 0);
        assert_eq!(lspi.min_q(), 0.0);
        for a in 0..10 {
            assert_eq!(lspi.q(a), 0.0);
            assert!(lspi.is_unexplored(a));
        }
    }

    #[test]
    fn single_update_raises_q_of_taken_action() {
        let mut lspi = SparseLspi::new(4, 4.0, 0.5);
        assert!(lspi.update(2, 0, 3.0));
        assert!(lspi.q(2) > 0.0, "q(2) = {}", lspi.q(2));
        assert_theta_consistent(&lspi);
    }

    #[test]
    fn incremental_theta_matches_recompute_over_many_updates() {
        let mut lspi = SparseLspi::new(8, 8.0, 0.5);
        let steps = [
            (0usize, 1usize, 2.0),
            (1, 3, 1.5),
            (3, 3, 0.7),
            (2, 0, 4.0),
            (0, 2, 0.9),
            (5, 7, 2.2),
            (7, 5, 1.1),
            (3, 1, 0.3),
        ];
        for &(a, a2, c) in &steps {
            lspi.update(a, a2, c);
            assert_theta_consistent(&lspi);
        }
        assert_eq!(lspi.updates(), steps.len());
    }

    #[test]
    fn qtable_growth_is_bounded_by_updates() {
        // Each update adds O(1) rows/columns of fill-in: the Fig 7
        // "linear growth in time" property.
        let mut lspi = SparseLspi::new(100, 100.0, 0.5);
        let mut prev_nnz = 0;
        for t in 0..50 {
            lspi.update(t % 100, (t * 7 + 3) % 100, 1.0);
            let nnz = lspi.explicit_nnz();
            assert!(nnz >= prev_nnz, "nnz must be monotone");
            prev_nnz = nnz;
        }
        // Far below dense d² = 10_000.
        assert!(prev_nnz < 1000, "nnz = {prev_nnz} — fill-in explosion");
    }

    #[test]
    fn min_q_accounts_for_unexplored_zero() {
        let mut lspi = SparseLspi::new(5, 5.0, 0.5);
        lspi.update(0, 1, 10.0);
        // Explored action has positive Q; the other 4 sit at 0.
        assert_eq!(lspi.min_q(), 0.0);
        assert!(!lspi.is_unexplored(0));
        assert!(lspi.is_unexplored(4));
    }

    #[test]
    fn repeated_action_accumulates_cost() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        lspi.update(1, 1, 1.0);
        let q1 = lspi.q(1);
        lspi.update(1, 1, 1.0);
        let q2 = lspi.q(1);
        assert!(q2 > q1, "repeated cost must accumulate: {q1} -> {q2}");
        assert_theta_consistent(&lspi);
    }

    #[test]
    fn gamma_zero_is_pure_averaging() {
        // With γ = 0 the operator update is T += u·uᵀ — still valid.
        let mut lspi = SparseLspi::new(3, 3.0, 0.0);
        assert!(lspi.update(0, 2, 2.0));
        assert_theta_consistent(&lspi);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_bad_action() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        lspi.update(3, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn new_rejects_bad_delta() {
        let _ = SparseLspi::new(3, 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn new_rejects_bad_gamma() {
        let _ = SparseLspi::new(3, 3.0, 1.0);
    }
}
