//! Megh hyper-parameters.

use serde::{Deserialize, Serialize};

/// All tunables of the Megh agent.
///
/// Defaults follow §6.1: `γ = 0.5` ("50:50 importance of both new and old
/// information"), `Temp₀ = 3`, `ε = 0.01`, and `δ = d` for the
/// `B₀ = (1/δ)·I` initialisation. §6.5's sensitivity analysis varies
/// `Temp₀` and `ε`; the Figure 8 experiment does the same through this
/// struct.
///
/// # Examples
///
/// ```
/// use megh_core::MeghConfig;
///
/// let cfg = MeghConfig::paper_defaults(100, 50);
/// assert_eq!(cfg.gamma, 0.5);
/// assert_eq!(cfg.temp0, 3.0);
/// assert_eq!(cfg.epsilon, 0.01);
/// assert_eq!(cfg.delta, 5000.0); // δ = d = N × M
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeghConfig {
    /// Number of VMs `N` the agent will manage.
    pub n_vms: usize,
    /// Number of hosts `M`.
    pub n_hosts: usize,
    /// Discount factor `γ ∈ [0, 1)` of the infinite-horizon MDP (§4).
    pub gamma: f64,
    /// Initial Boltzmann temperature `Temp₀` (Algorithm 2).
    pub temp0: f64,
    /// Temperature decay exponent `ε`: `Temp ← Temp·e^{−ε}` per step.
    pub epsilon: f64,
    /// Initialisation scale: `B₀ = (1/δ)·I` (§5, "we have considered δ
    /// as d").
    pub delta: f64,
    /// Actions sampled per observation step. The paper's Algorithm 1
    /// takes one action per iteration; raising this lets Megh request
    /// several migrations per interval (bounded by the engine's 2 % cap).
    pub actions_per_step: usize,
    /// RNG seed for exploration; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Optional action-space feasibility mask (ablation): when `true`,
    /// a sampled action may target a *sleeping* host only if the VM's
    /// current host is overloaded (one reading of §3.1's "migrate … to
    /// another PM with potential capacity"). The mask lowers Megh's
    /// energy (fewer hosts wake) at the price of more overload SLA, and
    /// is `false` by default — the paper's Algorithm 1 samples the
    /// unrestricted `N × M` action space.
    pub mask_sleeping_targets: bool,
}

impl MeghConfig {
    /// The §6.1 experimental defaults for an `N × M` data center.
    pub fn paper_defaults(n_vms: usize, n_hosts: usize) -> Self {
        let d = (n_vms * n_hosts).max(1) as f64;
        Self {
            n_vms,
            n_hosts,
            gamma: 0.5,
            temp0: 3.0,
            epsilon: 0.01,
            delta: d,
            actions_per_step: 1,
            seed: 0x4d45_4748, // "MEGH"
            mask_sleeping_targets: false,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(0.0..1.0).contains(&self.gamma) {
            return Err("gamma must be in [0, 1)");
        }
        if self.temp0 <= 0.0 {
            return Err("temp0 must be positive");
        }
        if self.epsilon < 0.0 {
            return Err("epsilon must be non-negative");
        }
        if self.delta <= 0.0 {
            return Err("delta must be positive");
        }
        if self.actions_per_step == 0 {
            return Err("actions_per_step must be at least 1");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6_1() {
        let cfg = MeghConfig::paper_defaults(10, 5);
        assert_eq!(cfg.gamma, 0.5);
        assert_eq!(cfg.temp0, 3.0);
        assert_eq!(cfg.epsilon, 0.01);
        assert_eq!(cfg.delta, 50.0);
        assert_eq!(cfg.actions_per_step, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn empty_space_keeps_delta_positive() {
        let cfg = MeghConfig::paper_defaults(0, 0);
        assert!(cfg.delta > 0.0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut cfg = MeghConfig::paper_defaults(2, 2);
        cfg.gamma = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = MeghConfig::paper_defaults(2, 2);
        cfg.temp0 = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = MeghConfig::paper_defaults(2, 2);
        cfg.epsilon = -0.1;
        assert!(cfg.validate().is_err());

        let mut cfg = MeghConfig::paper_defaults(2, 2);
        cfg.delta = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = MeghConfig::paper_defaults(2, 2);
        cfg.actions_per_step = 0;
        assert!(cfg.validate().is_err());
    }
}
