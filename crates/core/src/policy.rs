//! Boltzmann exploration with decaying temperature (Algorithm 2).

// This module is on the Megh decision hot path: steady-state calls must
// not allocate. Enforced by `cargo run -p lint`.
// lint: deny_alloc

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SparseLspi;

/// The `PolicyCalculator` of Algorithm 2.
///
/// Each action `a` receives weight `exp[(−Q(s,a) + min_a Q)/Temp]`; the
/// temperature decays by `e^{−ε}` every step, so the policy anneals from
/// near-uniform exploration to greedy selection of the minimum-cost
/// action. Because all unexplored actions share `Q = 0` exactly, they
/// form a single "zero class" that is sampled in `O(1)` — the full
/// distribution over `d = N × M` actions is never materialised, which is
/// what keeps Megh's decisions at millisecond scale (§5.2, Figures 4(d)
/// and 5(d)).
///
/// # Examples
///
/// ```
/// use megh_core::{BoltzmannPolicy, SparseLspi};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let lspi = SparseLspi::new(10, 10.0, 0.5);
/// let mut policy = BoltzmannPolicy::new(3.0, 0.01);
/// let mut rng = StdRng::seed_from_u64(1);
/// let action = policy.sample(&lspi, &mut rng).unwrap();
/// assert!(action < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoltzmannPolicy {
    temp: f64,
    epsilon: f64,
}

/// Temperature floor: below this the policy is effectively greedy and
/// further decay would only cause float underflow.
const MIN_TEMP: f64 = 1e-8;

impl BoltzmannPolicy {
    /// Creates a policy with initial temperature `temp0` and per-step
    /// decay exponent `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `temp0 <= 0` or `epsilon < 0`.
    pub fn new(temp0: f64, epsilon: f64) -> Self {
        assert!(temp0 > 0.0, "temp0 must be positive");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            temp: temp0,
            epsilon,
        }
    }

    /// Recreates a policy mid-decay (checkpoint restoration).
    ///
    /// # Panics
    ///
    /// Panics if `temp <= 0` or `epsilon < 0`.
    pub fn with_temperature(temp: f64, epsilon: f64) -> Self {
        Self::new(temp, epsilon)
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// Applies one decay step: `Temp ← Temp·e^{−ε}` (floored).
    pub fn decay(&mut self) {
        self.temp = (self.temp * (-self.epsilon).exp()).max(MIN_TEMP);
    }

    /// Samples an action from the Boltzmann distribution restricted to
    /// actions the `allowed` predicate admits, by rejection from the
    /// full distribution (up to a bounded number of tries). When
    /// rejection fails — the distribution concentrates nearly all mass
    /// on disallowed actions, e.g. an effectively greedy policy whose
    /// minimum is masked out — it falls back to the minimum-Q *allowed*
    /// action rather than dropping the request. Returns `None` only when
    /// the space is empty or no action is allowed at all.
    // lint: depth_budget(6)
    pub fn sample_masked<R: Rng>(
        &self,
        lspi: &SparseLspi,
        rng: &mut R,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        for _ in 0..64 {
            match self.sample(lspi, rng) {
                Some(a) if allowed(a) => return Some(a),
                Some(_) => continue,
                None => return None,
            }
        }
        self.greedy_masked(lspi, &allowed)
    }

    /// The minimum-Q action among those the predicate admits, by full
    /// scan — the deterministic fallback when rejection sampling cannot
    /// surface an allowed action.
    fn greedy_masked(&self, lspi: &SparseLspi, allowed: &impl Fn(usize) -> bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for a in 0..lspi.dim() {
            if !allowed(a) {
                continue;
            }
            let q = lspi.q(a);
            if best.is_none_or(|(_, bq)| q < bq) {
                best = Some((a, q));
            }
        }
        best.map(|(a, _)| a)
    }

    /// Samples an action from the Boltzmann distribution over all `d`
    /// actions. Returns `None` when the action space is empty.
    ///
    /// Weights: explicit `θ` entries get `exp[(−Q + minQ)/Temp]`; the
    /// `d − nnz(θ)` zero-Q actions share the weight `exp[minQ/Temp]`
    /// and one of them is drawn uniformly when the zero class wins.
    ///
    /// Streams over `θ`'s entries in two passes (mass, then lookup)
    /// instead of materialising the weight table — the steady-state call
    /// performs zero heap allocations.
    // lint: depth_budget(5)
    pub fn sample<R: Rng>(&self, lspi: &SparseLspi, rng: &mut R) -> Option<usize> {
        let d = lspi.dim();
        if d == 0 {
            return None;
        }
        let min_q = lspi.min_q();
        let inv_t = 1.0 / self.temp;

        // Pass 1: total mass.
        let mut explicit_total = 0.0;
        let mut explicit_count = 0usize;
        let mut last_explicit = None;
        for (a, q) in lspi.theta_entries() {
            explicit_total += ((-q + min_q) * inv_t).exp();
            explicit_count += 1;
            last_explicit = Some(a);
        }
        let zero_count = d - explicit_count;
        let zero_weight = (min_q * inv_t).exp();
        let total = explicit_total + zero_weight * zero_count as f64;
        if !total.is_finite() || total <= 0.0 {
            // Degenerate weights (extreme Q spread at tiny temperature):
            // fall back to the greedy minimum.
            return Some(self.greedy(lspi, rng));
        }

        // Pass 2: locate the drawn action. The weights are recomputed
        // with the same expression, so the passes agree bit-for-bit.
        let mut r = rng.gen_range(0.0..total);
        for (a, q) in lspi.theta_entries() {
            let w = ((-q + min_q) * inv_t).exp();
            if r < w {
                return Some(a);
            }
            r -= w;
        }
        // Zero class: uniform over zero-Q actions, found by rejection
        // sampling (nnz ≪ d in every real configuration).
        if zero_count > 0 {
            // When most actions carry explicit entries, rejection could
            // stall; bound the attempts and then scan.
            for _ in 0..64 {
                let a = rng.gen_range(0..d);
                if lspi.q(a) == 0.0 {
                    return Some(a);
                }
            }
            for a in 0..d {
                if lspi.q(a) == 0.0 {
                    return Some(a);
                }
            }
        }
        // All actions explicit and rounding pushed us past the end.
        last_explicit
    }

    /// The greedy minimum-Q action (ties broken toward the zero class,
    /// drawn uniformly).
    ///
    /// Uses [`SparseLspi::min_theta_entry`]'s cached minimum — no scan
    /// and no allocation on the happy path.
    ///
    /// # Panics
    ///
    /// Panics if the action space is empty.
    // lint: depth_budget(4)
    pub fn greedy<R: Rng>(&self, lspi: &SparseLspi, rng: &mut R) -> usize {
        let d = lspi.dim();
        assert!(d > 0, "empty action space");
        let explicit_min = lspi.min_theta_entry();
        let zero_count = d - lspi.theta_nnz();
        match explicit_min {
            Some((a, q)) if q < 0.0 || zero_count == 0 => a,
            _ => {
                // Zero is the minimum: pick a zero-Q action.
                for _ in 0..64 {
                    let a = rng.gen_range(0..d);
                    if lspi.q(a) == 0.0 {
                        return a;
                    }
                }
                // Totality: `zero_count > 0` in this arm guarantees the
                // scan finds a zero-Q action; 0 is in range since d > 0.
                (0..d)
                    .find(|&a| lspi.q(a) == 0.0)
                    .or(explicit_min.map(|(a, _)| a))
                    .unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn temperature_decays_exponentially() {
        let mut p = BoltzmannPolicy::new(3.0, 0.01);
        p.decay();
        assert!((p.temperature() - 3.0 * (-0.01f64).exp()).abs() < 1e-12);
        for _ in 0..100_000 {
            p.decay();
        }
        assert!(p.temperature() >= MIN_TEMP);
    }

    #[test]
    fn fresh_state_samples_uniformly() {
        let lspi = SparseLspi::new(50, 50.0, 0.5);
        let p = BoltzmannPolicy::new(3.0, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            seen.insert(p.sample(&lspi, &mut rng).unwrap());
        }
        // With 300 draws over 50 actions, essentially all get hit.
        assert!(seen.len() > 40, "only {} distinct actions", seen.len());
    }

    #[test]
    fn costly_actions_are_sampled_less() {
        let mut lspi = SparseLspi::new(4, 4.0, 0.5);
        // Make action 0 very expensive several times over.
        for _ in 0..20 {
            lspi.update(0, 0, 100.0);
        }
        assert!(lspi.q(0) > 1.0);
        let p = BoltzmannPolicy::new(0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut count0 = 0;
        let n = 2000;
        for _ in 0..n {
            if p.sample(&lspi, &mut rng).unwrap() == 0 {
                count0 += 1;
            }
        }
        // Uniform would give ~500; the expensive action must be rare.
        assert!(count0 < 100, "expensive action drawn {count0}/{n} times");
    }

    #[test]
    fn greedy_prefers_negative_q() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        // Engineer a negative Q by feeding a negative cost.
        lspi.update(1, 1, -5.0);
        assert!(lspi.q(1) < 0.0);
        let p = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.greedy(&lspi, &mut rng), 1);
    }

    #[test]
    fn greedy_picks_unexplored_when_all_costs_positive() {
        let mut lspi = SparseLspi::new(5, 5.0, 0.5);
        lspi.update(0, 0, 3.0);
        let p = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = p.greedy(&lspi, &mut rng);
            assert_ne!(a, 0, "greedy must avoid the costly explored action");
        }
    }

    #[test]
    fn empty_space_returns_none() {
        let lspi = SparseLspi::new(0, 1.0, 0.5);
        let p = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(p.sample(&lspi, &mut rng).is_none());
    }

    #[test]
    fn tiny_temperature_is_effectively_greedy() {
        let mut lspi = SparseLspi::new(3, 3.0, 0.5);
        lspi.update(0, 0, 10.0);
        lspi.update(1, 1, 10.0);
        lspi.update(2, 2, -1.0); // negative cost → negative Q, the minimum
        let mut p = BoltzmannPolicy::new(3.0, 5.0); // brutal decay
        for _ in 0..20 {
            p.decay();
        }
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(p.sample(&lspi, &mut rng).unwrap(), 2);
        }
    }

    #[test]
    fn masked_sampling_finds_a_rare_allowed_action() {
        // Regression: a near-greedy policy over a large action space
        // with a 1-action mask. Action 7 is expensive, so the Boltzmann
        // distribution puts essentially zero mass on it; 64 rejection
        // draws from the unmasked distribution will practically never
        // surface it. The fallback must still return it instead of None.
        let mut lspi = SparseLspi::new(1000, 1000.0, 0.5);
        for _ in 0..30 {
            lspi.update(7, 7, 50.0);
        }
        assert!(lspi.q(7) > 0.0);
        let mut p = BoltzmannPolicy::new(3.0, 5.0); // brutal decay
        for _ in 0..20 {
            p.decay();
        }
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            assert_eq!(
                p.sample_masked(&lspi, &mut rng, |a| a == 7),
                Some(7),
                "the only allowed action must be chosen, not dropped"
            );
        }
    }

    #[test]
    fn masked_sampling_returns_none_when_nothing_allowed() {
        let lspi = SparseLspi::new(16, 16.0, 0.5);
        let p = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(p.sample_masked(&lspi, &mut rng, |_| false), None);
    }

    #[test]
    fn masked_sampling_returns_none_on_empty_space() {
        let lspi = SparseLspi::new(0, 1.0, 0.5);
        let p = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(p.sample_masked(&lspi, &mut rng, |_| true), None);
    }

    #[test]
    fn cancelled_theta_entry_rejoins_the_zero_class() {
        // Zero-class membership is "Q reads exactly 0", not "never
        // explored": an explored action whose first observed cost was 0
        // has no explicit θ entry and must be sampleable as part of the
        // zero class without skewing the distribution.
        let mut lspi = SparseLspi::new(4, 4.0, 0.5);
        lspi.update(2, 2, 0.0); // explored, θ[2] == 0 exactly
        assert!(!lspi.is_unexplored(2));
        let p = BoltzmannPolicy::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(19);
        let mut hit2 = 0;
        for _ in 0..400 {
            if p.sample(&lspi, &mut rng).unwrap() == 2 {
                hit2 += 1;
            }
        }
        // Uniform over 4 zero-Q actions → ~100 expected hits.
        assert!((50..200).contains(&hit2), "action 2 drawn {hit2}/400 times");
    }

    #[test]
    #[should_panic(expected = "temp0 must be positive")]
    fn rejects_nonpositive_temperature() {
        let _ = BoltzmannPolicy::new(0.0, 0.1);
    }
}
