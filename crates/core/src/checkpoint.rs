//! Versioned, checksummed checkpoint persistence.
//!
//! A long-running `megh serve` daemon checkpoints its learned state and
//! must be able to reload it across releases. The bare
//! [`MeghCheckpoint`] JSON that earlier revisions wrote
//! (`serde_json::to_string(&agent.checkpoint())`) carried no format
//! marker, so this module defines a versioned envelope around it and a
//! migration chain that upgrades any older format on load:
//!
//! ```json
//! {"version": "1.0.0", "checksum": "<fnv1a64 hex>", "data": { ... }}
//! ```
//!
//! - `version` is a semantic version of the *data* schema. Loading
//!   walks the [`Migration`] chain from the file's version to
//!   [`CHECKPOINT_VERSION`], one hop at a time, so every format ever
//!   written stays loadable. A JSON object without a `version` key is
//!   the legacy v0 format and enters the chain at `0.0.0`.
//! - `checksum` is FNV-1a over the serialized `data` subtree, verified
//!   before anything is interpreted — a truncated write (the crash
//!   window the daemon's atomic rename protects against) fails loudly
//!   here instead of restoring silently corrupt learned state.
//! - after migration the embedded configuration is checked via
//!   [`Config::validate`], so a checkpoint that parses but encodes an
//!   invalid agent is rejected with an error, not a panic.
//!
//! Writes go through [`save_checkpoint`], which writes a sibling
//! temporary file and renames it into place: on any crash the previous
//! checkpoint file is either fully intact or fully replaced.

use std::fmt;
use std::fs;
use std::path::Path;

use serde::value::{self, Value};

use crate::{MeghCheckpoint, MeghConfig};

/// The schema version this build writes.
pub const CHECKPOINT_VERSION: SemVer = SemVer::new(1, 0, 0);

/// Configuration objects that can be persisted safely: a deterministic
/// fingerprint for compatibility checks plus self-validation.
pub trait Config {
    /// Why validation failed.
    type Error;

    /// A deterministic fingerprint of the configuration. Two configs
    /// with equal checksums are interchangeable for serving decisions;
    /// a daemon uses this to detect that a checkpoint on disk was
    /// produced under different tunables than the ones it was started
    /// with.
    fn checksum(&self) -> u64;

    /// Checks the configuration's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    fn validate(&self) -> Result<(), Self::Error>;
}

impl Config for MeghConfig {
    type Error = &'static str;

    fn checksum(&self) -> u64 {
        // The derived serializer emits fields in declaration order, so
        // the canonical JSON text is a stable fingerprint. Serialization
        // of a plain field struct cannot fail; an empty string (never a
        // real serialization) is the defensive fallback.
        let json = serde_json::to_string(self).unwrap_or_default();
        fnv1a64(json.as_bytes())
    }

    fn validate(&self) -> Result<(), &'static str> {
        MeghConfig::validate(self)
    }
}

/// 64-bit FNV-1a over a byte slice — tiny, dependency-free, and stable
/// across platforms, which is all a corruption check needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A semantic version (`major.minor.patch`), ordered field-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SemVer {
    /// Incompatible schema change.
    pub major: u32,
    /// Backward-compatible addition.
    pub minor: u32,
    /// Backward-compatible fix.
    pub patch: u32,
}

impl SemVer {
    /// Builds a version from its three components.
    pub const fn new(major: u32, minor: u32, patch: u32) -> Self {
        Self {
            major,
            minor,
            patch,
        }
    }

    /// Parses `"major.minor.patch"`; `None` on any malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('.');
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next()?.parse().ok()?;
        let patch = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self::new(major, minor, patch))
    }
}

impl fmt::Display for SemVer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// One hop of the checkpoint schema's upgrade chain.
///
/// Migrations transform the raw `data` subtree as a [`Value`] tree —
/// they run *before* the current types ever see the bytes, which is
/// what lets today's structs drop fields old formats still carry.
pub struct Migration {
    /// Schema version this migration consumes.
    pub from: SemVer,
    /// Schema version it produces (must be greater than `from`).
    pub to: SemVer,
    /// The transformation itself.
    pub apply: fn(Value) -> Result<Value, String>,
}

/// The full upgrade chain, oldest first.
fn migrations() -> Vec<Migration> {
    vec![Migration {
        from: SemVer::new(0, 0, 0),
        to: SemVer::new(1, 0, 0),
        apply: migrate_v0_to_v1,
    }]
}

/// v0 → v1: the legacy format *is* the v1 `data` subtree — v1 only
/// wrapped it in the `{version, checksum, data}` envelope. The hop
/// still validates the shape so a corrupt legacy file fails here with
/// a version-aware message instead of deep in field decoding.
fn migrate_v0_to_v1(data: Value) -> Result<Value, String> {
    let Value::Object(ref pairs) = data else {
        return Err("legacy checkpoint must be a JSON object".to_string());
    };
    for field in ["config", "lspi", "temperature", "steps"] {
        if !pairs.iter().any(|(k, _)| k == field) {
            return Err(format!("legacy checkpoint is missing `{field}`"));
        }
    }
    Ok(data)
}

/// Everything that can go wrong loading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The bytes are not the JSON shape the envelope requires.
    Parse(String),
    /// The stored checksum does not match the stored data.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        stored: String,
        /// Checksum recomputed from the data subtree.
        computed: String,
    },
    /// No migration chain reaches this version (or it is newer than
    /// this build writes).
    UnsupportedVersion(String),
    /// A migration hop rejected the data.
    Migration(String),
    /// The checkpoint decoded but its configuration is invalid.
    InvalidConfig(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored}, computed {computed}"
            ),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Migration(e) => write!(f, "checkpoint migration failed: {e}"),
            CheckpointError::InvalidConfig(e) => {
                write!(f, "checkpoint carries an invalid configuration: {e}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes a checkpoint in the current envelope format.
///
/// # Errors
///
/// Returns [`CheckpointError::Parse`] if the checkpoint fails to
/// serialize (not reachable for well-formed agent state).
///
/// # Examples
///
/// ```
/// use megh_core::{from_versioned_json, to_versioned_json, MeghAgent, MeghConfig};
///
/// let agent = MeghAgent::new(MeghConfig::paper_defaults(6, 3));
/// let json = to_versioned_json(&agent.checkpoint()).unwrap();
/// assert!(json.starts_with("{\"version\":\"1.0.0\""));
/// let back = from_versioned_json(&json).unwrap();
/// assert_eq!(back.steps, 0);
/// ```
pub fn to_versioned_json(checkpoint: &MeghCheckpoint) -> Result<String, CheckpointError> {
    let data = value::to_value(checkpoint).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    let payload =
        serde_json::to_string(&data).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    let checksum = fnv1a64(payload.as_bytes());
    let envelope = Value::Object(vec![
        (
            "version".to_string(),
            Value::String(CHECKPOINT_VERSION.to_string()),
        ),
        (
            "checksum".to_string(),
            Value::String(format!("{checksum:016x}")),
        ),
        ("data".to_string(), data),
    ]);
    serde_json::to_string(&envelope).map_err(|e| CheckpointError::Parse(e.to_string()))
}

/// Loads a checkpoint from any format version ever written.
///
/// Versioned envelopes are checksum-verified and then migrated hop by
/// hop to [`CHECKPOINT_VERSION`]; a bare object without a `version`
/// key is the legacy v0 format and enters the chain at `0.0.0`. The
/// embedded configuration is validated before the checkpoint is
/// returned.
///
/// # Errors
///
/// See [`CheckpointError`] — every failure mode is an error, never a
/// panic, because this runs at daemon startup on operator-supplied
/// files.
pub fn from_versioned_json(json: &str) -> Result<MeghCheckpoint, CheckpointError> {
    let root: Value =
        serde_json::from_str(json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    let Value::Object(mut pairs) = root else {
        return Err(CheckpointError::Parse(
            "checkpoint root must be a JSON object".to_string(),
        ));
    };

    let versioned = pairs.iter().any(|(k, _)| k == "version");
    let (mut version, mut data) = if versioned {
        let version_field = value::take_field(&mut pairs, "version");
        let Some(version) = version_field.as_str().and_then(SemVer::parse) else {
            return Err(CheckpointError::Parse(
                "`version` must be a \"major.minor.patch\" string".to_string(),
            ));
        };
        let Some(stored) = value::take_field(&mut pairs, "checksum")
            .as_str()
            .map(str::to_string)
        else {
            return Err(CheckpointError::Parse(
                "`checksum` must be a hex string".to_string(),
            ));
        };
        let data = value::take_field(&mut pairs, "data");
        if data.is_null() {
            return Err(CheckpointError::Parse(
                "envelope has no `data` subtree".to_string(),
            ));
        }
        let payload =
            serde_json::to_string(&data).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        let computed = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        (version, data)
    } else {
        // Legacy v0: the whole object is the data.
        (SemVer::new(0, 0, 0), Value::Object(pairs))
    };

    while version < CHECKPOINT_VERSION {
        let chain = migrations();
        let Some(hop) = chain.iter().find(|m| m.from == version) else {
            return Err(CheckpointError::UnsupportedVersion(version.to_string()));
        };
        if hop.to <= version {
            // A non-advancing hop would loop forever; reject it.
            return Err(CheckpointError::UnsupportedVersion(version.to_string()));
        }
        data = (hop.apply)(data).map_err(CheckpointError::Migration)?;
        version = hop.to;
    }
    if version > CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version.to_string()));
    }

    let checkpoint: MeghCheckpoint =
        value::from_value(data).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    Config::validate(&checkpoint.config).map_err(CheckpointError::InvalidConfig)?;
    Ok(checkpoint)
}

/// Atomically writes a checkpoint: the envelope is written to a
/// sibling `<name>.tmp` file and renamed over `path`, so a crash at
/// any instant leaves either the previous checkpoint or the new one —
/// never a torn file.
///
/// # Errors
///
/// [`CheckpointError::Io`] on filesystem failures,
/// [`CheckpointError::Parse`] if serialization fails.
pub fn save_checkpoint(path: &Path, checkpoint: &MeghCheckpoint) -> Result<(), CheckpointError> {
    let json = to_versioned_json(checkpoint)?;
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return Err(CheckpointError::Io(format!(
            "checkpoint path {} has no file name",
            path.display()
        )));
    };
    let tmp = path.with_file_name(format!("{name}.tmp"));
    fs::write(&tmp, json.as_bytes()).map_err(|e| CheckpointError::Io(e.to_string()))?;
    fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
}

/// Reads and migrates a checkpoint file written by any release.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read; otherwise the
/// failure modes of [`from_versioned_json`].
pub fn load_checkpoint(path: &Path) -> Result<MeghCheckpoint, CheckpointError> {
    let json = fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    from_versioned_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeghAgent;

    fn sample_checkpoint() -> MeghCheckpoint {
        MeghAgent::new(MeghConfig::paper_defaults(6, 3)).checkpoint()
    }

    #[test]
    fn semver_parses_and_orders() {
        assert_eq!(SemVer::parse("1.2.3"), Some(SemVer::new(1, 2, 3)));
        assert_eq!(SemVer::parse("1.2"), None);
        assert_eq!(SemVer::parse("1.2.3.4"), None);
        assert_eq!(SemVer::parse("a.b.c"), None);
        assert!(SemVer::new(0, 9, 9) < SemVer::new(1, 0, 0));
        assert!(SemVer::new(1, 0, 1) < SemVer::new(1, 1, 0));
        assert_eq!(SemVer::new(2, 0, 0).to_string(), "2.0.0");
    }

    #[test]
    fn envelope_round_trips() {
        let cp = sample_checkpoint();
        let json = to_versioned_json(&cp).unwrap();
        assert!(json.contains("\"version\":\"1.0.0\""));
        let back = from_versioned_json(&json).unwrap();
        assert_eq!(back.config, cp.config);
        assert_eq!(back.steps, cp.steps);
    }

    #[test]
    fn legacy_v0_checkpoint_loads_through_the_migration_chain() {
        let cp = sample_checkpoint();
        // Exactly what pre-envelope code wrote.
        let legacy = serde_json::to_string(&cp).unwrap();
        let back = from_versioned_json(&legacy).unwrap();
        assert_eq!(back.config, cp.config);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let json = to_versioned_json(&sample_checkpoint()).unwrap();
        let tampered = json.replace("\"temperature\":3.0", "\"temperature\":9.0");
        assert_ne!(tampered, json, "fixture must actually tamper");
        match from_versioned_json(&tampered) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected_not_misread() {
        let json = to_versioned_json(&sample_checkpoint()).unwrap();
        let future = json.replace("\"version\":\"1.0.0\"", "\"version\":\"9.0.0\"");
        match from_versioned_json(&future) {
            Err(CheckpointError::UnsupportedVersion(v)) => assert_eq!(v, "9.0.0"),
            other => panic!("expected unsupported version, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_a_parse_error() {
        let json = to_versioned_json(&sample_checkpoint()).unwrap();
        let truncated = &json[..json.len() / 2];
        assert!(matches!(
            from_versioned_json(truncated),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn invalid_config_inside_a_valid_envelope_is_rejected() {
        let mut cp = sample_checkpoint();
        cp.config.gamma = 7.0;
        let json = to_versioned_json(&cp).unwrap();
        assert!(matches!(
            from_versioned_json(&json),
            Err(CheckpointError::InvalidConfig(_))
        ));
    }

    #[test]
    fn legacy_object_missing_fields_fails_in_the_migration_hop() {
        assert!(matches!(
            from_versioned_json(r#"{"config":{},"lspi":{}}"#),
            Err(CheckpointError::Migration(_))
        ));
    }

    #[test]
    fn config_checksum_is_stable_and_sensitive() {
        let a = MeghConfig::paper_defaults(6, 3);
        let b = MeghConfig::paper_defaults(6, 3);
        let mut c = MeghConfig::paper_defaults(6, 3);
        c.temp0 = 4.0;
        assert_eq!(Config::checksum(&a), Config::checksum(&b));
        assert_ne!(Config::checksum(&a), Config::checksum(&c));
    }

    #[test]
    fn save_and_load_round_trip_atomically() {
        let dir = std::env::temp_dir().join(format!("megh-cp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let cp = sample_checkpoint();
        save_checkpoint(&path, &cp).unwrap();
        // The temp file must not linger after the rename.
        assert!(!dir.join("checkpoint.json.tmp").exists());
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.config, cp.config);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
