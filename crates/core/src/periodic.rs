//! Periodicity-aware Megh — the paper's §7 future-work direction.
//!
//! "We are currently investigating the opportunity to take advantage of
//! additional knowledge about the workload, such as periodicity …"
//!
//! Cloud workloads are strongly diurnal (our PlanetLab generator
//! modulates burst onset with a 24-hour cycle, as the real CoMoN data
//! does). The plain Megh agent learns a single `θ` shared by every time
//! of day, so a migration that is good at the nightly trough and bad at
//! the daily peak averages out. [`PeriodicMeghAgent`] conditions the
//! projection on the *phase of the day*: the basis becomes
//! `φ_{a,p} = e_{p·d + a}` over `d × P` dimensions (P phases), which
//! keeps Theorem 1's uniqueness argument intact — it is the same sparse
//! indicator construction over a larger index set — and every
//! complexity property of §5.2 (per-step cost proportional to the
//! number of migrations; the phases never interact in `B`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use megh_sim::{DataCenterView, MigrationRequest, Scheduler, StepFeedback};

use crate::{ActionSpace, BoltzmannPolicy, MeghConfig, SparseLspi};

/// Megh with a phase-of-day-conditioned basis.
///
/// # Examples
///
/// ```
/// use megh_core::{MeghConfig, PeriodicMeghAgent};
///
/// let agent = PeriodicMeghAgent::new(MeghConfig::paper_defaults(10, 4), 4);
/// assert_eq!(agent.n_phases(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicMeghAgent {
    config: MeghConfig,
    space: ActionSpace,
    n_phases: usize,
    steps_per_period: usize,
    lspi: SparseLspi,
    policy: BoltzmannPolicy,
    rng: StdRng,
    /// Pending `(phase, action)` pairs from the previous step.
    pending: Vec<(usize, usize)>,
    last_cost: Option<f64>,
    steps: usize,
}

impl PeriodicMeghAgent {
    /// Creates an agent with `n_phases` equal phases per 24-hour period
    /// (288 five-minute steps).
    ///
    /// # Panics
    ///
    /// Panics if `n_phases == 0` or the configuration is invalid.
    pub fn new(config: MeghConfig, n_phases: usize) -> Self {
        Self::with_period(config, n_phases, 288)
    }

    /// Creates an agent with an explicit period length in steps.
    ///
    /// # Panics
    ///
    /// Panics if `n_phases == 0`, `steps_per_period == 0`, or the
    /// configuration is invalid.
    pub fn with_period(config: MeghConfig, n_phases: usize, steps_per_period: usize) -> Self {
        assert!(n_phases > 0, "n_phases must be positive");
        assert!(steps_per_period > 0, "steps_per_period must be positive");
        if let Err(msg) = config.validate() {
            // Documented contract, asserted by tests. lint: allow(panic)
            panic!("invalid Megh configuration: {msg}");
        }
        let space = ActionSpace::new(config.n_vms, config.n_hosts);
        let dim = space.dim() * n_phases;
        let lspi = SparseLspi::new(dim, config.delta * n_phases as f64, config.gamma);
        let policy = BoltzmannPolicy::new(config.temp0, config.epsilon);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            space,
            n_phases,
            steps_per_period,
            lspi,
            policy,
            rng,
            pending: Vec::new(),
            last_cost: None,
            steps: 0,
        }
    }

    /// Number of phases the day is split into.
    pub fn n_phases(&self) -> usize {
        self.n_phases
    }

    /// The phase index for a step.
    pub fn phase_of(&self, step: usize) -> usize {
        (step % self.steps_per_period) * self.n_phases / self.steps_per_period
    }

    /// Explicit non-zeros of the learned operator.
    pub fn qtable_nnz(&self) -> usize {
        self.lspi.explicit_nnz()
    }

    fn flat(&self, phase: usize, action: usize) -> usize {
        phase * self.space.dim() + action
    }

    fn learn_pending(&mut self) {
        if let Some(cost) = self.last_cost.take() {
            let pending = std::mem::take(&mut self.pending);
            for (phase, action) in pending {
                let a_prev = self.flat(phase, action);
                let a_next = self.policy.greedy(&self.lspi, &mut self.rng);
                self.lspi.update(a_prev, a_next, cost);
            }
        } else {
            self.pending.clear();
        }
    }
}

impl Scheduler for PeriodicMeghAgent {
    fn name(&self) -> &str {
        "Megh-P"
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        assert_eq!(
            (view.n_vms(), view.n_hosts()),
            (self.config.n_vms, self.config.n_hosts),
            "view dimensions do not match the Megh configuration"
        );
        if self.space.dim() == 0 {
            return Vec::new();
        }
        self.learn_pending();
        self.policy.decay();
        self.steps += 1;

        let phase = self.phase_of(view.step());
        let d = self.space.dim();
        let lo = phase * d;
        let hi = lo + d;
        let mut requests = Vec::new();
        let mut chosen = Vec::new();
        let mut vm_taken = vec![false; self.config.n_vms];
        for _ in 0..self.config.actions_per_step {
            // Restrict sampling to the current phase's block.
            let Some(flat) = self
                .policy
                .sample_masked(&self.lspi, &mut self.rng, |a| (lo..hi).contains(&a))
            else {
                break;
            };
            let action_idx = flat - lo;
            let action = self.space.decode(action_idx);
            if vm_taken[action.vm.0] {
                continue;
            }
            vm_taken[action.vm.0] = true;
            chosen.push((phase, action_idx));
            if view.host_of(action.vm) != action.target {
                requests.push(MigrationRequest::new(action.vm, action.target));
            }
        }
        self.pending = chosen;
        requests
    }

    fn observe(&mut self, feedback: &StepFeedback) {
        self.last_cost = Some(feedback.total_cost_usd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_sim::{DataCenterConfig, Simulation};
    use megh_trace::PlanetLabConfig;

    #[test]
    fn phase_indexing_covers_the_day() {
        let agent = PeriodicMeghAgent::new(MeghConfig::paper_defaults(4, 2), 4);
        assert_eq!(agent.phase_of(0), 0);
        assert_eq!(agent.phase_of(71), 0);
        assert_eq!(agent.phase_of(72), 1);
        assert_eq!(agent.phase_of(287), 3);
        assert_eq!(agent.phase_of(288), 0); // wraps daily
    }

    #[test]
    fn custom_period_is_respected() {
        let agent = PeriodicMeghAgent::with_period(MeghConfig::paper_defaults(4, 2), 2, 10);
        assert_eq!(agent.phase_of(4), 0);
        assert_eq!(agent.phase_of(5), 1);
        assert_eq!(agent.phase_of(10), 0);
    }

    #[test]
    fn runs_end_to_end_and_learns_per_phase() {
        let (hosts, vms) = (4, 8);
        let trace = PlanetLabConfig::new(vms, 31).generate_steps(120);
        let config = DataCenterConfig::paper_planetlab(hosts, vms);
        let sim = Simulation::new(config, trace).unwrap();
        let mut agent =
            PeriodicMeghAgent::with_period(MeghConfig::paper_defaults(vms, hosts), 4, 40);
        let outcome = sim.run(&mut agent);
        assert_eq!(outcome.records().len(), 120);
        assert!(agent.qtable_nnz() > 0);
    }

    #[test]
    fn is_deterministic_under_seed() {
        let (hosts, vms) = (3, 6);
        let trace = PlanetLabConfig::new(vms, 33).generate_steps(60);
        let config = DataCenterConfig::paper_planetlab(hosts, vms);
        let sim = Simulation::new(config, trace).unwrap();
        let mk = || PeriodicMeghAgent::new(MeghConfig::paper_defaults(vms, hosts), 4);
        let a = sim.run(mk());
        let b = sim.run(mk());
        assert_eq!(a.final_placement(), b.final_placement());
    }

    #[test]
    #[should_panic(expected = "n_phases must be positive")]
    fn zero_phases_is_rejected() {
        let _ = PeriodicMeghAgent::new(MeghConfig::paper_defaults(2, 2), 0);
    }

    #[test]
    fn single_phase_matches_plain_megh_structure() {
        // With one phase the flat index equals the action index; the
        // agent must behave like a plain Megh (same dimension).
        let agent = PeriodicMeghAgent::new(MeghConfig::paper_defaults(3, 2), 1);
        assert_eq!(agent.lspi.dim(), 6);
    }
}
