//! The projected action space: one basis vector per `(VM, host)` pair.

use megh_linalg::SparseVec;
use megh_sim::{PmId, VmId};
use serde::{Deserialize, Serialize};

/// A Megh action: "migrate VM `vm` to host `target`".
///
/// An action whose target equals the VM's current host is a *no-op* —
/// the policy's way of saying "keep everything where it is". The MDP
/// treats it as any other action; the simulator simply applies no
/// migration for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// The VM the action moves.
    pub vm: VmId,
    /// The destination host.
    pub target: PmId,
}

/// The `d = N × M` dimensional projected space of §5.
///
/// Action `(j, k)` has flat index `j·M + k`; its basis vector `φ_{jk}` is
/// the indicator of that index (Theorem 1's sparse basis).
///
/// # Examples
///
/// ```
/// use megh_core::ActionSpace;
/// use megh_sim::{PmId, VmId};
///
/// let space = ActionSpace::new(3, 4); // 3 VMs, 4 hosts
/// assert_eq!(space.dim(), 12);
/// let a = space.index(VmId(2), PmId(1));
/// assert_eq!(a, 9);
/// let action = space.decode(a);
/// assert_eq!(action.vm, VmId(2));
/// assert_eq!(action.target, PmId(1));
/// assert_eq!(space.basis(a).nnz(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    n_vms: usize,
    n_hosts: usize,
}

impl ActionSpace {
    /// Creates the action space for `n_vms` VMs on `n_hosts` hosts.
    pub fn new(n_vms: usize, n_hosts: usize) -> Self {
        Self { n_vms, n_hosts }
    }

    /// Number of VMs `N`.
    pub fn n_vms(&self) -> usize {
        self.n_vms
    }

    /// Number of hosts `M`.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// The projected dimension `d = N × M`.
    pub fn dim(&self) -> usize {
        self.n_vms * self.n_hosts
    }

    /// Flat index of action `(vm, target)`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` or `target` is out of range.
    pub fn index(&self, vm: VmId, target: PmId) -> usize {
        assert!(vm.0 < self.n_vms, "vm {} out of range", vm.0);
        assert!(target.0 < self.n_hosts, "host {} out of range", target.0);
        vm.0 * self.n_hosts + target.0
    }

    /// Decodes a flat index back into an [`Action`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn decode(&self, index: usize) -> Action {
        assert!(index < self.dim(), "action index {index} out of range");
        Action {
            vm: VmId(index / self.n_hosts),
            target: PmId(index % self.n_hosts),
        }
    }

    /// The basis vector `φ_a` for a flat action index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn basis(&self, index: usize) -> SparseVec {
        SparseVec::basis(self.dim(), index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_decode_roundtrip() {
        let space = ActionSpace::new(5, 7);
        for j in 0..5 {
            for k in 0..7 {
                let idx = space.index(VmId(j), PmId(k));
                let back = space.decode(idx);
                assert_eq!(back.vm, VmId(j));
                assert_eq!(back.target, PmId(k));
            }
        }
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let space = ActionSpace::new(4, 3);
        let mut seen = std::collections::BTreeSet::new();
        for j in 0..4 {
            for k in 0..3 {
                seen.insert(space.index(VmId(j), PmId(k)));
            }
        }
        assert_eq!(seen.len(), space.dim());
        assert_eq!(*seen.iter().next_back().unwrap(), space.dim() - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range() {
        ActionSpace::new(2, 2).decode(4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_rejects_bad_vm() {
        ActionSpace::new(2, 2).index(VmId(2), PmId(0));
    }

    #[test]
    fn basis_matches_index() {
        let space = ActionSpace::new(2, 3);
        let idx = space.index(VmId(1), PmId(2));
        let phi = space.basis(idx);
        assert_eq!(phi.dim(), 6);
        assert_eq!(phi.get(idx), 1.0);
        assert_eq!(phi.nnz(), 1);
    }

    #[test]
    fn empty_space_has_zero_dim() {
        assert_eq!(ActionSpace::new(0, 5).dim(), 0);
        assert_eq!(ActionSpace::new(5, 0).dim(), 0);
    }
}
