//! Call-graph construction and fixed-point property propagation.
//!
//! Three per-function properties form the lattice (each a 2-point
//! chain, product lattice overall): **may-allocate**, **may-panic**,
//! **nondeterminism taint**. A function's *direct* facts come from the
//! token scan (unallowed forbidden tokens inside its body); its
//! *transitive* value is the least fixed point of
//!
//! ```text
//! eff(f) = facts(f) ∪ ⋃ { eff(g) | f calls g, g not exempted }
//! ```
//!
//! over the intra-workspace call graph. Name resolution is *typed-lite*:
//! receivers are resolved through parameter types, struct field tables,
//! and local-binding inference, falling back to a global name match
//! when the receiver type is unknown — so ambiguity adds edges
//! (over-approximation) rather than hiding them. Calls whose receiver
//! type is known to be external (`Vec`, `Instant`, ...) add no edges;
//! the forbidden std surface is what the token rules watch directly.
//!
//! The graph is `#[cfg]`-aware at both granularities: whole gated items
//! contribute no nodes (see [`crate::items::FnItem::cfg_gated`]), and a
//! call site behind an inner `#[cfg(...)]` attribute — a feature-gated
//! statement or block inside an otherwise ungated function, e.g. the
//! `check-invariants` verification hooks — contributes no edge
//! ([`crate::items::CallSite::cfg_gated`]). Both are absent from the
//! always-on build, so neither needs an `allow(transitive_*)` vouch.
//!
//! A function carrying `// lint: allow(transitive_alloc)` (or
//! `transitive_panic` / `transitive_nondet`) on its signature line — or
//! alone on the line directly above — vouches for its entire call
//! subtree: the property neither fires on it nor propagates through it
//! to callers. The dead-allow pass verifies such a vouching directive
//! against an exemption-free fixpoint, so an escape that no longer
//! covers anything real is itself reported.
//!
//! v3 adds a fourth propagated class, **may-block** (lock acquisition,
//! channel/thread waits, std I/O — classified from parsed call sites,
//! not tokens), and four concurrency rules consuming the same graph:
//!
//! - `guard_across_blocking`: a let-bound lock guard whose live range
//!   (to the end of its block) contains a blocking call, another
//!   acquisition, or a call into a transitively-blocking function.
//! - `lock_order`: a workspace-global acquisition-order digraph (edges
//!   from guard-held ranges, including acquisitions reached through
//!   calls); any strongly-connected component of ≥2 locks is a
//!   potential deadlock cycle.
//! - `unbounded_queue`: a `try_recv()` drain whose innermost enclosing
//!   loop header carries no bound (serve's writer drains ≤256 per wake;
//!   this rule keeps that contract machine-checked).
//! - `call_depth_budget`: functions carrying `// lint: depth_budget(N)`
//!   must keep their longest transitive workspace call chain ≤ N
//!   (recursion counts as unbounded).

use std::collections::{BTreeMap, BTreeSet};

use crate::report::{DepthBudgetEntry, GuardEntry, LockOrderEdge, LockOrderSection};
use crate::{FileScan, Violation, CLASS_WORDS, TRANSITIVE_RULES};

/// Number of propagated property classes (alloc, panic, nondet, block).
pub(crate) const CLASSES: usize = 4;
/// Index of the may-block class in the property arrays.
const BLOCK: usize = 3;

/// How a receiver/qualifier resolved.
enum TypeRes {
    /// A workspace-defined type.
    Ws(String),
    /// A known-external type (std or vendored): no workspace edges.
    External,
    /// Could not resolve: over-approximate by callee name.
    Unknown,
}

/// One function node in the global graph.
pub(crate) struct GraphFn {
    /// Index of the owning file in the `FileScan` slice.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
    /// Display name: `Type::name` or `name`.
    pub qname: String,
    /// Direct facts per class (token scan for 0..3, call sites for block).
    pub facts: [bool; CLASSES],
    /// First offending site per class: (1-based line, token).
    pub fact_site: [Option<(usize, &'static str)>; CLASSES],
    /// Signature-line `allow(transitive_*)` exemptions (never set for
    /// the block class — guards are vouched at the acquisition site).
    pub exempt: [bool; CLASSES],
    /// Resolved callee node indices (sorted, deduplicated).
    pub edges: Vec<usize>,
    /// Per parsed call site (index-aligned with the item's `calls`):
    /// the workspace nodes it may dispatch to.
    pub resolved: Vec<Vec<usize>>,
    /// A call site resolved *unambiguously* back to this function
    /// itself. The edge is dropped from `edges` (it adds nothing to the
    /// taint closure) but the depth pass must still see it: direct
    /// recursion has no finite longest path. Ambiguous self hits
    /// (name-collision over-approximation, e.g. forwarding impls) do
    /// not set this.
    pub self_recursive: bool,
    /// Transitive properties (exemption-aware fixpoint).
    pub eff: [bool; CLASSES],
}

/// Everything the propagation pass hands back to the driver.
pub(crate) struct GraphOutcome {
    /// Transitive-rule violations (one per function × class).
    pub violations: Vec<Violation>,
    /// All graph nodes, in deterministic (file, item) order.
    pub fns: Vec<GraphFn>,
    /// Total resolved call edges.
    pub edge_count: usize,
    /// Every let-bound guard (report section), in (file, line) order.
    pub guards: Vec<GuardEntry>,
    /// The acquisition-order digraph and its cycles (report section).
    pub lock_order: LockOrderSection,
    /// Every budgeted function with its measured depth (report section).
    pub depth_budgets: Vec<DepthBudgetEntry>,
}

/// Classifies a call site as a known-blocking operation (the label is
/// what witness messages print).
///
/// Over-approximates by name: a workspace method named `recv` is tagged
/// blocking too. That costs nothing on its own — `may_block` only
/// matters inside a guard's live range or behind one.
fn blocking_label(call: &crate::items::CallSite) -> Option<&'static str> {
    use crate::items::Recv;
    let name = call.callee.as_str();
    if call.empty_args {
        // Zero-argument method calls: acquisitions and untimed waits.
        // (`io::Read::read(buf)` takes arguments; bare `read()` is the
        // RwLock method.)
        match name {
            "lock" => return Some("mutex acquisition"),
            "read" | "write" if matches!(call.recv, Recv::Chain(_)) => {
                return Some("rwlock acquisition")
            }
            "join" => return Some("thread join"),
            "recv" => return Some("channel recv"),
            "accept" => return Some("socket accept"),
            "wait" => return Some("blocking wait"),
            "flush" if !matches!(call.recv, Recv::Free) => return Some("I/O flush"),
            _ => {}
        }
    }
    if matches!(
        name,
        "recv_timeout"
            | "wait_timeout"
            | "read_line"
            | "read_to_end"
            | "read_to_string"
            | "read_exact"
            | "write_all"
            | "sleep"
    ) {
        return Some("blocking I/O or timed wait");
    }
    if let Recv::Path(segs) = &call.recv {
        match segs.last().map(String::as_str) {
            Some("fs") => return Some("filesystem I/O"),
            Some("File") if matches!(name, "open" | "create") => return Some("file open"),
            Some("TcpStream" | "UnixStream") if name == "connect" => return Some("socket connect"),
            Some("TcpListener" | "UnixListener") if name == "bind" => return Some("socket bind"),
            _ => {}
        }
    }
    None
}

/// Builds the graph over all scanned files, runs both fixpoints, emits
/// transitive violations, and credits `allow(transitive_*)` directives
/// (via [`FileScan::credit`]) that still cover a real propagation.
pub(crate) fn analyze(files: &mut [FileScan]) -> GraphOutcome {
    let mut fns: Vec<GraphFn> = Vec::new();
    // (file idx, class) exemption sites awaiting liveness credit.
    let mut exempt_sites: Vec<(usize, usize, usize)> = Vec::new(); // (gfn, class, line_idx)

    for (fi, file) in files.iter().enumerate() {
        for (ii, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test || item.cfg_gated {
                // Test functions and `#[cfg(...)]`-gated functions are
                // absent from the always-on build: neither contributes
                // nodes, facts, or edges to the call graph, so feature-
                // gated verification helpers need no manual
                // `allow(transitive_*)` vouches.
                continue;
            }
            let qname = match &item.self_type {
                Some(t) => format!("{t}::{}", item.name),
                None => item.name.clone(),
            };
            let mut node = GraphFn {
                file: fi,
                item: ii,
                qname,
                facts: [false; CLASSES],
                fact_site: [None; CLASSES],
                exempt: [false; CLASSES],
                edges: Vec::new(),
                resolved: Vec::new(),
                self_recursive: false,
                eff: [false; CLASSES],
            };
            for (class, rule) in TRANSITIVE_RULES.iter().enumerate() {
                if let Some(site) = file.allow_site(item.sig_line, rule) {
                    node.exempt[class] = true;
                    exempt_sites.push((fns.len(), class, site));
                }
            }
            // The block class reads parsed call sites, not line tokens.
            for call in &item.calls {
                if call.cfg_gated {
                    continue; // feature-gated call: not in the always-on build
                }
                if let Some(label) = blocking_label(call) {
                    node.facts[BLOCK] = true;
                    if node.fact_site[BLOCK].is_none() {
                        node.fact_site[BLOCK] = Some((call.line + 1, label));
                    }
                }
            }
            fns.push(node);
        }
    }

    // Attribute line facts to the innermost enclosing non-test function.
    let mut by_file: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (gi, g) in fns.iter().enumerate() {
        by_file.entry(g.file).or_default().push(gi);
    }
    for (fi, file) in files.iter().enumerate() {
        let Some(candidates) = by_file.get(&fi) else {
            continue;
        };
        for (line, classes) in file.line_facts.iter().enumerate() {
            if classes.iter().all(Option::is_none) {
                continue;
            }
            let owner = candidates
                .iter()
                .copied()
                .filter(|&gi| {
                    let it = &file.parsed.fns[fns[gi].item];
                    it.sig_line <= line && line <= it.end_line
                })
                .max_by_key(|&gi| {
                    let it = &file.parsed.fns[fns[gi].item];
                    (it.depth, it.sig_line)
                });
            if let Some(gi) = owner {
                for (class, token) in classes.iter().enumerate() {
                    if let Some(token) = token {
                        let g = &mut fns[gi];
                        g.facts[class] = true;
                        if g.fact_site[class].is_none() {
                            g.fact_site[class] = Some((line + 1, token));
                        }
                    }
                }
            }
        }
    }

    // Global resolution indexes.
    let mut types: BTreeSet<&str> = BTreeSet::new();
    let mut struct_fields: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
    for file in files.iter() {
        for t in &file.parsed.types {
            types.insert(t);
        }
        for (s, fields) in &file.parsed.struct_fields {
            types.insert(s);
            struct_fields.insert(s, fields);
        }
    }
    let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (gi, g) in fns.iter().enumerate() {
        let item = &files[g.file].parsed.fns[g.item];
        by_name.entry(&item.name).or_default().push(gi);
        match &item.self_type {
            Some(t) => methods
                .entry((t.as_str(), item.name.as_str()))
                .or_default()
                .push(gi),
            None => free_by_name.entry(&item.name).or_default().push(gi),
        }
    }

    // Resolve the receiver chain of `x.y.method(..)` to a type.
    let resolve_chain = |file: &FileScan, item_idx: usize, chain: &[String]| -> TypeRes {
        let item = &file.parsed.fns[item_idx];
        let classify = |ty: &str| -> TypeRes {
            if types.contains(ty) {
                TypeRes::Ws(ty.to_string())
            } else {
                TypeRes::External
            }
        };
        let walk_fields = |mut ty: String, fields: &[String]| -> TypeRes {
            for field in fields {
                if !types.contains(ty.as_str()) {
                    return TypeRes::External;
                }
                match struct_fields.get(ty.as_str()).and_then(|m| m.get(field)) {
                    Some(next) => ty = next.clone(),
                    None => return TypeRes::Unknown,
                }
            }
            classify(&ty)
        };
        let (head, rest) = match chain.split_first() {
            Some(split) => split,
            None => return TypeRes::Unknown,
        };
        if head == "self" {
            return match &item.self_type {
                Some(t) => walk_fields(t.clone(), rest),
                None => TypeRes::Unknown,
            };
        }
        if let Some(local) = item.locals.get(head) {
            return match local {
                crate::items::LocalTy::Known(t) => walk_fields(t.clone(), rest),
                crate::items::LocalTy::SelfChain(fields) => match &item.self_type {
                    Some(t) => {
                        let mut full = fields.clone();
                        full.extend_from_slice(rest);
                        walk_fields(t.clone(), &full)
                    }
                    None => TypeRes::Unknown,
                },
                crate::items::LocalTy::Unknown => TypeRes::Unknown,
            };
        }
        if let Some(param) = item.params.get(head) {
            return match param {
                Some(t) => walk_fields(t.clone(), rest),
                None => TypeRes::Unknown,
            };
        }
        TypeRes::Unknown
    };

    // Edge resolution, kept per call site so the guard and lock-order
    // passes can ask "what can *this* call reach" (edges = the union).
    let mut edge_count = 0usize;
    for (gi, g) in fns.iter_mut().enumerate() {
        let (fi, ii) = (g.file, g.item);
        let file = &files[fi];
        let item = &file.parsed.fns[ii];
        let mut union: BTreeSet<usize> = BTreeSet::new();
        let mut per_call: Vec<Vec<usize>> = Vec::with_capacity(item.calls.len());
        for call in &item.calls {
            if call.cfg_gated {
                // A call behind an inner `#[cfg(...)]` attribute (a
                // feature-gated statement or block inside an ungated
                // function) is absent from the always-on build: no edge,
                // same as calls inside `#[cfg]`-gated items. The empty
                // slot keeps `resolved` index-aligned with `calls` for
                // the guard and lock-order passes.
                per_call.push(Vec::new());
                continue;
            }
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            let name = call.callee.as_str();
            let with_type = |t: &str, targets: &mut BTreeSet<usize>| {
                match methods.get(&(t, name)) {
                    Some(ids) => targets.extend(ids.iter().copied()),
                    // Derived/blanket methods have no item; fall back to
                    // the global name match (usually empty for std
                    // trait names like `clone`).
                    None => {
                        if let Some(ids) = by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                }
            };
            match &call.recv {
                crate::items::Recv::Free => {
                    if let Some(ids) = free_by_name.get(name) {
                        targets.extend(ids.iter().copied());
                    }
                }
                crate::items::Recv::Chain(chain) => match resolve_chain(file, ii, chain) {
                    TypeRes::Ws(t) => with_type(&t, &mut targets),
                    TypeRes::External => {}
                    TypeRes::Unknown => {
                        if let Some(ids) = by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                },
                crate::items::Recv::Unknown => {
                    if let Some(ids) = by_name.get(name) {
                        targets.extend(ids.iter().copied());
                    }
                }
                crate::items::Recv::Path(segs) => match segs.last().map(String::as_str) {
                    None => {
                        if let Some(ids) = free_by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                    Some("Self") => {
                        if let Some(t) = &item.self_type {
                            with_type(&t.clone(), &mut targets);
                        }
                    }
                    Some(q) if types.contains(q) => with_type(q, &mut targets),
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        // External type (Vec::new, Instant::now, ...).
                    }
                    Some(_module) => {
                        // Module/crate path: a free function somewhere.
                        if let Some(ids) = free_by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                },
            }
            if targets.remove(&gi) && targets.is_empty() {
                // An unambiguous self-call makes the call depth
                // unbounded. When other candidates remain the self hit
                // is a name-collision artifact (e.g. a forwarding impl
                // over-approximated by callee name) and is dropped: it
                // adds nothing to the taint closure either way.
                g.self_recursive = true;
            }
            union.extend(targets.iter().copied());
            per_call.push(targets.into_iter().collect());
        }
        edge_count += union.len();
        g.edges = union.into_iter().collect();
        g.resolved = per_call;
    }

    // Exemption-aware fixpoint (what violations see) and the raw
    // exemption-free fixpoint (what judges exemption liveness).
    let eff = fixpoint(&fns, true);
    let raw = fixpoint(&fns, false);
    for (gi, g) in fns.iter_mut().enumerate() {
        g.eff = eff[gi];
    }

    // Credit transitive allows that still cover a real propagation:
    // without the exemption, the function would reach the property
    // through at least one call edge.
    for &(gi, class, line_idx) in &exempt_sites {
        let covers = fns[gi]
            .edges
            .iter()
            .any(|&target| raw[target][class] || fns[target].facts[class]);
        if covers || fns[gi].facts[class] {
            let fi = fns[gi].file;
            files[fi].credit(line_idx, TRANSITIVE_RULES[class]);
        }
    }

    // Transitive violations: only where the *direct* scan was clean —
    // direct facts already fired the token rule in these scopes.
    let mut violations = Vec::new();
    for g in fns.iter() {
        let file = &files[g.file];
        if !file.deny_alloc {
            continue;
        }
        let item = &file.parsed.fns[g.item];
        let applicable = [
            true,                     // alloc: the file is deny_alloc
            file.scope.no_panic,      // panic
            file.scope.deterministic, // nondet
        ];
        for class in 0..3 {
            if !applicable[class] || g.exempt[class] || g.facts[class] {
                continue;
            }
            let culprit = g
                .edges
                .iter()
                .copied()
                .find(|&target| eff[target][class] && !fns[target].exempt[class]);
            if let Some(culprit) = culprit {
                let (path, site) = witness(&fns, &eff, culprit, class);
                let via: Vec<String> = path
                    .iter()
                    .map(|&p| format!("`{}`", fns[p].qname))
                    .collect();
                let site_txt = match site {
                    Some((target, line, token)) => format!(
                        " (`{}` at {}:{})",
                        token.trim_matches(&['.', '(', ':', '<'][..]),
                        files[fns[target].file].rel_path,
                        line
                    ),
                    None => String::new(),
                };
                violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: item.sig_line + 1,
                    rule: TRANSITIVE_RULES[class],
                    related: Vec::new(),
                    message: format!(
                        "`{}` {} via {}{}",
                        g.qname,
                        CLASS_WORDS[class],
                        via.join(" -> "),
                        site_txt
                    ),
                });
            }
        }
    }

    // Directive credits discovered below; applied once the immutable
    // traversal of `fns`/`files` is done.
    let mut credits: Vec<(usize, usize, &'static str)> = Vec::new();

    // ---- guard_across_blocking ---------------------------------------
    let mut guards: Vec<GuardEntry> = Vec::new();
    for g in fns.iter() {
        let file = &files[g.file];
        let item = &file.parsed.fns[g.item];
        for acq in &item.acquires {
            let Some((end_tok, end_line)) = acq.guard_until else {
                continue; // momentary guard: dropped within its statement
            };
            let mut risky = 0usize;
            let mut first: Option<String> = None;
            for (ci, call) in item.calls.iter().enumerate() {
                if call.tok <= acq.tok || call.tok >= end_tok {
                    continue;
                }
                let desc = if let Some(label) = blocking_label(call) {
                    Some(format!(
                        "`{}()` ({label}) at line {}",
                        call.callee,
                        call.line + 1
                    ))
                } else {
                    g.resolved[ci]
                        .iter()
                        .copied()
                        .find(|&t| eff[t][BLOCK])
                        .map(|t| {
                            let (path, site) = witness(&fns, &eff, t, BLOCK);
                            let via: Vec<String> = path
                                .iter()
                                .map(|&p| format!("`{}`", fns[p].qname))
                                .collect();
                            let site_txt = match site {
                                Some((_, line, label)) => format!(" ({label} at line {line})"),
                                None => String::new(),
                            };
                            format!(
                                "call at line {} reaching {}{}",
                                call.line + 1,
                                via.join(" -> "),
                                site_txt
                            )
                        })
                };
                if let Some(desc) = desc {
                    risky += 1;
                    if first.is_none() {
                        first = Some(desc);
                    }
                }
            }
            guards.push(GuardEntry {
                function: g.qname.clone(),
                file: file.rel_path.clone(),
                line: acq.line + 1,
                lock: acq.chain.clone(),
                held_to_line: end_line + 1,
                risky_ops: risky,
            });
            if risky > 0 {
                match file.allow_site(acq.line, "guard_across_blocking") {
                    Some(site) => credits.push((g.file, site, "guard_across_blocking")),
                    None => violations.push(Violation {
                        file: file.rel_path.clone(),
                        line: acq.line + 1,
                        rule: "guard_across_blocking",
                        related: Vec::new(),
                        message: format!(
                            "`{}` holds the `{}.{}()` guard across {} blocking op(s); first: {}",
                            g.qname,
                            acq.chain,
                            acq.method,
                            risky,
                            first.unwrap_or_default()
                        ),
                    }),
                }
            }
        }
    }
    guards.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.lock.cmp(&b.lock))
    });

    // ---- lock_order --------------------------------------------------
    // Transitive acquisition closure: every lock a call into `gi` may
    // take, momentary or held.
    let mut acq_star: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|g| {
            files[g.file].parsed.fns[g.item]
                .acquires
                .iter()
                .map(|a| a.lock.clone())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for gi in 0..fns.len() {
            let add: Vec<String> = fns[gi]
                .edges
                .iter()
                .flat_map(|&t| acq_star[t].iter().cloned())
                .filter(|m| !acq_star[gi].contains(m))
                .collect();
            if !add.is_empty() {
                acq_star[gi].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: while a guard on A is held, lock B is (or may be)
    // acquired. First site per (A, B) pair wins, in node order.
    let mut lock_edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    for g in fns.iter() {
        let file = &files[g.file];
        let item = &file.parsed.fns[g.item];
        for acq in &item.acquires {
            let Some((end_tok, _)) = acq.guard_until else {
                continue;
            };
            for b in &item.acquires {
                if b.tok > acq.tok && b.tok < end_tok && b.lock != acq.lock {
                    lock_edges
                        .entry((acq.lock.clone(), b.lock.clone()))
                        .or_insert((file.rel_path.clone(), b.line + 1, g.qname.clone()));
                }
            }
            for (ci, call) in item.calls.iter().enumerate() {
                if call.tok <= acq.tok || call.tok >= end_tok {
                    continue;
                }
                for &t in &g.resolved[ci] {
                    for m in &acq_star[t] {
                        if *m != acq.lock {
                            lock_edges.entry((acq.lock.clone(), m.clone())).or_insert((
                                file.rel_path.clone(),
                                call.line + 1,
                                g.qname.clone(),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: SCCs of ≥2 locks in the order digraph.
    let cycles = lock_cycles(&lock_edges);
    for cycle in &cycles {
        let in_cycle: BTreeSet<&str> = cycle.iter().map(String::as_str).collect();
        let anchor = lock_edges
            .iter()
            .filter(|((a, b), _)| in_cycle.contains(a.as_str()) && in_cycle.contains(b.as_str()))
            .min_by_key(|(_, (file, line, _))| (file.clone(), *line));
        let Some(((a, b), (efile, eline, efn))) = anchor else {
            continue;
        };
        let fi = files.iter().position(|f| &f.rel_path == efile);
        let allow = fi.and_then(|fi| files[fi].allow_site(eline - 1, "lock_order"));
        match (fi, allow) {
            (Some(fi), Some(site)) => credits.push((fi, site, "lock_order")),
            _ => violations.push(Violation {
                file: efile.clone(),
                line: *eline,
                rule: "lock_order",
                related: Vec::new(),
                message: format!(
                    "lock-order cycle among {{{}}}: `{efn}` takes `{b}` while holding `{a}`, \
                     but another path takes them in the opposite order",
                    cycle.join(", ")
                ),
            }),
        }
    }

    let lock_order = LockOrderSection {
        edges: lock_edges
            .iter()
            .map(|((from, to), (file, line, function))| LockOrderEdge {
                from: from.clone(),
                to: to.clone(),
                file: file.clone(),
                line: *line,
                function: function.clone(),
            })
            .collect(),
        cycles,
    };

    // ---- unbounded_queue ---------------------------------------------
    for g in fns.iter() {
        let file = &files[g.file];
        let item = &file.parsed.fns[g.item];
        for &(line, _tok) in &item.unbounded_recvs {
            match file.allow_site(line, "unbounded_queue") {
                Some(site) => credits.push((g.file, site, "unbounded_queue")),
                None => violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: line + 1,
                    rule: "unbounded_queue",
                    related: Vec::new(),
                    message: format!(
                        "`{}` drains `try_recv()` in a loop with no batch/len bound \
                         (serve's writer caps each wake at ≤256 messages)",
                        g.qname
                    ),
                }),
            }
        }
    }

    // ---- call_depth_budget -------------------------------------------
    let mut depth_memo: Vec<Option<Option<u64>>> = vec![None; fns.len()];
    let mut visiting = vec![false; fns.len()];
    let mut depth_budgets: Vec<DepthBudgetEntry> = Vec::new();
    for (gi, g) in fns.iter().enumerate() {
        let file = &files[g.file];
        let item = &file.parsed.fns[g.item];
        let Some(budget) = file.depth_budget_at(item.sig_line) else {
            continue;
        };
        let depth = depth_of(gi, &fns, &mut depth_memo, &mut visiting);
        depth_budgets.push(DepthBudgetEntry {
            function: g.qname.clone(),
            file: file.rel_path.clone(),
            line: item.sig_line + 1,
            budget,
            depth,
        });
        let over = match depth {
            None => true,
            Some(d) => d > budget,
        };
        if over {
            match file.allow_site(item.sig_line, "call_depth_budget") {
                Some(site) => credits.push((g.file, site, "call_depth_budget")),
                None => violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: item.sig_line + 1,
                    rule: "call_depth_budget",
                    related: Vec::new(),
                    message: match depth {
                        None => format!(
                            "`{}` has unbounded call depth (reaches a recursive cycle); \
                             budget is {budget}",
                            g.qname
                        ),
                        Some(d) => format!(
                            "`{}` transitive call depth {d} exceeds its budget of {budget}",
                            g.qname
                        ),
                    },
                }),
            }
        }
    }
    depth_budgets.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.function.cmp(&b.function))
    });

    for (fi, site, rule) in credits {
        files[fi].credit(site, rule);
    }

    GraphOutcome {
        violations,
        fns,
        edge_count,
        guards,
        lock_order,
        depth_budgets,
    }
}

/// Longest transitive workspace call chain below `gi`; `None` means the
/// function reaches a call cycle, so no finite depth exists. Memoized
/// DFS; a node on the current stack signals a cycle, which poisons every
/// function that can reach it (correct: their longest path is
/// unbounded too).
fn depth_of(
    gi: usize,
    fns: &[GraphFn],
    memo: &mut [Option<Option<u64>>],
    visiting: &mut [bool],
) -> Option<u64> {
    if let Some(v) = memo[gi] {
        return v;
    }
    if fns[gi].self_recursive {
        memo[gi] = Some(None);
        return None;
    }
    if visiting[gi] {
        return None;
    }
    visiting[gi] = true;
    let mut best: Option<u64> = Some(0);
    for &t in &fns[gi].edges {
        match depth_of(t, fns, memo, visiting) {
            None => {
                best = None;
                break;
            }
            Some(d) => {
                if let Some(b) = best {
                    best = Some(b.max(d + 1));
                }
            }
        }
    }
    visiting[gi] = false;
    memo[gi] = Some(best);
    best
}

/// Strongly-connected components of ≥2 locks in the acquisition-order
/// digraph (iterative Kosaraju over sorted adjacency, so the output is
/// deterministic). Each cycle comes back sorted.
fn lock_cycles(edges: &BTreeMap<(String, String), (String, usize, String)>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut radj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
        adj.entry(a).or_default().push(b);
        radj.entry(b).or_default().push(a);
    }
    // Pass 1: finish order on the forward graph.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if !seen.insert(start) {
            continue;
        }
        // Stack of (node, next child index to try).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < children.len() {
                let child = children[*idx];
                *idx += 1;
                if seen.insert(child) {
                    stack.push((child, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
    }
    // Pass 2: components on the transposed graph, reverse finish order.
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    for &start in order.iter().rev() {
        if assigned.contains(start) {
            continue;
        }
        let mut component: Vec<&str> = Vec::new();
        let mut stack = vec![start];
        assigned.insert(start);
        while let Some(node) = stack.pop() {
            component.push(node);
            for &p in radj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if assigned.insert(p) {
                    stack.push(p);
                }
            }
        }
        if component.len() >= 2 {
            let mut cycle: Vec<String> = component.iter().map(|s| s.to_string()).collect();
            cycle.sort();
            cycles.push(cycle);
        }
    }
    cycles.sort();
    cycles
}

/// Least fixed point of the propagation equations. `use_exemptions`
/// selects whether `allow(transitive_*)` stops flow through a node.
fn fixpoint(fns: &[GraphFn], use_exemptions: bool) -> Vec<[bool; CLASSES]> {
    let mut eff: Vec<[bool; CLASSES]> = fns.iter().map(|g| g.facts).collect();
    loop {
        let mut changed = false;
        for gi in 0..fns.len() {
            let mut row = eff[gi];
            for (class, slot) in row.iter_mut().enumerate() {
                if *slot {
                    continue;
                }
                let gained = fns[gi].edges.iter().any(|&target| {
                    eff[target][class] && !(use_exemptions && fns[target].exempt[class])
                });
                if gained {
                    *slot = true;
                    changed = true;
                }
            }
            eff[gi] = row;
        }
        if !changed {
            return eff;
        }
    }
}

/// Shortest call path (BFS, deterministic order) from `start` to a
/// function with a direct fact of `class`; returns the node path and
/// the fact site.
fn witness(
    fns: &[GraphFn],
    eff: &[[bool; CLASSES]],
    start: usize,
    class: usize,
) -> (Vec<usize>, Option<(usize, usize, &'static str)>) {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    let mut seen: BTreeSet<usize> = BTreeSet::from([start]);
    let mut found = None;
    while let Some(node) = queue.pop_front() {
        if fns[node].facts[class] {
            found = Some(node);
            break;
        }
        for &next in &fns[node].edges {
            if eff[next][class] && !fns[next].exempt[class] && seen.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    match found {
        None => (vec![start], None),
        Some(end) => {
            let mut path = vec![end];
            let mut cur = end;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            let site = fns[end].fact_site[class].map(|(line, token)| (end, line, token));
            (path, site)
        }
    }
}
