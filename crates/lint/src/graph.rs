//! Call-graph construction and fixed-point property propagation.
//!
//! Three per-function properties form the lattice (each a 2-point
//! chain, product lattice overall): **may-allocate**, **may-panic**,
//! **nondeterminism taint**. A function's *direct* facts come from the
//! token scan (unallowed forbidden tokens inside its body); its
//! *transitive* value is the least fixed point of
//!
//! ```text
//! eff(f) = facts(f) ∪ ⋃ { eff(g) | f calls g, g not exempted }
//! ```
//!
//! over the intra-workspace call graph. Name resolution is *typed-lite*:
//! receivers are resolved through parameter types, struct field tables,
//! and local-binding inference, falling back to a global name match
//! when the receiver type is unknown — so ambiguity adds edges
//! (over-approximation) rather than hiding them. Calls whose receiver
//! type is known to be external (`Vec`, `Instant`, ...) add no edges;
//! the forbidden std surface is what the token rules watch directly.
//!
//! A function carrying `// lint: allow(transitive_alloc)` (or
//! `transitive_panic` / `transitive_nondet`) on its signature line — or
//! alone on the line directly above — vouches for its entire call
//! subtree: the property neither fires on it nor propagates through it
//! to callers. The dead-allow pass verifies such a vouching directive
//! against an exemption-free fixpoint, so an escape that no longer
//! covers anything real is itself reported.

use std::collections::{BTreeMap, BTreeSet};

use crate::{FileScan, Violation, CLASS_WORDS, TRANSITIVE_RULES};

/// How a receiver/qualifier resolved.
enum TypeRes {
    /// A workspace-defined type.
    Ws(String),
    /// A known-external type (std or vendored): no workspace edges.
    External,
    /// Could not resolve: over-approximate by callee name.
    Unknown,
}

/// One function node in the global graph.
pub(crate) struct GraphFn {
    /// Index of the owning file in the `FileScan` slice.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
    /// Display name: `Type::name` or `name`.
    pub qname: String,
    /// Direct facts per class (from the token scan).
    pub facts: [bool; 3],
    /// First offending site per class: (1-based line, token).
    pub fact_site: [Option<(usize, &'static str)>; 3],
    /// Signature-line `allow(transitive_*)` exemptions.
    pub exempt: [bool; 3],
    /// Resolved callee node indices (sorted, deduplicated).
    pub edges: Vec<usize>,
    /// Transitive properties (exemption-aware fixpoint).
    pub eff: [bool; 3],
}

/// Everything the propagation pass hands back to the driver.
pub(crate) struct GraphOutcome {
    /// Transitive-rule violations (one per function × class).
    pub violations: Vec<Violation>,
    /// All graph nodes, in deterministic (file, item) order.
    pub fns: Vec<GraphFn>,
    /// Total resolved call edges.
    pub edge_count: usize,
}

/// Builds the graph over all scanned files, runs both fixpoints, emits
/// transitive violations, and credits `allow(transitive_*)` directives
/// (via [`FileScan::credit`]) that still cover a real propagation.
pub(crate) fn analyze(files: &mut [FileScan]) -> GraphOutcome {
    let mut fns: Vec<GraphFn> = Vec::new();
    // (file idx, class) exemption sites awaiting liveness credit.
    let mut exempt_sites: Vec<(usize, usize, usize)> = Vec::new(); // (gfn, class, line_idx)

    for (fi, file) in files.iter().enumerate() {
        for (ii, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test || item.cfg_gated {
                // Test functions and `#[cfg(...)]`-gated functions are
                // absent from the always-on build: neither contributes
                // nodes, facts, or edges to the call graph, so feature-
                // gated verification helpers need no manual
                // `allow(transitive_*)` vouches.
                continue;
            }
            let qname = match &item.self_type {
                Some(t) => format!("{t}::{}", item.name),
                None => item.name.clone(),
            };
            let mut node = GraphFn {
                file: fi,
                item: ii,
                qname,
                facts: [false; 3],
                fact_site: [None; 3],
                exempt: [false; 3],
                edges: Vec::new(),
                eff: [false; 3],
            };
            for (class, rule) in TRANSITIVE_RULES.iter().enumerate() {
                if let Some(site) = file.allow_site(item.sig_line, rule) {
                    node.exempt[class] = true;
                    exempt_sites.push((fns.len(), class, site));
                }
            }
            fns.push(node);
        }
    }

    // Attribute line facts to the innermost enclosing non-test function.
    let mut by_file: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (gi, g) in fns.iter().enumerate() {
        by_file.entry(g.file).or_default().push(gi);
    }
    for (fi, file) in files.iter().enumerate() {
        let Some(candidates) = by_file.get(&fi) else {
            continue;
        };
        for (line, classes) in file.line_facts.iter().enumerate() {
            if classes.iter().all(Option::is_none) {
                continue;
            }
            let owner = candidates
                .iter()
                .copied()
                .filter(|&gi| {
                    let it = &file.parsed.fns[fns[gi].item];
                    it.sig_line <= line && line <= it.end_line
                })
                .max_by_key(|&gi| {
                    let it = &file.parsed.fns[fns[gi].item];
                    (it.depth, it.sig_line)
                });
            if let Some(gi) = owner {
                for (class, token) in classes.iter().enumerate() {
                    if let Some(token) = token {
                        let g = &mut fns[gi];
                        g.facts[class] = true;
                        if g.fact_site[class].is_none() {
                            g.fact_site[class] = Some((line + 1, token));
                        }
                    }
                }
            }
        }
    }

    // Global resolution indexes.
    let mut types: BTreeSet<&str> = BTreeSet::new();
    let mut struct_fields: BTreeMap<&str, &BTreeMap<String, String>> = BTreeMap::new();
    for file in files.iter() {
        for t in &file.parsed.types {
            types.insert(t);
        }
        for (s, fields) in &file.parsed.struct_fields {
            types.insert(s);
            struct_fields.insert(s, fields);
        }
    }
    let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (gi, g) in fns.iter().enumerate() {
        let item = &files[g.file].parsed.fns[g.item];
        by_name.entry(&item.name).or_default().push(gi);
        match &item.self_type {
            Some(t) => methods
                .entry((t.as_str(), item.name.as_str()))
                .or_default()
                .push(gi),
            None => free_by_name.entry(&item.name).or_default().push(gi),
        }
    }

    // Resolve the receiver chain of `x.y.method(..)` to a type.
    let resolve_chain = |file: &FileScan, item_idx: usize, chain: &[String]| -> TypeRes {
        let item = &file.parsed.fns[item_idx];
        let classify = |ty: &str| -> TypeRes {
            if types.contains(ty) {
                TypeRes::Ws(ty.to_string())
            } else {
                TypeRes::External
            }
        };
        let walk_fields = |mut ty: String, fields: &[String]| -> TypeRes {
            for field in fields {
                if !types.contains(ty.as_str()) {
                    return TypeRes::External;
                }
                match struct_fields.get(ty.as_str()).and_then(|m| m.get(field)) {
                    Some(next) => ty = next.clone(),
                    None => return TypeRes::Unknown,
                }
            }
            classify(&ty)
        };
        let (head, rest) = match chain.split_first() {
            Some(split) => split,
            None => return TypeRes::Unknown,
        };
        if head == "self" {
            return match &item.self_type {
                Some(t) => walk_fields(t.clone(), rest),
                None => TypeRes::Unknown,
            };
        }
        if let Some(local) = item.locals.get(head) {
            return match local {
                crate::items::LocalTy::Known(t) => walk_fields(t.clone(), rest),
                crate::items::LocalTy::SelfChain(fields) => match &item.self_type {
                    Some(t) => {
                        let mut full = fields.clone();
                        full.extend_from_slice(rest);
                        walk_fields(t.clone(), &full)
                    }
                    None => TypeRes::Unknown,
                },
                crate::items::LocalTy::Unknown => TypeRes::Unknown,
            };
        }
        if let Some(param) = item.params.get(head) {
            return match param {
                Some(t) => walk_fields(t.clone(), rest),
                None => TypeRes::Unknown,
            };
        }
        TypeRes::Unknown
    };

    // Edge resolution.
    let mut edge_count = 0usize;
    for (gi, g) in fns.iter_mut().enumerate() {
        let (fi, ii) = (g.file, g.item);
        let file = &files[fi];
        let item = &file.parsed.fns[ii];
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        for call in &item.calls {
            let name = call.callee.as_str();
            let with_type = |t: &str, targets: &mut BTreeSet<usize>| {
                match methods.get(&(t, name)) {
                    Some(ids) => targets.extend(ids.iter().copied()),
                    // Derived/blanket methods have no item; fall back to
                    // the global name match (usually empty for std
                    // trait names like `clone`).
                    None => {
                        if let Some(ids) = by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                }
            };
            match &call.recv {
                crate::items::Recv::Free => {
                    if let Some(ids) = free_by_name.get(name) {
                        targets.extend(ids.iter().copied());
                    }
                }
                crate::items::Recv::Chain(chain) => match resolve_chain(file, ii, chain) {
                    TypeRes::Ws(t) => with_type(&t, &mut targets),
                    TypeRes::External => {}
                    TypeRes::Unknown => {
                        if let Some(ids) = by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                },
                crate::items::Recv::Unknown => {
                    if let Some(ids) = by_name.get(name) {
                        targets.extend(ids.iter().copied());
                    }
                }
                crate::items::Recv::Path(segs) => match segs.last().map(String::as_str) {
                    None => {
                        if let Some(ids) = free_by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                    Some("Self") => {
                        if let Some(t) = &item.self_type {
                            with_type(&t.clone(), &mut targets);
                        }
                    }
                    Some(q) if types.contains(q) => with_type(q, &mut targets),
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        // External type (Vec::new, Instant::now, ...).
                    }
                    Some(_module) => {
                        // Module/crate path: a free function somewhere.
                        if let Some(ids) = free_by_name.get(name) {
                            targets.extend(ids.iter().copied());
                        }
                    }
                },
            }
        }
        targets.remove(&gi); // self-recursion adds nothing to the closure
        edge_count += targets.len();
        g.edges = targets.into_iter().collect();
    }

    // Exemption-aware fixpoint (what violations see) and the raw
    // exemption-free fixpoint (what judges exemption liveness).
    let eff = fixpoint(&fns, true);
    let raw = fixpoint(&fns, false);
    for (gi, g) in fns.iter_mut().enumerate() {
        g.eff = eff[gi];
    }

    // Credit transitive allows that still cover a real propagation:
    // without the exemption, the function would reach the property
    // through at least one call edge.
    for &(gi, class, line_idx) in &exempt_sites {
        let covers = fns[gi]
            .edges
            .iter()
            .any(|&target| raw[target][class] || fns[target].facts[class]);
        if covers || fns[gi].facts[class] {
            let fi = fns[gi].file;
            files[fi].credit(line_idx, TRANSITIVE_RULES[class]);
        }
    }

    // Transitive violations: only where the *direct* scan was clean —
    // direct facts already fired the token rule in these scopes.
    let mut violations = Vec::new();
    for g in fns.iter() {
        let file = &files[g.file];
        if !file.deny_alloc {
            continue;
        }
        let item = &file.parsed.fns[g.item];
        let applicable = [
            true,                     // alloc: the file is deny_alloc
            file.scope.no_panic,      // panic
            file.scope.deterministic, // nondet
        ];
        for class in 0..3 {
            if !applicable[class] || g.exempt[class] || g.facts[class] {
                continue;
            }
            let culprit = g
                .edges
                .iter()
                .copied()
                .find(|&target| eff[target][class] && !fns[target].exempt[class]);
            if let Some(culprit) = culprit {
                let (path, site) = witness(&fns, &eff, culprit, class);
                let via: Vec<String> = path
                    .iter()
                    .map(|&p| format!("`{}`", fns[p].qname))
                    .collect();
                let site_txt = match site {
                    Some((target, line, token)) => format!(
                        " (`{}` at {}:{})",
                        token.trim_matches(&['.', '(', ':', '<'][..]),
                        files[fns[target].file].rel_path,
                        line
                    ),
                    None => String::new(),
                };
                violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: item.sig_line + 1,
                    rule: TRANSITIVE_RULES[class],
                    message: format!(
                        "`{}` {} via {}{}",
                        g.qname,
                        CLASS_WORDS[class],
                        via.join(" -> "),
                        site_txt
                    ),
                });
            }
        }
    }

    GraphOutcome {
        violations,
        fns,
        edge_count,
    }
}

/// Least fixed point of the propagation equations. `use_exemptions`
/// selects whether `allow(transitive_*)` stops flow through a node.
fn fixpoint(fns: &[GraphFn], use_exemptions: bool) -> Vec<[bool; 3]> {
    let mut eff: Vec<[bool; 3]> = fns.iter().map(|g| g.facts).collect();
    loop {
        let mut changed = false;
        for gi in 0..fns.len() {
            let mut row = eff[gi];
            for (class, slot) in row.iter_mut().enumerate() {
                if *slot {
                    continue;
                }
                let gained = fns[gi].edges.iter().any(|&target| {
                    eff[target][class] && !(use_exemptions && fns[target].exempt[class])
                });
                if gained {
                    *slot = true;
                    changed = true;
                }
            }
            eff[gi] = row;
        }
        if !changed {
            return eff;
        }
    }
}

/// Shortest call path (BFS, deterministic order) from `start` to a
/// function with a direct fact of `class`; returns the node path and
/// the fact site.
fn witness(
    fns: &[GraphFn],
    eff: &[[bool; 3]],
    start: usize,
    class: usize,
) -> (Vec<usize>, Option<(usize, usize, &'static str)>) {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    let mut seen: BTreeSet<usize> = BTreeSet::from([start]);
    let mut found = None;
    while let Some(node) = queue.pop_front() {
        if fns[node].facts[class] {
            found = Some(node);
            break;
        }
        for &next in &fns[node].edges {
            if eff[next][class] && !fns[next].exempt[class] && seen.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    match found {
        None => (vec![start], None),
        Some(end) => {
            let mut path = vec![end];
            let mut cur = end;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            let site = fns[end].fact_site[class].map(|(line, token)| (end, line, token));
            (path, site)
        }
    }
}
