//! Item-level parsing: `fn` items, `impl`/`trait` contexts, `struct`
//! fields, local bindings, and call sites.
//!
//! This is a *recursive-descent item parser over the lexer*, not a Rust
//! frontend: it runs on the [`crate::LexedLine`] stream (literals
//! blanked, comments stripped) and extracts exactly what the call-graph
//! pass needs — which functions exist, what their receiver type is,
//! what their parameters and locals are typed as, and which calls their
//! bodies make. Everything it cannot classify it records as *unknown*,
//! and the resolver (see `graph.rs`) over-approximates unknowns by
//! name, so parser imprecision can add spurious call edges but never
//! hide real ones behind a wrong type.

use std::collections::{BTreeMap, BTreeSet};

use crate::LexedLine;

/// One token of executable code.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A numeric literal, text retained (the dataflow pass evaluates
    /// integer literals; receiver chains like `pair.0.dot(..)` stay
    /// walkable without being mistaken for field names).
    Num(String),
    /// Any other single significant character.
    Punct(char),
}

/// A token plus the 0-based line it came from.
#[derive(Debug, Clone)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Recv {
    /// `name(...)` — a free (or locally-imported) function call.
    Free,
    /// `a::b::name(...)` — qualifier path, last segment first dropped.
    Path(Vec<String>),
    /// `x.y.name(...)` — a pure field chain receiver (idents/`self`).
    Chain(Vec<String>),
    /// Receiver exists but is not a simple chain (call result, index,
    /// parenthesised expression, `?`-propagation, ...).
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Callee name (last path segment / method name).
    pub callee: String,
    /// Receiver / qualifier shape.
    pub recv: Recv,
    /// 0-based line of the callee token.
    pub line: usize,
    /// Token index of the callee (orders call sites against guard scopes).
    pub tok: usize,
    /// `name()` with an empty argument list — how `RwLock::read()` is
    /// told apart from `io::Read::read(buf)`.
    pub empty_args: bool,
    /// The call sits behind an *inner* `#[cfg(...)]` attribute — a
    /// feature-gated statement, block, or match arm inside an otherwise
    /// ungated function. Such calls are absent from the always-on
    /// build, so the call graph drops their edges (see `graph.rs`),
    /// exactly as whole `#[cfg]`-gated items are dropped.
    pub cfg_gated: bool,
}

/// One lock acquisition: a zero-argument `.lock()` / `.read()` /
/// `.write()` call on a resolvable receiver chain.
#[derive(Debug, Clone)]
pub(crate) struct Acquire {
    /// Lock identity: the last receiver-chain segment (`snapshot` for
    /// `self.shared.snapshot.write()`). Same-named fields collide into
    /// one identity — an over-approximation, never a miss.
    pub lock: String,
    /// Full receiver chain for display (`self.shared.snapshot`).
    pub chain: String,
    /// Acquisition method (`lock`, `read`, `write`).
    pub method: String,
    /// 0-based line of the acquisition.
    pub line: usize,
    /// Token index of the method ident.
    pub tok: usize,
    /// `(end token, 0-based end line)` of the enclosing block when the
    /// guard escaped into a `let` binding; `None` for momentary guards
    /// (consumed in-expression or as a `match` scrutinee).
    pub guard_until: Option<(usize, usize)>,
}

/// A local binding's inferred type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LocalTy {
    /// Annotated or inferred base type name (first path segment base).
    Known(String),
    /// `let x = self.a.b;` — resolve through struct field tables later.
    SelfChain(Vec<String>),
    /// Anything else.
    Unknown,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` target base name, if any.
    pub self_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's closing brace (== `sig_line` for
    /// bodyless trait-method declarations).
    pub end_line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// Whether the item carries a `#[cfg(...)]` attribute of its own —
    /// conditionally compiled code (feature gates, platform gates) that
    /// is absent from the always-on build and therefore stays out of
    /// the call graph, like test code.
    pub cfg_gated: bool,
    /// Parameter name → base type name (None when generic/unknown).
    pub params: BTreeMap<String, Option<String>>,
    /// Generic type parameter names declared by the signature.
    pub generics: BTreeSet<String>,
    /// Local `let` bindings, last shadowing wins.
    pub locals: BTreeMap<String, LocalTy>,
    /// Calls made by the body (closures included).
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in the body, in source order.
    pub acquires: Vec<Acquire>,
    /// `try_recv()` drains whose innermost enclosing loop has no
    /// batch/len bound: `(0-based line, token index)`.
    pub unbounded_recvs: Vec<(usize, usize)>,
    /// Brace depth of the body (innermost-wins fact attribution).
    pub depth: usize,
    /// Token index of the `fn` keyword (signature tokens live in
    /// `[sig_tok, body.0)` — the dataflow pass re-parses parameter
    /// types at full fidelity from this range).
    pub sig_tok: usize,
    /// Token range of the body: `(index of the opening `{`, index of
    /// the closing `}`)`. `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
}

/// Everything item-level extracted from one file.
#[derive(Debug, Clone, Default)]
pub(crate) struct ParsedFile {
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// Struct name → (field name → base type name).
    pub struct_fields: BTreeMap<String, BTreeMap<String, String>>,
    /// Struct name → (field name → container *element* base name) for
    /// `Vec<T>` / `Box<[T]>` / `Arc<Vec<T>>` / `[T; N]` / `&[T]` fields
    /// — the dataflow pass types `self.field[i]` through this.
    pub struct_field_elems: BTreeMap<String, BTreeMap<String, String>>,
    /// Every type this file defines (structs, enums, impl targets).
    pub types: BTreeSet<String>,
    /// The full token stream the items were parsed from. `FnItem` token
    /// indices (`sig_tok`, `body`, `CallSite::tok`) index into this.
    pub toks: Vec<SpannedTok>,
    /// Per token: sits inside an inner `#[cfg(...)]`-gated span.
    pub cfg_gated_toks: Vec<bool>,
}

/// Rust keywords that can precede a `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "where", "move", "ref", "mut", "pub", "use", "mod", "const", "static", "let", "fn", "impl",
    "trait", "struct", "enum", "type", "dyn", "crate", "super", "self", "Self", "unsafe", "async",
    "await", "extern",
];

/// Tokenizes blanked code lines into identifiers and puncts.
pub(crate) fn tokenize(lines: &[LexedLine]) -> Vec<SpannedTok> {
    let mut toks = Vec::new();
    for (line_idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: line_idx,
                });
            } else if c.is_ascii_digit() {
                // Consume the whole numeric literal, suffixes included
                // (`1.5e-3f64`, `0xFF`); a trailing `.` only belongs to
                // the number when a digit follows (so `x.0.dot` keeps
                // its dots).
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Num(chars[start..i].iter().collect()),
                    line: line_idx,
                });
            } else if c == '\'' {
                // Lifetime (`'a`) or the shell of a blanked char literal
                // (`''` / `'x'` with contents blanked): skip either.
                if i + 1 < chars.len() && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            } else if c == '"' {
                // Blanked string shells carry no information.
                i += 1;
            } else {
                toks.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line: line_idx,
                });
                i += 1;
            }
        }
    }
    toks
}

pub(crate) fn ident(toks: &[SpannedTok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

pub(crate) fn punct(toks: &[SpannedTok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Skips a balanced `<...>` group starting at the `<`; returns the
/// index just past the matching `>`. `->` and `=>` arrows inside do
/// not close the group.
pub(crate) fn skip_generics_pub(toks: &[SpannedTok], i: usize) -> usize {
    skip_generics(toks, i)
}

fn skip_generics(toks: &[SpannedTok], mut i: usize) -> usize {
    debug_assert_eq!(punct(toks, i), Some('<'));
    let mut depth = 0usize;
    while i < toks.len() {
        match punct(toks, i) {
            Some('<') => depth += 1,
            Some('>') => {
                let arrow = i > 0 && matches!(punct(toks, i - 1), Some('-') | Some('='));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            Some(';') | Some('{') => return i, // malformed; bail before the body
            _ => {}
        }
        i += 1;
    }
    i
}

/// Reads a type's *base name*: skips `&`, `mut`, `dyn`, lifetimes and
/// parens, then returns the first path segment identifier (`Vec` for
/// `Vec<f64>`, `SparseVec` for `&mut SparseVec`, None for `(A, B)`,
/// `[T; N]`, `impl Trait`, `fn(..)`, ...). Returns the index just past
/// whatever was consumed *of the prefix* (callers re-scan for `,`/`)`).
fn type_base(toks: &[SpannedTok], mut i: usize) -> (Option<String>, usize) {
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct('&')) => i += 1,
            Some(Tok::Ident(s)) if s == "mut" || s == "dyn" => i += 1,
            _ => break,
        }
    }
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if s == "impl" || s == "fn" => (None, i + 1),
        Some(Tok::Ident(first)) => {
            // Walk `a::b::C` to its last segment.
            let mut base = first.clone();
            let mut j = i + 1;
            while punct(toks, j) == Some(':') && punct(toks, j + 1) == Some(':') {
                if let Some(seg) = ident(toks, j + 2) {
                    base = seg.to_string();
                    j += 3;
                } else {
                    break;
                }
            }
            (Some(base), j)
        }
        _ => (None, i),
    }
}

/// Parses `fn` signature tokens starting at the `fn` keyword index.
/// Returns the partially-filled item and the index of the body `{`
/// (or of the `;` for bodyless declarations).
fn parse_fn_header(
    toks: &[SpannedTok],
    fn_kw: usize,
    self_type: Option<String>,
) -> Option<(FnItem, usize, bool)> {
    let name = ident(toks, fn_kw + 1)?.to_string();
    let mut item = FnItem {
        name,
        self_type,
        sig_line: toks[fn_kw].line,
        end_line: toks[fn_kw].line,
        is_test: false,
        cfg_gated: false,
        params: BTreeMap::new(),
        generics: BTreeSet::new(),
        locals: BTreeMap::new(),
        calls: Vec::new(),
        acquires: Vec::new(),
        unbounded_recvs: Vec::new(),
        depth: 0,
        sig_tok: fn_kw,
        body: None,
    };
    let mut i = fn_kw + 2;
    if punct(toks, i) == Some('<') {
        // Generic parameter names: the identifiers that directly follow
        // `<` or a top-level `,` (bounds after `:` are skipped).
        let end = skip_generics(toks, i);
        let mut expect_param = true;
        let mut depth = 0usize;
        for spanned in &toks[i..end] {
            match &spanned.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth = depth.saturating_sub(1),
                Tok::Punct(',') if depth == 1 => expect_param = true,
                Tok::Punct(':') if depth == 1 => expect_param = false,
                Tok::Ident(s) if depth == 1 && expect_param && s != "const" => {
                    item.generics.insert(s.clone());
                    expect_param = false;
                }
                _ => {}
            }
        }
        i = end;
    }
    if punct(toks, i) != Some('(') {
        return None;
    }
    // Parameters: at paren depth 1, grab `name: Type` pairs.
    let mut depth = 0usize;
    loop {
        match toks.get(i).map(|t| &t.tok) {
            None => return None,
            Some(Tok::Punct('(')) => {
                depth += 1;
                i += 1;
            }
            Some(Tok::Punct(')')) => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            Some(Tok::Ident(pname))
                if depth == 1
                    && punct(toks, i + 1) == Some(':')
                    && punct(toks, i + 2) != Some(':')
                    && (i == 0
                        || matches!(punct(toks, i - 1), Some('(') | Some(',') | Some('&'))
                        || matches!(ident(toks, i - 1), Some("mut"))) =>
            {
                let (base, next) = type_base(toks, i + 2);
                let ty = base.filter(|b| !item.generics.contains(b));
                item.params.insert(pname.clone(), ty);
                i = next.max(i + 2);
            }
            _ => i += 1,
        }
    }
    // Return type / where clause: scan to the body `{` or a `;`.
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => return Some((item, i, true)),
            Tok::Punct(';') => return Some((item, i, false)),
            // `-> ... <...>` generics may hide `>`-free braces? No:
            // return types and where clauses contain no `{`.
            _ => i += 1,
        }
    }
    None
}

/// Reads the container *element* base name of a field type starting at
/// `i`: drills through `&`/`mut`, one wrapper layer of `Vec`/`Box`/
/// `Arc`/`Rc` generics, and `[T; N]` / `[T]` brackets to the innermost
/// path base (`f64` for `Arc<Vec<f64>>`). `None` when the type has no
/// recognizable element.
fn type_elem(toks: &[SpannedTok], mut i: usize) -> Option<String> {
    let mut wrappers = 0usize;
    for _ in 0..4 {
        loop {
            match toks.get(i).map(|t| &t.tok) {
                Some(Tok::Punct('&')) => i += 1,
                Some(Tok::Ident(s)) if s == "mut" || s == "dyn" => i += 1,
                _ => break,
            }
        }
        if punct(toks, i) == Some('[') {
            // `[T; N]` / `[T]`: the element type starts just inside.
            let (base, _) = type_base(toks, i + 1);
            return base;
        }
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if matches!(s.as_str(), "Vec" | "VecDeque") => {
                if punct(toks, i + 1) != Some('<') {
                    return None;
                }
                wrappers += 1;
                i += 2; // the element is the generic argument
            }
            Some(Tok::Ident(s)) if matches!(s.as_str(), "Box" | "Arc" | "Rc") => {
                if punct(toks, i + 1) != Some('<') {
                    return None;
                }
                i += 2; // transparent wrapper: look through it
            }
            // Innermost path base: only an *element* when at least one
            // container layer was peeled (a bare scalar has none).
            _ if wrappers > 0 => return type_base(toks, i).0,
            _ => return None,
        }
    }
    None
}

/// Parses `struct Name { field: Type, ... }` fields starting just past
/// the struct name; tuple structs and unit structs record no fields.
fn parse_struct_fields(
    toks: &[SpannedTok],
    mut i: usize,
    fields: &mut BTreeMap<String, String>,
    elems: &mut BTreeMap<String, String>,
) -> usize {
    if punct(toks, i) == Some('<') {
        i = skip_generics(toks, i);
    }
    // Skip a possible `where` clause up to `{`, `;` or `(`.
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => break,
            Tok::Punct(';') | Tok::Punct('(') => return i,
            _ => i += 1,
        }
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return i;
                }
            }
            Tok::Ident(fname)
                if depth == 1
                    && punct(toks, i + 1) == Some(':')
                    && punct(toks, i + 2) != Some(':')
                    && fname != "pub" =>
            {
                let (base, next) = type_base(toks, i + 2);
                if let Some(base) = base {
                    fields.insert(fname.clone(), base);
                }
                if let Some(elem) = type_elem(toks, i + 2) {
                    elems.insert(fname.clone(), elem);
                }
                i = next.max(i + 2);
            }
            _ => i += 1,
        }
    }
    i
}

/// Walks a receiver chain backwards from the `.` before a method name.
/// `dot` is the index of that `.`. Returns the chain in source order
/// (`["self", "policy"]`), or None for non-chain receivers.
fn receiver_chain(toks: &[SpannedTok], dot: usize) -> Option<Vec<String>> {
    let mut chain: Vec<String> = Vec::new();
    let mut i = dot; // invariant: toks[i] is the `.` awaiting a receiver
    loop {
        if i == 0 {
            return None;
        }
        match &toks[i - 1].tok {
            Tok::Ident(seg) => {
                chain.push(seg.clone());
                // Another `.` continues the chain; `::` means a path-
                // qualified head (rare; treat as unknown); anything else
                // ends it.
                if i >= 2 && punct(toks, i - 2) == Some('.') {
                    i -= 2;
                } else if i >= 3
                    && punct(toks, i - 2) == Some(':')
                    && punct(toks, i - 3) == Some(':')
                {
                    return None;
                } else {
                    chain.reverse();
                    return Some(chain);
                }
            }
            Tok::Num(_) => {
                // Tuple-field hop (`pair.0.dot(..)`): the hop itself is
                // untypable here, so the chain is unknown.
                return None;
            }
            _ => return None,
        }
    }
}

/// Walks a `a::b::name(` qualifier backwards from the `::` before the
/// callee. `colon2` is the index of the *second* colon (the one
/// directly before the name). Returns segments in source order,
/// excluding the callee itself.
fn qualifier_path(toks: &[SpannedTok], colon2: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    // toks[colon2] == ':' and toks[colon2 - 1] == ':'.
    let mut i = colon2 - 1; // first colon of the `::` pair
    loop {
        if i == 0 {
            break;
        }
        match &toks[i - 1].tok {
            Tok::Ident(seg) => {
                segs.push(seg.clone());
                if i >= 3 && punct(toks, i - 2) == Some(':') && punct(toks, i - 3) == Some(':') {
                    i -= 3;
                } else {
                    break;
                }
            }
            Tok::Punct('>') => {
                // `Vec::<T>::new` style turbofish in the qualifier:
                // give up on the deeper segments (over-approximate).
                break;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Infers a `let` initializer's type from the tokens after the `=`.
fn infer_initializer(toks: &[SpannedTok], mut i: usize, self_type: Option<&str>) -> LocalTy {
    // `Type::...` or `Type { ... }` — both start with an uppercase path.
    if let Some(first) = ident(toks, i) {
        if first == "self" {
            // Pure field chain `self.a.b;` (no calls) resolves later.
            let mut chain = Vec::new();
            i += 1;
            while punct(toks, i) == Some('.') {
                match ident(toks, i + 1) {
                    Some(seg) => {
                        chain.push(seg.to_string());
                        i += 2;
                    }
                    None => return LocalTy::Unknown,
                }
            }
            if matches!(punct(toks, i), Some(';')) && !chain.is_empty() {
                return LocalTy::SelfChain(chain);
            }
            return LocalTy::Unknown;
        }
        if first.chars().next().is_some_and(char::is_uppercase) {
            // Walk the expression path `A::B::c`, tracking the last
            // *uppercase* segment — in `SparseVec::zeros(n)` the type is
            // `SparseVec`, not the constructor-fn segment.
            let mut base = first.to_string();
            let mut next = i + 1;
            loop {
                if punct(toks, next) == Some('<') {
                    next = skip_generics(toks, next);
                }
                if punct(toks, next) == Some(':') && punct(toks, next + 1) == Some(':') {
                    next += 2;
                    if punct(toks, next) == Some('<') {
                        next = skip_generics(toks, next);
                    }
                    match ident(toks, next) {
                        Some(seg) => {
                            if seg.chars().next().is_some_and(char::is_uppercase) {
                                base = seg.to_string();
                            }
                            next += 1;
                        }
                        None => return LocalTy::Unknown,
                    }
                } else {
                    break;
                }
            }
            {
                let base = if base == "Self" {
                    match self_type {
                        Some(t) => t.to_string(),
                        None => return LocalTy::Unknown,
                    }
                } else {
                    base
                };
                // Constructor-ish forms only: `T::ctor(...)`, `T { .. }`,
                // `T(...)` — a bare `CONST` or `T::CONST` stays unknown
                // unless followed by one of these.
                return match toks.get(next).map(|t| &t.tok) {
                    Some(Tok::Punct('(')) | Some(Tok::Punct('{')) => LocalTy::Known(base),
                    _ => LocalTy::Unknown,
                };
            }
        }
    }
    LocalTy::Unknown
}

/// Methods whose zero-argument call on a receiver chain is a lock
/// acquisition (`Mutex::lock`, `RwLock::read`/`write`).
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Whether `toks[i]` is an acquisition method call: `.m()` with `m` in
/// [`ACQUIRE_METHODS`], zero arguments, and a walkable receiver chain.
fn acquisition_at(toks: &[SpannedTok], i: usize) -> Option<Vec<String>> {
    let name = ident(toks, i)?;
    if !ACQUIRE_METHODS.contains(&name)
        || punct(toks, i + 1) != Some('(')
        || punct(toks, i + 2) != Some(')')
        || i == 0
        || punct(toks, i - 1) != Some('.')
    {
        return None;
    }
    receiver_chain(toks, i - 1)
}

/// Skips a balanced `(...)` group starting at the `(`; returns the index
/// just past the matching `)`.
fn skip_parens(toks: &[SpannedTok], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        match punct(toks, i) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Finds the `;` terminating the statement whose initializer starts at
/// `start` (paren/brace/bracket depth 0 relative to `start`).
fn statement_end(toks: &[SpannedTok], mut i: usize) -> Option<usize> {
    let mut depth = 0i64;
    while i < toks.len() {
        match punct(toks, i) {
            Some('(') | Some('{') | Some('[') => depth += 1,
            Some(')') | Some('}') | Some(']') => {
                if depth == 0 {
                    return None; // enclosing block closed first
                }
                depth -= 1;
            }
            Some(';') if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether the initializer tokens `[start, end)` end in a lock
/// acquisition — i.e. the `let` binds the *guard*, not a value derived
/// from it. The acquisition must be terminal modulo `.unwrap()`,
/// `.expect(...)`, and `?`; anything else (`.clone()`, a `match`
/// scrutinee, arithmetic) drops the guard within the statement.
/// Returns the token index of the acquisition method ident.
fn terminal_acquisition(toks: &[SpannedTok], start: usize, end: usize) -> Option<usize> {
    let mut last = None;
    let mut i = start;
    while i < end {
        if acquisition_at(toks, i).is_some() {
            last = Some(i);
        }
        i += 1;
    }
    let acq = last?;
    // Verify the suffix after `.m()` is only unwrap/expect/? up to `;`.
    let mut p = acq + 3;
    loop {
        if p == end {
            return Some(acq);
        }
        match toks.get(p).map(|t| &t.tok) {
            Some(Tok::Punct('?')) => p += 1,
            Some(Tok::Punct('.')) => match ident(toks, p + 1) {
                Some("unwrap") | Some("expect") if punct(toks, p + 2) == Some('(') => {
                    p = skip_parens(toks, p + 2);
                }
                _ => return None,
            },
            _ => return None,
        }
    }
}

/// Loop-header kinds the bound check distinguishes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LoopKind {
    /// `loop { .. }`: never bounded.
    Bare,
    /// `while <cond> { .. }`: bounded iff the condition compares.
    While,
    /// `for x in iter { .. }`: the iterator is the bound.
    For,
}

/// Context kinds the brace-tracking stack distinguishes.
#[derive(Debug, Clone)]
enum Ctx {
    /// `impl Type { ... }` / `trait Name { ... }` — methods bind here.
    Impl(String),
    /// A function body; the index points into `ParsedFile::fns`.
    Fn(usize),
    /// Any other brace (blocks, closures, struct literals, modules).
    Other,
}

/// Walks upward from a `fn` signature line over attribute, blank, and
/// comment-only lines looking for a `#[cfg(...)]` attribute attached to
/// the item (the same upward-attribution shape as the doc-comment
/// check). `#[cfg_attr(...)]` does not count: the item itself is always
/// compiled, only an attribute on it is conditional.
fn cfg_gated_at(lines: &[LexedLine], sig_line: usize) -> bool {
    if lines[sig_line].code.contains("#[cfg(") {
        return true;
    }
    let mut i = sig_line;
    while i > 0 {
        i -= 1;
        let code = lines[i].code.trim();
        if code.is_empty() {
            continue; // blank or comment-only line
        }
        let is_attr = code.starts_with("#[") || (code.ends_with(']') && !code.contains('{'));
        if !is_attr {
            return false; // first real code line above: not our attribute
        }
        if code.contains("#[cfg(") {
            return true;
        }
    }
    false
}

/// Advances past one `#[ ... ]` attribute group, entered at its `#`.
/// Returns the token index just after the matching `]` (or the end of
/// the stream for an unterminated attribute).
fn skip_attr(toks: &[SpannedTok], hash: usize) -> usize {
    let mut j = hash + 2; // past `#` `[`
    let mut depth = 1i32;
    while j < toks.len() && depth > 0 {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Token-level mask of code conditioned on an `#[cfg(...)]` attribute:
/// the statement, expression, block, match arm, or item that the
/// attribute gates. Call sites inside such a span are conditionally
/// compiled, so the graph pass treats them like calls in `#[cfg]`-gated
/// items — no always-on edge. `#[cfg_attr(...)]` does not gate: the
/// code is always compiled, only an attribute on it is conditional.
///
/// The span starts after the attribute (skipping stacked attributes)
/// and ends at the first `;` or `,` at bracket depth 0, or when a brace
/// group opened inside the span closes back to depth 0 — which covers
/// `#[cfg] { .. }` blocks, gated `fn`/`mod` items, and braced match
/// arms. Imprecision is one-sided in the safe direction: a span cut
/// short leaves later calls ungated and merely keeps their edges.
fn cfg_gated_spans(toks: &[SpannedTok]) -> Vec<bool> {
    let mut gated = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let is_cfg = matches!(toks[i].tok, Tok::Punct('#'))
            && punct(toks, i + 1) == Some('[')
            && ident(toks, i + 2) == Some("cfg")
            && punct(toks, i + 3) == Some('(');
        if !is_cfg {
            i += 1;
            continue;
        }
        let mut j = skip_attr(toks, i);
        // Stacked attributes between the cfg and its item all belong to
        // the same gated target.
        while punct(toks, j) == Some('#') && punct(toks, j + 1) == Some('[') {
            j = skip_attr(toks, j);
        }
        let mut depth = 0i32;
        while j < toks.len() {
            let c = match toks[j].tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            };
            match c {
                Some('{') | Some('(') | Some('[') => depth += 1,
                Some('}') | Some(')') | Some(']') => {
                    if depth == 0 {
                        break; // closes the *enclosing* scope, not ours
                    }
                    depth -= 1;
                    gated[j] = true;
                    j += 1;
                    if depth == 0 && c == Some('}') {
                        break; // the gated block/item body just closed
                    }
                    continue;
                }
                Some(';') | Some(',') if depth == 0 => {
                    gated[j] = true;
                    j += 1;
                    break;
                }
                _ => {}
            }
            gated[j] = true;
            j += 1;
        }
        i = j.max(i + 1);
    }
    gated
}

/// Parses one file's token stream into items.
///
/// `in_test` marks lines inside `#[cfg(test)]` modules (computed by the
/// caller's brace scan); functions whose signature line is marked are
/// tagged [`FnItem::is_test`]; functions carrying their own `#[cfg]`
/// attribute are tagged [`FnItem::cfg_gated`].
pub(crate) fn parse_file(lines: &[LexedLine], in_test: &[bool]) -> ParsedFile {
    let toks = tokenize(lines);
    let cfg_gated_toks = cfg_gated_spans(&toks);
    let mut out = ParsedFile::default();
    // Stack entries: (ctx, depth at which its `{` opened).
    let mut stack: Vec<(Ctx, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    // Guard tracking: acquisition token index -> brace depth of the
    // `let` that binds it (the guard lives until that block closes).
    let mut pending_guards: BTreeMap<usize, usize> = BTreeMap::new();
    // Let-bound guards awaiting their block's `}`: (fn, acquire, depth).
    let mut open_guards: Vec<(usize, usize, usize)> = Vec::new();
    // Loop stack: (depth at which the body `{` opened, bounded header).
    let mut loops: Vec<(usize, bool)> = Vec::new();
    // A loop keyword seen, body `{` not yet reached: (header start, kind).
    let mut pending_loop: Option<(usize, LoopKind)> = None;
    // `try_recv()` sites inside a pending loop header: (fn, tok, line).
    let mut pending_header_recvs: Vec<(usize, usize, usize)> = Vec::new();

    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                if let Some((start, kind)) = pending_loop.take() {
                    let bounded = match kind {
                        LoopKind::For => true,
                        LoopKind::Bare => false,
                        // A `while` header with no comparison (`while let
                        // Ok(..) = rx.try_recv()`) drains until empty.
                        LoopKind::While => toks[start..i]
                            .iter()
                            .any(|t| matches!(t.tok, Tok::Punct('<') | Tok::Punct('>'))),
                    };
                    loops.push((depth, bounded));
                    if !bounded {
                        for (fi, tok, line) in pending_header_recvs.drain(..) {
                            out.fns[fi].unbounded_recvs.push((line, tok));
                        }
                    } else {
                        pending_header_recvs.clear();
                    }
                }
                stack.push((Ctx::Other, depth));
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                open_guards.retain(|&(fi, ai, close_depth)| {
                    if close_depth > depth {
                        out.fns[fi].acquires[ai].guard_until = Some((i, toks[i].line));
                        false
                    } else {
                        true
                    }
                });
                while loops.last().is_some_and(|&(d, _)| d >= depth) {
                    loops.pop();
                }
                while let Some((ctx, d)) = stack.last() {
                    if *d >= depth {
                        if let Ctx::Fn(fi) = ctx {
                            out.fns[*fi].end_line = toks[i].line;
                            if let Some(body) = &mut out.fns[*fi].body {
                                body.1 = i;
                            }
                        }
                        stack.pop();
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" => {
                // `impl<G> Trait for Type<G> { ... }` — target is the
                // last path's base. Only at item position: inside a fn
                // body `impl` can only appear in types, which the fn
                // header parser has already consumed, so treat any
                // remaining occurrence conservatively.
                let mut j = i + 1;
                if punct(&toks, j) == Some('<') {
                    j = skip_generics(&toks, j);
                }
                let (first, next) = type_base(&toks, j);
                let mut target = first;
                let mut j = next;
                if punct(&toks, j) == Some('<') {
                    j = skip_generics(&toks, j);
                }
                if ident(&toks, j) == Some("for") {
                    let (second, next) = type_base(&toks, j + 1);
                    target = second.or(target);
                    j = next;
                }
                // Scan to the body `{` (skipping where clauses).
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if punct(&toks, j) == Some('{') {
                    if let Some(target) = target {
                        out.types.insert(target.clone());
                        stack.push((Ctx::Impl(target), depth));
                    } else {
                        stack.push((Ctx::Other, depth));
                    }
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(kw) if kw == "trait" => {
                let name = ident(&toks, i + 1).map(str::to_string);
                let mut j = i + 2;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if punct(&toks, j) == Some('{') {
                    match name {
                        Some(name) => stack.push((Ctx::Impl(name), depth)),
                        None => stack.push((Ctx::Other, depth)),
                    }
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(kw) if (kw == "struct" || kw == "enum") && ident(&toks, i + 1).is_some() => {
                let name = ident(&toks, i + 1).unwrap_or_default().to_string();
                out.types.insert(name.clone());
                if kw == "struct" {
                    let mut fields = BTreeMap::new();
                    let mut elems = BTreeMap::new();
                    let next = parse_struct_fields(&toks, i + 2, &mut fields, &mut elems);
                    out.struct_fields.insert(name.clone(), fields);
                    out.struct_field_elems.insert(name, elems);
                    i = next.max(i + 2);
                } else {
                    i += 2;
                }
            }
            Tok::Ident(kw) if kw == "fn" && ident(&toks, i + 1).is_some() => {
                let self_type = stack.iter().rev().find_map(|(ctx, _)| match ctx {
                    Ctx::Impl(t) => Some(t.clone()),
                    _ => None,
                });
                match parse_fn_header(&toks, i, self_type) {
                    Some((mut item, body, has_body)) => {
                        item.is_test = in_test.get(item.sig_line).copied().unwrap_or(false);
                        item.cfg_gated = cfg_gated_at(lines, item.sig_line);
                        item.depth = depth;
                        let fi = out.fns.len();
                        if has_body {
                            item.body = Some((body, body));
                            out.fns.push(item);
                            stack.push((Ctx::Fn(fi), depth));
                            depth += 1;
                        } else {
                            out.fns.push(item);
                        }
                        i = body + 1;
                    }
                    None => i += 1,
                }
            }
            Tok::Ident(kw) if kw == "while" || kw == "loop" || kw == "for" => {
                let kind = match kw.as_str() {
                    "while" => LoopKind::While,
                    "for" => LoopKind::For,
                    _ => LoopKind::Bare,
                };
                pending_loop = Some((i, kind));
                pending_header_recvs.clear();
                i += 1;
            }
            Tok::Punct(';') => {
                // A `;` before the body `{` means the pending keyword was
                // not a loop header after all (e.g. `for<'a>` in a type).
                pending_loop = None;
                pending_header_recvs.clear();
                i += 1;
            }
            Tok::Ident(kw) if kw == "let" => {
                // Only meaningful inside a fn body.
                let cur_fn = stack.iter().rev().find_map(|(ctx, _)| match ctx {
                    Ctx::Fn(fi) => Some(*fi),
                    _ => None,
                });
                let mut j = i + 1;
                if ident(&toks, j) == Some("mut") {
                    j += 1;
                }
                if let (Some(fi), Some(name)) = (cur_fn, ident(&toks, j)) {
                    if name.chars().next().is_some_and(char::is_lowercase) || name.starts_with('_')
                    {
                        let name = name.to_string();
                        let mut k = j + 1;
                        let ty = if punct(&toks, k) == Some(':') && punct(&toks, k + 1) != Some(':')
                        {
                            let (base, _next) = type_base(&toks, k + 1);
                            match base {
                                Some(b) if !out.fns[fi].generics.contains(&b) => LocalTy::Known(b),
                                _ => LocalTy::Unknown,
                            }
                        } else if punct(&toks, k) == Some('=') && punct(&toks, k + 1) != Some('=') {
                            k += 1;
                            let self_ty = out.fns[fi].self_type.clone();
                            infer_initializer(&toks, k, self_ty.as_deref())
                        } else {
                            LocalTy::Unknown
                        };
                        out.fns[fi].locals.insert(name, ty);
                        // Guard tracking: a `let` whose initializer *ends*
                        // in a lock acquisition binds the guard for the
                        // rest of the block. (`while let` / `if let` bind
                        // per-iteration and are handled by their scopes.)
                        let header_let = i > 0
                            && matches!(&toks[i - 1].tok,
                                Tok::Ident(p) if p == "while" || p == "if");
                        if !header_let {
                            let mut e = j + 1;
                            let eq = loop {
                                match toks.get(e).map(|t| &t.tok) {
                                    None | Some(Tok::Punct(';')) | Some(Tok::Punct('{')) => {
                                        break None
                                    }
                                    Some(Tok::Punct('=')) if punct(&toks, e + 1) != Some('=') => {
                                        break Some(e)
                                    }
                                    _ => e += 1,
                                }
                            };
                            if let Some(eq) = eq {
                                if let Some(end) = statement_end(&toks, eq + 1) {
                                    if let Some(acq) = terminal_acquisition(&toks, eq + 1, end) {
                                        pending_guards.insert(acq, depth);
                                    }
                                }
                            }
                        }
                    }
                }
                i = j + 1;
            }
            Tok::Ident(name) if punct(&toks, i + 1) == Some('(') => {
                let cur_fn = stack.iter().rev().find_map(|(ctx, _)| match ctx {
                    Ctx::Fn(fi) => Some(*fi),
                    _ => None,
                });
                let skip = cur_fn.is_none()
                    || KEYWORDS.contains(&name.as_str())
                    || (i > 0 && punct(&toks, i - 1) == Some('#')); // attrs
                if !skip {
                    let recv = if i > 0 && punct(&toks, i - 1) == Some('.') {
                        match receiver_chain(&toks, i - 1) {
                            Some(chain) => Recv::Chain(chain),
                            None => Recv::Unknown,
                        }
                    } else if i > 1
                        && punct(&toks, i - 1) == Some(':')
                        && punct(&toks, i - 2) == Some(':')
                    {
                        Recv::Path(qualifier_path(&toks, i - 1))
                    } else {
                        Recv::Free
                    };
                    let empty_args = punct(&toks, i + 2) == Some(')');
                    if let Some(fi) = cur_fn {
                        if empty_args && ACQUIRE_METHODS.contains(&name.as_str()) {
                            if let Recv::Chain(chain) = &recv {
                                let ai = out.fns[fi].acquires.len();
                                out.fns[fi].acquires.push(Acquire {
                                    lock: chain.last().cloned().unwrap_or_default(),
                                    chain: chain.join("."),
                                    method: name.clone(),
                                    line: toks[i].line,
                                    tok: i,
                                    guard_until: None,
                                });
                                if let Some(close_depth) = pending_guards.remove(&i) {
                                    open_guards.push((fi, ai, close_depth));
                                }
                            }
                        }
                        if name == "try_recv"
                            && empty_args
                            && i > 0
                            && punct(&toks, i - 1) == Some('.')
                        {
                            if pending_loop.is_some() {
                                pending_header_recvs.push((fi, i, toks[i].line));
                            } else if loops.last().is_some_and(|&(_, bounded)| !bounded) {
                                out.fns[fi].unbounded_recvs.push((toks[i].line, i));
                            }
                        }
                        out.fns[fi].calls.push(CallSite {
                            callee: name.clone(),
                            recv,
                            line: toks[i].line,
                            tok: i,
                            empty_args,
                            cfg_gated: cfg_gated_toks[i],
                        });
                    }
                }
                i += 1;
            }
            Tok::Ident(name) if punct(&toks, i + 1) == Some('!') => {
                // Macro invocation: skip the bang so `name(` above never
                // sees it as a call.
                let _ = name;
                i += 2;
            }
            _ => i += 1,
        }
    }
    out.toks = toks;
    out.cfg_gated_toks = cfg_gated_toks;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse(src: &str) -> ParsedFile {
        let lines = lex(src);
        let in_test = vec![false; lines.len()];
        parse_file(&lines, &in_test)
    }

    #[test]
    fn extracts_free_fns_and_methods() {
        let src = "\
fn free_one() {}
struct Agent { policy: Policy }
impl Agent {
    fn decide(&mut self, view: &View) -> usize { self.policy.sample(view) }
}
impl Scheduler for Agent {
    fn name(&self) -> &str { helper() }
}
";
        let p = parse(src);
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free_one".into(), None),
                ("decide".into(), Some("Agent".into())),
                ("name".into(), Some("Agent".into())),
            ]
        );
        assert_eq!(p.struct_fields["Agent"]["policy"], "Policy");
        assert_eq!(p.fns[1].params["view"], Some("View".into()));
        let call = &p.fns[1].calls[0];
        assert_eq!(call.callee, "sample");
        assert_eq!(call.recv, Recv::Chain(vec!["self".into(), "policy".into()]));
        assert_eq!(p.fns[2].calls[0].recv, Recv::Free);
    }

    #[test]
    fn generic_params_are_not_types() {
        let src = "fn run<S, F>(sim: &Sim, make: F) -> usize where F: Fn(u64) -> S { make(1) }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1, "{:?}", p.fns);
        assert!(p.fns[0].generics.contains("S"));
        assert!(p.fns[0].generics.contains("F"));
        assert_eq!(p.fns[0].params["sim"], Some("Sim".into()));
        assert_eq!(p.fns[0].params["make"], None);
    }

    #[test]
    fn qualified_calls_and_locals() {
        let src = "\
fn build(dim: usize) {
    let v = SparseVec::zeros(dim);
    let w: DokMatrix = helper();
    v.dot(&w);
    megh_linalg::mean(&[1.0]);
}
";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.locals["v"], LocalTy::Known("SparseVec".into()));
        assert_eq!(f.locals["w"], LocalTy::Known("DokMatrix".into()));
        let kinds: Vec<(&str, &Recv)> = f
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), &c.recv))
            .collect();
        assert_eq!(kinds[0].0, "zeros");
        assert_eq!(*kinds[0].1, Recv::Path(vec!["SparseVec".into()]));
        assert_eq!(kinds[2].0, "dot");
        assert_eq!(*kinds[2].1, Recv::Chain(vec!["v".into()]));
        assert_eq!(kinds[3].0, "mean");
        assert_eq!(*kinds[3].1, Recv::Path(vec!["megh_linalg".into()]));
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let src = "\
fn publish(&self) {
    let guard = self.shared.snapshot.write().unwrap();
    use_it(&guard);
}
";
        let p = parse(src);
        let acq = &p.fns[0].acquires;
        assert_eq!(acq.len(), 1, "{acq:?}");
        assert_eq!(acq[0].lock, "snapshot");
        assert_eq!(acq[0].chain, "self.shared.snapshot");
        assert_eq!(acq[0].method, "write");
        // Guard closes at the fn's `}` on line 3 (0-based).
        assert_eq!(acq[0].guard_until.map(|(_, l)| l), Some(3));
    }

    #[test]
    fn derived_value_and_match_scrutinee_are_momentary() {
        let src = "\
fn peek(&self) -> usize {
    let n = self.inner.lock().unwrap().len();
    let snapshot = match self.shared.snapshot.read() {
        Ok(g) => g.clone(),
        Err(_) => return 0,
    };
    n + snapshot.len()
}
";
        let p = parse(src);
        let acq = &p.fns[0].acquires;
        assert_eq!(acq.len(), 2, "{acq:?}");
        // `.len()` after the unwrap drops the guard within the statement;
        // the match scrutinee guard never escapes into the `let`.
        assert!(acq.iter().all(|a| a.guard_until.is_none()), "{acq:?}");
    }

    #[test]
    fn while_let_header_guard_is_momentary() {
        let src = "\
fn drain(&self) {
    while let Ok(g) = self.m.lock() {
        g.pop();
    }
}
";
        let p = parse(src);
        let acq = &p.fns[0].acquires;
        assert_eq!(acq.len(), 1, "{acq:?}");
        assert!(acq[0].guard_until.is_none());
    }

    #[test]
    fn try_recv_loop_boundedness() {
        let src = "\
fn pump(rx: &Receiver) {
    while batch.len() < MAX_BATCH {
        match rx.try_recv() { _ => break }
    }
    while let Ok(msg) = rx.try_recv() {
        drop(msg);
    }
    for _ in 0..4 {
        let _ = rx.try_recv();
    }
}
";
        let p = parse(src);
        let recvs = &p.fns[0].unbounded_recvs;
        // Only the `while let` drain on line 4 (0-based) is unbounded.
        assert_eq!(recvs.len(), 1, "{recvs:?}");
        assert_eq!(recvs[0].0, 4);
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "\
fn load(&self, buf: &mut [u8]) {
    let n = self.stream.read(buf).unwrap();
    consume(n);
}
";
        let p = parse(src);
        assert!(p.fns[0].acquires.is_empty(), "{:?}", p.fns[0].acquires);
        let call = &p.fns[0].calls[0];
        assert_eq!(call.callee, "read");
        assert!(!call.empty_args);
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "fn f() { vec![1, 2]; format!(\"x\"); real_call(); }\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["real_call"]);
    }

    #[test]
    fn call_result_receivers_are_unknown() {
        let src = "fn f(xs: &[f64]) { xs.iter().map(g).sum::<f64>(); (a + b).norm(); }\n";
        let p = parse(src);
        for call in &p.fns[0].calls {
            if call.callee == "map" || call.callee == "norm" {
                assert_eq!(call.recv, Recv::Unknown, "{call:?}");
            }
        }
    }

    #[test]
    fn nested_fn_bodies_attribute_calls_to_innermost() {
        let src = "\
fn outer() {
    fn inner() { deep_call(); }
    outer_call();
}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, "outer_call");
        assert_eq!(inner.calls[0].callee, "deep_call");
    }

    #[test]
    fn struct_literal_initializer_is_known() {
        let src = "fn f() { let cfg = MeghConfig { seed: 1 }; cfg.validate(); }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].locals["cfg"], LocalTy::Known("MeghConfig".into()));
    }

    #[test]
    fn cfg_gated_call_sites_are_tagged() {
        // The four shapes an inner `#[cfg]` gates in this workspace: a
        // statement, a block, a struct-literal field, and a match arm.
        let src = "\
impl Agent {
    fn update(&mut self) {
        self.step();
        #[cfg(feature = \"check-invariants\")]
        self.verify_update();
        #[cfg(feature = \"check-invariants\")]
        {
            let structure = self.check_consistency();
            helper(structure);
        }
        self.finish();
    }
    fn build(kind: u8) -> Agent {
        Agent {
            policy: make_policy(),
            #[cfg(feature = \"check-invariants\")]
            shadow: Self::shadow_for(),
        };
        match kind {
            #[cfg(unix)]
            0 => unix_path(),
            _ => default_path(),
        }
    }
}
";
        let p = parse(src);
        let gated_of = |f: &FnItem, callee: &str| {
            f.calls
                .iter()
                .find(|c| c.callee == callee)
                .map(|c| c.cfg_gated)
        };
        let update = &p.fns[0];
        assert_eq!(gated_of(update, "step"), Some(false));
        assert_eq!(gated_of(update, "verify_update"), Some(true));
        assert_eq!(gated_of(update, "check_consistency"), Some(true));
        assert_eq!(gated_of(update, "helper"), Some(true));
        assert_eq!(gated_of(update, "finish"), Some(false));
        let build = &p.fns[1];
        assert_eq!(gated_of(build, "make_policy"), Some(false));
        assert_eq!(gated_of(build, "shadow_for"), Some(true));
        assert_eq!(gated_of(build, "unix_path"), Some(true));
        assert_eq!(gated_of(build, "default_path"), Some(false));
    }

    #[test]
    fn cfg_attr_does_not_gate_calls() {
        // `#[cfg_attr(..)]` conditions an attribute, not the code.
        let src = "\
fn f() {
    #[cfg_attr(test, allow(dead_code))]
    let x = helper();
    other(x);
}
";
        let p = parse(src);
        for call in &p.fns[0].calls {
            assert!(!call.cfg_gated, "{call:?}");
        }
    }
}
