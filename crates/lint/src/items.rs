//! Item-level parsing: `fn` items, `impl`/`trait` contexts, `struct`
//! fields, local bindings, and call sites.
//!
//! This is a *recursive-descent item parser over the lexer*, not a Rust
//! frontend: it runs on the [`crate::LexedLine`] stream (literals
//! blanked, comments stripped) and extracts exactly what the call-graph
//! pass needs — which functions exist, what their receiver type is,
//! what their parameters and locals are typed as, and which calls their
//! bodies make. Everything it cannot classify it records as *unknown*,
//! and the resolver (see `graph.rs`) over-approximates unknowns by
//! name, so parser imprecision can add spurious call edges but never
//! hide real ones behind a wrong type.

use std::collections::{BTreeMap, BTreeSet};

use crate::LexedLine;

/// One token of executable code.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A numeric literal (kept so receiver chains like `pair.0.dot(..)`
    /// stay walkable without being mistaken for field names).
    Num,
    /// Any other single significant character.
    Punct(char),
}

/// A token plus the 0-based line it came from.
#[derive(Debug, Clone)]
pub(crate) struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Recv {
    /// `name(...)` — a free (or locally-imported) function call.
    Free,
    /// `a::b::name(...)` — qualifier path, last segment first dropped.
    Path(Vec<String>),
    /// `x.y.name(...)` — a pure field chain receiver (idents/`self`).
    Chain(Vec<String>),
    /// Receiver exists but is not a simple chain (call result, index,
    /// parenthesised expression, `?`-propagation, ...).
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Callee name (last path segment / method name).
    pub callee: String,
    /// Receiver / qualifier shape.
    pub recv: Recv,
}

/// A local binding's inferred type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LocalTy {
    /// Annotated or inferred base type name (first path segment base).
    Known(String),
    /// `let x = self.a.b;` — resolve through struct field tables later.
    SelfChain(Vec<String>),
    /// Anything else.
    Unknown,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` target base name, if any.
    pub self_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's closing brace (== `sig_line` for
    /// bodyless trait-method declarations).
    pub end_line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// Whether the item carries a `#[cfg(...)]` attribute of its own —
    /// conditionally compiled code (feature gates, platform gates) that
    /// is absent from the always-on build and therefore stays out of
    /// the call graph, like test code.
    pub cfg_gated: bool,
    /// Parameter name → base type name (None when generic/unknown).
    pub params: BTreeMap<String, Option<String>>,
    /// Generic type parameter names declared by the signature.
    pub generics: BTreeSet<String>,
    /// Local `let` bindings, last shadowing wins.
    pub locals: BTreeMap<String, LocalTy>,
    /// Calls made by the body (closures included).
    pub calls: Vec<CallSite>,
    /// Brace depth of the body (innermost-wins fact attribution).
    pub depth: usize,
}

/// Everything item-level extracted from one file.
#[derive(Debug, Clone, Default)]
pub(crate) struct ParsedFile {
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// Struct name → (field name → base type name).
    pub struct_fields: BTreeMap<String, BTreeMap<String, String>>,
    /// Every type this file defines (structs, enums, impl targets).
    pub types: BTreeSet<String>,
}

/// Rust keywords that can precede a `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "where", "move", "ref", "mut", "pub", "use", "mod", "const", "static", "let", "fn", "impl",
    "trait", "struct", "enum", "type", "dyn", "crate", "super", "self", "Self", "unsafe", "async",
    "await", "extern",
];

/// Tokenizes blanked code lines into identifiers and puncts.
pub(crate) fn tokenize(lines: &[LexedLine]) -> Vec<SpannedTok> {
    let mut toks = Vec::new();
    for (line_idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: line_idx,
                });
            } else if c.is_ascii_digit() {
                // Consume the whole numeric literal, suffixes included
                // (`1.5e-3f64`, `0xFF`); a trailing `.` only belongs to
                // the number when a digit follows (so `x.0.dot` keeps
                // its dots).
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Num,
                    line: line_idx,
                });
            } else if c == '\'' {
                // Lifetime (`'a`) or the shell of a blanked char literal
                // (`''` / `'x'` with contents blanked): skip either.
                if i + 1 < chars.len() && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            } else if c == '"' {
                // Blanked string shells carry no information.
                i += 1;
            } else {
                toks.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line: line_idx,
                });
                i += 1;
            }
        }
    }
    toks
}

fn ident(toks: &[SpannedTok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct(toks: &[SpannedTok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Skips a balanced `<...>` group starting at the `<`; returns the
/// index just past the matching `>`. `->` and `=>` arrows inside do
/// not close the group.
fn skip_generics(toks: &[SpannedTok], mut i: usize) -> usize {
    debug_assert_eq!(punct(toks, i), Some('<'));
    let mut depth = 0usize;
    while i < toks.len() {
        match punct(toks, i) {
            Some('<') => depth += 1,
            Some('>') => {
                let arrow = i > 0 && matches!(punct(toks, i - 1), Some('-') | Some('='));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            Some(';') | Some('{') => return i, // malformed; bail before the body
            _ => {}
        }
        i += 1;
    }
    i
}

/// Reads a type's *base name*: skips `&`, `mut`, `dyn`, lifetimes and
/// parens, then returns the first path segment identifier (`Vec` for
/// `Vec<f64>`, `SparseVec` for `&mut SparseVec`, None for `(A, B)`,
/// `[T; N]`, `impl Trait`, `fn(..)`, ...). Returns the index just past
/// whatever was consumed *of the prefix* (callers re-scan for `,`/`)`).
fn type_base(toks: &[SpannedTok], mut i: usize) -> (Option<String>, usize) {
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct('&')) => i += 1,
            Some(Tok::Ident(s)) if s == "mut" || s == "dyn" => i += 1,
            _ => break,
        }
    }
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if s == "impl" || s == "fn" => (None, i + 1),
        Some(Tok::Ident(first)) => {
            // Walk `a::b::C` to its last segment.
            let mut base = first.clone();
            let mut j = i + 1;
            while punct(toks, j) == Some(':') && punct(toks, j + 1) == Some(':') {
                if let Some(seg) = ident(toks, j + 2) {
                    base = seg.to_string();
                    j += 3;
                } else {
                    break;
                }
            }
            (Some(base), j)
        }
        _ => (None, i),
    }
}

/// Parses `fn` signature tokens starting at the `fn` keyword index.
/// Returns the partially-filled item and the index of the body `{`
/// (or of the `;` for bodyless declarations).
fn parse_fn_header(
    toks: &[SpannedTok],
    fn_kw: usize,
    self_type: Option<String>,
) -> Option<(FnItem, usize, bool)> {
    let name = ident(toks, fn_kw + 1)?.to_string();
    let mut item = FnItem {
        name,
        self_type,
        sig_line: toks[fn_kw].line,
        end_line: toks[fn_kw].line,
        is_test: false,
        cfg_gated: false,
        params: BTreeMap::new(),
        generics: BTreeSet::new(),
        locals: BTreeMap::new(),
        calls: Vec::new(),
        depth: 0,
    };
    let mut i = fn_kw + 2;
    if punct(toks, i) == Some('<') {
        // Generic parameter names: the identifiers that directly follow
        // `<` or a top-level `,` (bounds after `:` are skipped).
        let end = skip_generics(toks, i);
        let mut expect_param = true;
        let mut depth = 0usize;
        for spanned in &toks[i..end] {
            match &spanned.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth = depth.saturating_sub(1),
                Tok::Punct(',') if depth == 1 => expect_param = true,
                Tok::Punct(':') if depth == 1 => expect_param = false,
                Tok::Ident(s) if depth == 1 && expect_param && s != "const" => {
                    item.generics.insert(s.clone());
                    expect_param = false;
                }
                _ => {}
            }
        }
        i = end;
    }
    if punct(toks, i) != Some('(') {
        return None;
    }
    // Parameters: at paren depth 1, grab `name: Type` pairs.
    let mut depth = 0usize;
    loop {
        match toks.get(i).map(|t| &t.tok) {
            None => return None,
            Some(Tok::Punct('(')) => {
                depth += 1;
                i += 1;
            }
            Some(Tok::Punct(')')) => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            Some(Tok::Ident(pname))
                if depth == 1
                    && punct(toks, i + 1) == Some(':')
                    && punct(toks, i + 2) != Some(':')
                    && (i == 0
                        || matches!(punct(toks, i - 1), Some('(') | Some(',') | Some('&'))
                        || matches!(ident(toks, i - 1), Some("mut"))) =>
            {
                let (base, next) = type_base(toks, i + 2);
                let ty = base.filter(|b| !item.generics.contains(b));
                item.params.insert(pname.clone(), ty);
                i = next.max(i + 2);
            }
            _ => i += 1,
        }
    }
    // Return type / where clause: scan to the body `{` or a `;`.
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => return Some((item, i, true)),
            Tok::Punct(';') => return Some((item, i, false)),
            // `-> ... <...>` generics may hide `>`-free braces? No:
            // return types and where clauses contain no `{`.
            _ => i += 1,
        }
    }
    None
}

/// Parses `struct Name { field: Type, ... }` fields starting just past
/// the struct name; tuple structs and unit structs record no fields.
fn parse_struct_fields(
    toks: &[SpannedTok],
    mut i: usize,
    fields: &mut BTreeMap<String, String>,
) -> usize {
    if punct(toks, i) == Some('<') {
        i = skip_generics(toks, i);
    }
    // Skip a possible `where` clause up to `{`, `;` or `(`.
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => break,
            Tok::Punct(';') | Tok::Punct('(') => return i,
            _ => i += 1,
        }
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return i;
                }
            }
            Tok::Ident(fname)
                if depth == 1
                    && punct(toks, i + 1) == Some(':')
                    && punct(toks, i + 2) != Some(':')
                    && fname != "pub" =>
            {
                let (base, next) = type_base(toks, i + 2);
                if let Some(base) = base {
                    fields.insert(fname.clone(), base);
                }
                i = next.max(i + 2);
            }
            _ => i += 1,
        }
    }
    i
}

/// Walks a receiver chain backwards from the `.` before a method name.
/// `dot` is the index of that `.`. Returns the chain in source order
/// (`["self", "policy"]`), or None for non-chain receivers.
fn receiver_chain(toks: &[SpannedTok], dot: usize) -> Option<Vec<String>> {
    let mut chain: Vec<String> = Vec::new();
    let mut i = dot; // invariant: toks[i] is the `.` awaiting a receiver
    loop {
        if i == 0 {
            return None;
        }
        match &toks[i - 1].tok {
            Tok::Ident(seg) => {
                chain.push(seg.clone());
                // Another `.` continues the chain; `::` means a path-
                // qualified head (rare; treat as unknown); anything else
                // ends it.
                if i >= 2 && punct(toks, i - 2) == Some('.') {
                    i -= 2;
                } else if i >= 3
                    && punct(toks, i - 2) == Some(':')
                    && punct(toks, i - 3) == Some(':')
                {
                    return None;
                } else {
                    chain.reverse();
                    return Some(chain);
                }
            }
            Tok::Num => {
                // Tuple-field hop (`pair.0.dot(..)`): the hop itself is
                // untypable here, so the chain is unknown.
                return None;
            }
            _ => return None,
        }
    }
}

/// Walks a `a::b::name(` qualifier backwards from the `::` before the
/// callee. `colon2` is the index of the *second* colon (the one
/// directly before the name). Returns segments in source order,
/// excluding the callee itself.
fn qualifier_path(toks: &[SpannedTok], colon2: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    // toks[colon2] == ':' and toks[colon2 - 1] == ':'.
    let mut i = colon2 - 1; // first colon of the `::` pair
    loop {
        if i == 0 {
            break;
        }
        match &toks[i - 1].tok {
            Tok::Ident(seg) => {
                segs.push(seg.clone());
                if i >= 3 && punct(toks, i - 2) == Some(':') && punct(toks, i - 3) == Some(':') {
                    i -= 3;
                } else {
                    break;
                }
            }
            Tok::Punct('>') => {
                // `Vec::<T>::new` style turbofish in the qualifier:
                // give up on the deeper segments (over-approximate).
                break;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Infers a `let` initializer's type from the tokens after the `=`.
fn infer_initializer(toks: &[SpannedTok], mut i: usize, self_type: Option<&str>) -> LocalTy {
    // `Type::...` or `Type { ... }` — both start with an uppercase path.
    if let Some(first) = ident(toks, i) {
        if first == "self" {
            // Pure field chain `self.a.b;` (no calls) resolves later.
            let mut chain = Vec::new();
            i += 1;
            while punct(toks, i) == Some('.') {
                match ident(toks, i + 1) {
                    Some(seg) => {
                        chain.push(seg.to_string());
                        i += 2;
                    }
                    None => return LocalTy::Unknown,
                }
            }
            if matches!(punct(toks, i), Some(';')) && !chain.is_empty() {
                return LocalTy::SelfChain(chain);
            }
            return LocalTy::Unknown;
        }
        if first.chars().next().is_some_and(char::is_uppercase) {
            // Walk the expression path `A::B::c`, tracking the last
            // *uppercase* segment — in `SparseVec::zeros(n)` the type is
            // `SparseVec`, not the constructor-fn segment.
            let mut base = first.to_string();
            let mut next = i + 1;
            loop {
                if punct(toks, next) == Some('<') {
                    next = skip_generics(toks, next);
                }
                if punct(toks, next) == Some(':') && punct(toks, next + 1) == Some(':') {
                    next += 2;
                    if punct(toks, next) == Some('<') {
                        next = skip_generics(toks, next);
                    }
                    match ident(toks, next) {
                        Some(seg) => {
                            if seg.chars().next().is_some_and(char::is_uppercase) {
                                base = seg.to_string();
                            }
                            next += 1;
                        }
                        None => return LocalTy::Unknown,
                    }
                } else {
                    break;
                }
            }
            {
                let base = if base == "Self" {
                    match self_type {
                        Some(t) => t.to_string(),
                        None => return LocalTy::Unknown,
                    }
                } else {
                    base
                };
                // Constructor-ish forms only: `T::ctor(...)`, `T { .. }`,
                // `T(...)` — a bare `CONST` or `T::CONST` stays unknown
                // unless followed by one of these.
                return match toks.get(next).map(|t| &t.tok) {
                    Some(Tok::Punct('(')) | Some(Tok::Punct('{')) => LocalTy::Known(base),
                    _ => LocalTy::Unknown,
                };
            }
        }
    }
    LocalTy::Unknown
}

/// Context kinds the brace-tracking stack distinguishes.
#[derive(Debug, Clone)]
enum Ctx {
    /// `impl Type { ... }` / `trait Name { ... }` — methods bind here.
    Impl(String),
    /// A function body; the index points into `ParsedFile::fns`.
    Fn(usize),
    /// Any other brace (blocks, closures, struct literals, modules).
    Other,
}

/// Walks upward from a `fn` signature line over attribute, blank, and
/// comment-only lines looking for a `#[cfg(...)]` attribute attached to
/// the item (the same upward-attribution shape as the doc-comment
/// check). `#[cfg_attr(...)]` does not count: the item itself is always
/// compiled, only an attribute on it is conditional.
fn cfg_gated_at(lines: &[LexedLine], sig_line: usize) -> bool {
    if lines[sig_line].code.contains("#[cfg(") {
        return true;
    }
    let mut i = sig_line;
    while i > 0 {
        i -= 1;
        let code = lines[i].code.trim();
        if code.is_empty() {
            continue; // blank or comment-only line
        }
        let is_attr = code.starts_with("#[") || (code.ends_with(']') && !code.contains('{'));
        if !is_attr {
            return false; // first real code line above: not our attribute
        }
        if code.contains("#[cfg(") {
            return true;
        }
    }
    false
}

/// Parses one file's token stream into items.
///
/// `in_test` marks lines inside `#[cfg(test)]` modules (computed by the
/// caller's brace scan); functions whose signature line is marked are
/// tagged [`FnItem::is_test`]; functions carrying their own `#[cfg]`
/// attribute are tagged [`FnItem::cfg_gated`].
pub(crate) fn parse_file(lines: &[LexedLine], in_test: &[bool]) -> ParsedFile {
    let toks = tokenize(lines);
    let mut out = ParsedFile::default();
    // Stack entries: (ctx, depth at which its `{` opened).
    let mut stack: Vec<(Ctx, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;

    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                stack.push((Ctx::Other, depth));
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while let Some((ctx, d)) = stack.last() {
                    if *d >= depth {
                        if let Ctx::Fn(fi) = ctx {
                            out.fns[*fi].end_line = toks[i].line;
                        }
                        stack.pop();
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" => {
                // `impl<G> Trait for Type<G> { ... }` — target is the
                // last path's base. Only at item position: inside a fn
                // body `impl` can only appear in types, which the fn
                // header parser has already consumed, so treat any
                // remaining occurrence conservatively.
                let mut j = i + 1;
                if punct(&toks, j) == Some('<') {
                    j = skip_generics(&toks, j);
                }
                let (first, next) = type_base(&toks, j);
                let mut target = first;
                let mut j = next;
                if punct(&toks, j) == Some('<') {
                    j = skip_generics(&toks, j);
                }
                if ident(&toks, j) == Some("for") {
                    let (second, next) = type_base(&toks, j + 1);
                    target = second.or(target);
                    j = next;
                }
                // Scan to the body `{` (skipping where clauses).
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if punct(&toks, j) == Some('{') {
                    if let Some(target) = target {
                        out.types.insert(target.clone());
                        stack.push((Ctx::Impl(target), depth));
                    } else {
                        stack.push((Ctx::Other, depth));
                    }
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(kw) if kw == "trait" => {
                let name = ident(&toks, i + 1).map(str::to_string);
                let mut j = i + 2;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if punct(&toks, j) == Some('{') {
                    match name {
                        Some(name) => stack.push((Ctx::Impl(name), depth)),
                        None => stack.push((Ctx::Other, depth)),
                    }
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(kw) if (kw == "struct" || kw == "enum") && ident(&toks, i + 1).is_some() => {
                let name = ident(&toks, i + 1).unwrap_or_default().to_string();
                out.types.insert(name.clone());
                if kw == "struct" {
                    let mut fields = BTreeMap::new();
                    let next = parse_struct_fields(&toks, i + 2, &mut fields);
                    out.struct_fields.insert(name, fields);
                    i = next.max(i + 2);
                } else {
                    i += 2;
                }
            }
            Tok::Ident(kw) if kw == "fn" && ident(&toks, i + 1).is_some() => {
                let self_type = stack.iter().rev().find_map(|(ctx, _)| match ctx {
                    Ctx::Impl(t) => Some(t.clone()),
                    _ => None,
                });
                match parse_fn_header(&toks, i, self_type) {
                    Some((mut item, body, has_body)) => {
                        item.is_test = in_test.get(item.sig_line).copied().unwrap_or(false);
                        item.cfg_gated = cfg_gated_at(lines, item.sig_line);
                        item.depth = depth;
                        let fi = out.fns.len();
                        if has_body {
                            out.fns.push(item);
                            stack.push((Ctx::Fn(fi), depth));
                            depth += 1;
                        } else {
                            out.fns.push(item);
                        }
                        i = body + 1;
                    }
                    None => i += 1,
                }
            }
            Tok::Ident(kw) if kw == "let" => {
                // Only meaningful inside a fn body.
                let cur_fn = stack.iter().rev().find_map(|(ctx, _)| match ctx {
                    Ctx::Fn(fi) => Some(*fi),
                    _ => None,
                });
                let mut j = i + 1;
                if ident(&toks, j) == Some("mut") {
                    j += 1;
                }
                if let (Some(fi), Some(name)) = (cur_fn, ident(&toks, j)) {
                    if name.chars().next().is_some_and(char::is_lowercase) || name.starts_with('_')
                    {
                        let name = name.to_string();
                        let mut k = j + 1;
                        let ty = if punct(&toks, k) == Some(':') && punct(&toks, k + 1) != Some(':')
                        {
                            let (base, _next) = type_base(&toks, k + 1);
                            match base {
                                Some(b) if !out.fns[fi].generics.contains(&b) => LocalTy::Known(b),
                                _ => LocalTy::Unknown,
                            }
                        } else if punct(&toks, k) == Some('=') && punct(&toks, k + 1) != Some('=') {
                            k += 1;
                            let self_ty = out.fns[fi].self_type.clone();
                            infer_initializer(&toks, k, self_ty.as_deref())
                        } else {
                            LocalTy::Unknown
                        };
                        out.fns[fi].locals.insert(name, ty);
                    }
                }
                i = j + 1;
            }
            Tok::Ident(name) if punct(&toks, i + 1) == Some('(') => {
                let cur_fn = stack.iter().rev().find_map(|(ctx, _)| match ctx {
                    Ctx::Fn(fi) => Some(*fi),
                    _ => None,
                });
                let skip = cur_fn.is_none()
                    || KEYWORDS.contains(&name.as_str())
                    || (i > 0 && punct(&toks, i - 1) == Some('#')); // attrs
                if !skip {
                    let recv = if i > 0 && punct(&toks, i - 1) == Some('.') {
                        match receiver_chain(&toks, i - 1) {
                            Some(chain) => Recv::Chain(chain),
                            None => Recv::Unknown,
                        }
                    } else if i > 1
                        && punct(&toks, i - 1) == Some(':')
                        && punct(&toks, i - 2) == Some(':')
                    {
                        Recv::Path(qualifier_path(&toks, i - 1))
                    } else {
                        Recv::Free
                    };
                    if let Some(fi) = cur_fn {
                        out.fns[fi].calls.push(CallSite {
                            callee: name.clone(),
                            recv,
                        });
                    }
                }
                i += 1;
            }
            Tok::Ident(name) if punct(&toks, i + 1) == Some('!') => {
                // Macro invocation: skip the bang so `name(` above never
                // sees it as a call.
                let _ = name;
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse(src: &str) -> ParsedFile {
        let lines = lex(src);
        let in_test = vec![false; lines.len()];
        parse_file(&lines, &in_test)
    }

    #[test]
    fn extracts_free_fns_and_methods() {
        let src = "\
fn free_one() {}
struct Agent { policy: Policy }
impl Agent {
    fn decide(&mut self, view: &View) -> usize { self.policy.sample(view) }
}
impl Scheduler for Agent {
    fn name(&self) -> &str { helper() }
}
";
        let p = parse(src);
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free_one".into(), None),
                ("decide".into(), Some("Agent".into())),
                ("name".into(), Some("Agent".into())),
            ]
        );
        assert_eq!(p.struct_fields["Agent"]["policy"], "Policy");
        assert_eq!(p.fns[1].params["view"], Some("View".into()));
        let call = &p.fns[1].calls[0];
        assert_eq!(call.callee, "sample");
        assert_eq!(call.recv, Recv::Chain(vec!["self".into(), "policy".into()]));
        assert_eq!(p.fns[2].calls[0].recv, Recv::Free);
    }

    #[test]
    fn generic_params_are_not_types() {
        let src = "fn run<S, F>(sim: &Sim, make: F) -> usize where F: Fn(u64) -> S { make(1) }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1, "{:?}", p.fns);
        assert!(p.fns[0].generics.contains("S"));
        assert!(p.fns[0].generics.contains("F"));
        assert_eq!(p.fns[0].params["sim"], Some("Sim".into()));
        assert_eq!(p.fns[0].params["make"], None);
    }

    #[test]
    fn qualified_calls_and_locals() {
        let src = "\
fn build(dim: usize) {
    let v = SparseVec::zeros(dim);
    let w: DokMatrix = helper();
    v.dot(&w);
    megh_linalg::mean(&[1.0]);
}
";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.locals["v"], LocalTy::Known("SparseVec".into()));
        assert_eq!(f.locals["w"], LocalTy::Known("DokMatrix".into()));
        let kinds: Vec<(&str, &Recv)> = f
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), &c.recv))
            .collect();
        assert_eq!(kinds[0].0, "zeros");
        assert_eq!(*kinds[0].1, Recv::Path(vec!["SparseVec".into()]));
        assert_eq!(kinds[2].0, "dot");
        assert_eq!(*kinds[2].1, Recv::Chain(vec!["v".into()]));
        assert_eq!(kinds[3].0, "mean");
        assert_eq!(*kinds[3].1, Recv::Path(vec!["megh_linalg".into()]));
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "fn f() { vec![1, 2]; format!(\"x\"); real_call(); }\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["real_call"]);
    }

    #[test]
    fn call_result_receivers_are_unknown() {
        let src = "fn f(xs: &[f64]) { xs.iter().map(g).sum::<f64>(); (a + b).norm(); }\n";
        let p = parse(src);
        for call in &p.fns[0].calls {
            if call.callee == "map" || call.callee == "norm" {
                assert_eq!(call.recv, Recv::Unknown, "{call:?}");
            }
        }
    }

    #[test]
    fn nested_fn_bodies_attribute_calls_to_innermost() {
        let src = "\
fn outer() {
    fn inner() { deep_call(); }
    outer_call();
}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, "outer_call");
        assert_eq!(inner.calls[0].callee, "deep_call");
    }

    #[test]
    fn struct_literal_initializer_is_known() {
        let src = "fn f() { let cfg = MeghConfig { seed: 1 }; cfg.validate(); }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].locals["cfg"], LocalTy::Known("MeghConfig".into()));
    }
}
